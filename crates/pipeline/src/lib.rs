//! Distributed XML event pipelines (§4.2, Figure 2).
//!
//! "Our approach is to implement a distributed contextual matching engine
//! as XML pipelines, with XML events flowing between pipeline components,
//! both intra-node and inter-node. ... Each pipeline provides a web
//! service interface put(event), enabling remote pipeline components to
//! push events into it. Events may also arise from local devices and
//! sensors such as GPS and GSM devices, RFID tag readers, weather
//! sensors, etc. Each hardware device has a wrapper component that makes
//! it usable as a pipeline component. Other components perform filtering
//! (e.g. transmitting user-location events only when the distance moved
//! exceeds a certain threshold), buffering, communication with other
//! pipelines, and so on."
//!
//! * [`Component`] — the `put(event)` interface, plus the standard
//!   component library ([`standard`]) registered into a bundle
//!   [`Registry`](gloss_bundle::Registry) so components can be deployed
//!   dynamically in code bundles,
//! * [`PipelineGraph`] — an intra-node bus wiring components together,
//! * [`assembly`] — building graphs from XML pipeline specifications,
//! * [`wrapper`] — device wrappers: GPS (random-waypoint movement),
//!   thermometer (diurnal model), RFID gate,
//! * [`distributed`] — inter-node pipelines over the simulator (the
//!   latency experiments of **E2**),
//! * [`runtime`] — a threaded in-process runtime (crossbeam channels; one
//!   thread per component) demonstrating the same graphs outside the
//!   simulator.
//!
//! # Example
//!
//! ```
//! use gloss_pipeline::{standard::KindFilter, Component, Emit, PipelineGraph};
//! use gloss_event::{Event, Filter};
//! use gloss_sim::SimTime;
//!
//! let mut graph = PipelineGraph::new();
//! let f = graph.add(Box::new(KindFilter::new("only-loc", Filter::for_kind("user.location"))));
//! graph.mark_entry(f);
//! let out = graph.push(SimTime::ZERO, Event::new("user.location"));
//! assert_eq!(out.len(), 1);
//! let out = graph.push(SimTime::ZERO, Event::new("noise"));
//! assert!(out.is_empty());
//! ```

pub mod assembly;
pub mod component;
pub mod distributed;
pub mod runtime;
pub mod standard;
pub mod wrapper;

pub use assembly::{assemble, AssemblyError};
pub use component::{Component, Emit, PipelineGraph};
pub use distributed::{DistributedPipeline, PipelineHost, PipelineMsg};
pub use runtime::ThreadedPipeline;
pub use wrapper::{GpsDevice, RfidGate, Thermometer};
