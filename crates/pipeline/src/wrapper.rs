//! Device wrappers: "Each hardware device has a wrapper component that
//! makes it usable as a pipeline component" (§4.2). Since this
//! reproduction has no physical sensors, the wrappers *simulate* the
//! devices (DESIGN.md substitutions): a GPS with a random-waypoint
//! movement model, a street thermometer with a diurnal temperature curve,
//! and an RFID gate.

use crate::component::{Component, Emit};
use gloss_event::Event;
use gloss_sim::{GeoPoint, SimDuration, SimRng, SimTime};

/// A simulated GPS unit carried by a user: random-waypoint movement
/// around a home point, reporting on a fixed interval via [`Component::tick`].
#[derive(Debug)]
pub struct GpsDevice {
    user: String,
    home: GeoPoint,
    position: GeoPoint,
    waypoint: GeoPoint,
    /// Walking speed in km/h.
    speed_kmh: f64,
    /// Maximum wander distance from home, in km.
    range_km: f64,
    report_interval: SimDuration,
    next_report: SimTime,
    last_tick: SimTime,
    rng: SimRng,
    /// Whether the user is on foot (stamped into events).
    pub on_foot: bool,
}

impl GpsDevice {
    /// Creates a GPS for `user` starting at `home`.
    pub fn new(user: impl Into<String>, home: GeoPoint, rng: SimRng) -> Self {
        GpsDevice {
            user: user.into(),
            home,
            position: home,
            waypoint: home,
            speed_kmh: 5.0,
            range_km: 1.0,
            report_interval: SimDuration::from_secs(30),
            next_report: SimTime::ZERO,
            last_tick: SimTime::ZERO,
            rng,
            on_foot: true,
        }
    }

    /// Sets the reporting interval.
    pub fn with_report_interval(mut self, interval: SimDuration) -> Self {
        self.report_interval = interval;
        self
    }

    /// Sets the wander range.
    pub fn with_range_km(mut self, range: f64) -> Self {
        self.range_km = range;
        self
    }

    /// The current simulated position.
    pub fn position(&self) -> GeoPoint {
        self.position
    }

    /// Moves the user toward the current waypoint for `dt`, picking a new
    /// waypoint on arrival.
    fn advance(&mut self, dt: SimDuration) {
        let step_km = self.speed_kmh * dt.as_secs_f64() / 3600.0;
        let remaining = self.position.distance_km(self.waypoint);
        if remaining <= step_km || remaining < 1e-9 {
            self.position = self.waypoint;
            // New waypoint within range of home (uniform offset box).
            let dlat = self.rng.float_range(-1.0, 1.0) * self.range_km / 111.0;
            let dlon = self.rng.float_range(-1.0, 1.0) * self.range_km
                / (111.0 * self.home.lat.to_radians().cos().max(0.1));
            self.waypoint = GeoPoint::new(self.home.lat + dlat, self.home.lon + dlon);
        } else {
            let f = step_km / remaining;
            self.position = GeoPoint::new(
                self.position.lat + (self.waypoint.lat - self.position.lat) * f,
                self.position.lon + (self.waypoint.lon - self.position.lon) * f,
            );
        }
    }

    /// Builds the location event for the current position.
    pub fn reading(&self, _now: SimTime) -> Event {
        Event::new("user.location")
            .with_attr("user", self.user.as_str())
            .with_attr("lat", self.position.lat)
            .with_attr("lon", self.position.lon)
            .with_attr("on_foot", self.on_foot)
    }
}

impl Component for GpsDevice {
    fn name(&self) -> &str {
        &self.user
    }

    /// GPS units have no upstream; `put` passes events through unchanged.
    fn put(&mut self, _now: SimTime, event: Event, out: &mut Emit) {
        out.push(event);
    }

    fn tick(&mut self, now: SimTime, out: &mut Emit) {
        let dt = now.since(self.last_tick);
        self.last_tick = now;
        self.advance(dt);
        if now >= self.next_report {
            self.next_report = now + self.report_interval;
            out.push(self.reading(now));
        }
    }
}

/// A simulated street thermometer with a sinusoidal diurnal temperature
/// curve plus noise.
#[derive(Debug)]
pub struct Thermometer {
    street: String,
    /// Daily mean temperature in °C.
    pub mean_c: f64,
    /// Half the daily swing in °C.
    pub swing_c: f64,
    report_interval: SimDuration,
    next_report: SimTime,
    rng: SimRng,
}

impl Thermometer {
    /// Creates a thermometer for `street`.
    pub fn new(street: impl Into<String>, mean_c: f64, swing_c: f64, rng: SimRng) -> Self {
        Thermometer {
            street: street.into(),
            mean_c,
            swing_c,
            report_interval: SimDuration::from_secs(60),
            next_report: SimTime::ZERO,
            rng,
        }
    }

    /// Sets the reporting interval.
    pub fn with_report_interval(mut self, interval: SimDuration) -> Self {
        self.report_interval = interval;
        self
    }

    /// The temperature at `now`: peak at 15:00, trough at 03:00.
    pub fn temperature_at(&mut self, now: SimTime) -> f64 {
        let day_fraction = (now.as_micros() % 86_400_000_000) as f64 / 86_400_000_000.0;
        let phase = (day_fraction - 15.0 / 24.0) * std::f64::consts::TAU;
        self.mean_c + self.swing_c * phase.cos() + self.rng.normal(0.0, 0.3)
    }
}

impl Component for Thermometer {
    fn name(&self) -> &str {
        &self.street
    }

    fn put(&mut self, _now: SimTime, event: Event, out: &mut Emit) {
        out.push(event);
    }

    fn tick(&mut self, now: SimTime, out: &mut Emit) {
        if now >= self.next_report {
            self.next_report = now + self.report_interval;
            let c = self.temperature_at(now);
            out.push(
                Event::new("weather.reading")
                    .with_attr("street", self.street.as_str())
                    .with_attr("celsius", c),
            );
        }
    }
}

/// A simulated RFID gate: `put` a `tag.seen` trigger (or call
/// [`RfidGate::read`]) to emit a read event stamped with the gate name.
#[derive(Debug)]
pub struct RfidGate {
    gate: String,
    /// Reads performed.
    pub reads: u64,
}

impl RfidGate {
    /// Creates a gate.
    pub fn new(gate: impl Into<String>) -> Self {
        RfidGate { gate: gate.into(), reads: 0 }
    }

    /// Produces a read event for `tag`.
    pub fn read(&mut self, tag: &str) -> Event {
        self.reads += 1;
        Event::new("rfid.read").with_attr("gate", self.gate.as_str()).with_attr("tag", tag)
    }
}

impl Component for RfidGate {
    fn name(&self) -> &str {
        &self.gate
    }

    fn put(&mut self, _now: SimTime, event: Event, out: &mut Emit) {
        if event.kind() == "tag.seen" {
            if let Some(tag) = event.str_attr("tag") {
                let tag = tag.to_string();
                out.push(self.read(&tag));
                return;
            }
        }
        out.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(7)
    }

    #[test]
    fn gps_reports_on_interval_and_moves() {
        let home = GeoPoint::new(56.34, -2.80);
        let mut gps = GpsDevice::new("bob", home, rng())
            .with_report_interval(SimDuration::from_secs(30))
            .with_range_km(0.5);
        let mut out = Emit::new();
        let mut positions = Vec::new();
        for s in (0..600).step_by(30) {
            gps.tick(SimTime::from_secs(s), &mut out);
            positions.push(gps.position());
        }
        let events = out.drain();
        assert_eq!(events.len(), 20, "one report per 30 s over 10 min");
        assert_eq!(events[0].kind(), "user.location");
        assert_eq!(events[0].str_attr("user"), Some("bob"));
        // The user wanders but stays near home.
        let moved = positions.iter().any(|p| p.distance_km(home) > 0.01);
        assert!(moved, "random waypoint movement should move the user");
        for p in &positions {
            assert!(p.distance_km(home) < 2.0, "stays within range");
        }
    }

    #[test]
    fn gps_respects_walking_speed() {
        let home = GeoPoint::new(56.34, -2.80);
        let mut gps = GpsDevice::new("bob", home, rng());
        let mut out = Emit::new();
        gps.tick(SimTime::from_secs(60), &mut out);
        // One minute at 5 km/h is at most ~83 m.
        assert!(gps.position().distance_km(home) <= 0.1);
    }

    #[test]
    fn thermometer_diurnal_shape() {
        let mut t = Thermometer::new("South Street", 14.0, 6.0, rng());
        let afternoon = t.temperature_at(SimTime::from_secs(15 * 3600));
        let night = t.temperature_at(SimTime::from_secs(3 * 3600));
        assert!(
            afternoon > night + 8.0,
            "15:00 ({afternoon:.1}C) should be much warmer than 03:00 ({night:.1}C)"
        );
    }

    #[test]
    fn thermometer_emits_weather_readings() {
        let mut t = Thermometer::new("South Street", 14.0, 6.0, rng())
            .with_report_interval(SimDuration::from_secs(60));
        let mut out = Emit::new();
        t.tick(SimTime::ZERO, &mut out);
        t.tick(SimTime::from_secs(30), &mut out); // not due yet
        t.tick(SimTime::from_secs(61), &mut out);
        let events = out.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind(), "weather.reading");
        assert!(events[0].num_attr("celsius").is_some());
    }

    #[test]
    fn rfid_gate_reads_tags() {
        let mut g = RfidGate::new("library-door");
        let e = g.read("tag-42");
        assert_eq!(e.kind(), "rfid.read");
        assert_eq!(e.str_attr("gate"), Some("library-door"));
        assert_eq!(g.reads, 1);
        let mut out = Emit::new();
        g.put(SimTime::ZERO, Event::new("tag.seen").with_attr("tag", "tag-7"), &mut out);
        let events = out.drain();
        assert_eq!(events[0].kind(), "rfid.read");
        assert_eq!(events[0].str_attr("tag"), Some("tag-7"));
    }
}
