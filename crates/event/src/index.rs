//! Counting-based attribute index over subscription filters.
//!
//! The broker's matching problem is: given an event, find every stored
//! filter whose *every* constraint is satisfied. [`FilterIndex`] solves it
//! the SIENA way — decompose each filter into per-attribute constraint
//! buckets, let the event's attributes probe only the buckets they can
//! satisfy, and count satisfied constraints per filter: a filter matches
//! exactly when its counter reaches its constraint total (and its kind
//! restriction agrees). Matching cost is proportional to the constraints
//! the event *touches*, not to table size.
//!
//! Bucket layout per attribute:
//!
//! | operator               | structure                       | probe cost      |
//! |------------------------|---------------------------------|-----------------|
//! | `Eq` (string)          | hash map on the operand         | O(1)            |
//! | `Eq` (numeric)         | hash map on canonical f64 bits  | O(1)            |
//! | `Eq` (bool)            | two buckets                     | O(1)            |
//! | `Gt`/`Ge` (numeric)    | sorted boundary map (lower)     | O(log n + hits) |
//! | `Lt`/`Le` (numeric)    | sorted boundary map (upper)     | O(log n + hits) |
//! | `Prefix`               | byte trie on the pattern        | O(len + hits)   |
//! | everything else        | linear fallback list            | O(list)         |
//!
//! The fallback list holds `Suffix`/`Contains`/`Ne`/`Exists` and the rare
//! non-numeric ordering constraints (lexicographic `Lt` on strings, and so
//! on); it is scanned only when the event actually carries the attribute.
//! Constraints that no value can ever satisfy (string operators with a
//! non-string operand, comparisons against `NaN`) are not indexed at all —
//! their filter's counter can then never reach its total, which is exactly
//! the linear scan's verdict.
//!
//! Kind restrictions are *not* counted: counting them would make every
//! publication touch every same-kind subscription, which is the hot-topic
//! blow-up this index exists to avoid. Instead the kind test is applied
//! per candidate, and the only filters selected without a constraint probe
//! are the zero-constraint ones (tracked in dedicated kind/universal
//! lists — those genuinely match every event of their kind).
//!
//! The same structure answers *covering* queries for the broker's forward
//! tables: for a filter made of distinct-attribute `Eq` constraints,
//! "which stored filters cover it" is exactly "which stored filters match
//! the event formed by its operands" (see [`FilterIndex::covering_ids`]).

use crate::broker::SubId;
use crate::filter::{Filter, Op, Subscription};
use crate::notification::Event;
use crate::value::AttrValue;
use gloss_sim::FnvHashMap;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Entry {
    sub: Subscription,
    /// Insertion sequence; match results are returned in this order so
    /// the indexed broker emits notifications in table order, exactly
    /// like the linear scan it replaces.
    seq: u64,
    /// Number of constraints (the counter target).
    required: u32,
}

/// Where one constraint is indexed.
enum Slot<'a> {
    EqStr(&'a str),
    EqNum(f64),
    EqBool(bool),
    /// `Gt`/`Ge` with a numeric operand; `strict` for `Gt`.
    Lower {
        bound: f64,
        strict: bool,
    },
    /// `Lt`/`Le` with a numeric operand; `strict` for `Lt`.
    Upper {
        bound: f64,
        strict: bool,
    },
    Prefix(&'a str),
    /// Evaluated by `matches_value` when the event carries the attribute.
    Fallback,
    /// No value can satisfy this constraint; leave it unindexed so its
    /// filter's counter can never reach `required`.
    Never,
}

fn classify(c: &crate::filter::Constraint) -> Slot<'_> {
    match (c.op, &c.value) {
        (Op::Eq, AttrValue::Str(s)) => Slot::EqStr(s),
        (Op::Eq, AttrValue::Bool(b)) => Slot::EqBool(*b),
        (Op::Eq, v) => match v.as_number() {
            Some(x) if !x.is_nan() => Slot::EqNum(x),
            _ => Slot::Never,
        },
        (Op::Lt | Op::Le, AttrValue::Int(_) | AttrValue::Float(_)) => match c.value.as_number() {
            Some(x) if !x.is_nan() => Slot::Upper { bound: x, strict: c.op == Op::Lt },
            _ => Slot::Never,
        },
        (Op::Gt | Op::Ge, AttrValue::Int(_) | AttrValue::Float(_)) => match c.value.as_number() {
            Some(x) if !x.is_nan() => Slot::Lower { bound: x, strict: c.op == Op::Gt },
            _ => Slot::Never,
        },
        (Op::Prefix, v) => match v.as_str() {
            Some(s) => Slot::Prefix(s),
            None => Slot::Never,
        },
        (Op::Suffix | Op::Contains, v) => match v.as_str() {
            Some(_) => Slot::Fallback,
            None => Slot::Never,
        },
        (Op::Ne, v) => match v.as_number() {
            Some(x) if x.is_nan() => Slot::Never,
            _ => Slot::Fallback,
        },
        // String/bool ordering, Exists.
        _ => Slot::Fallback,
    }
}

/// Canonical hash key for a finite numeric operand: `Int` and `Float`
/// compare numerically, so both map through `f64`; `-0.0` folds onto
/// `0.0` (they compare equal).
fn num_key(x: f64) -> u64 {
    let x = if x == 0.0 { 0.0 } else { x };
    x.to_bits()
}

/// Order-preserving bit transform for finite floats, so boundary maps can
/// use a plain `BTreeMap<u64, _>`.
fn ord_key(x: f64) -> u64 {
    let b = num_key(x);
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// One boundary value's constraint lists in a sorted boundary map.
#[derive(Debug, Clone, Default)]
struct Boundary {
    /// Strict comparisons (`Gt` in the lower map, `Lt` in the upper map).
    strict: Vec<SubId>,
    /// Inclusive comparisons (`Ge` / `Le`).
    incl: Vec<SubId>,
}

impl Boundary {
    fn is_empty(&self) -> bool {
        self.strict.is_empty() && self.incl.is_empty()
    }
}

/// Byte trie over `Prefix` patterns: walking an event string's bytes
/// visits exactly the nodes of its satisfied prefixes.
#[derive(Debug, Clone, Default)]
struct Trie {
    /// Constraints whose pattern ends at this node.
    ids: Vec<SubId>,
    children: FnvHashMap<u8, Trie>,
}

impl Trie {
    fn insert(&mut self, pat: &[u8], id: SubId) {
        let mut node = self;
        for &b in pat {
            node = node.children.entry(b).or_default();
        }
        node.ids.push(id);
    }

    /// Removes one occurrence path, pruning nodes left empty.
    fn remove(&mut self, pat: &[u8], id: SubId) {
        match pat.split_first() {
            None => {
                if let Some(pos) = self.ids.iter().position(|x| *x == id) {
                    self.ids.remove(pos);
                }
            }
            Some((b, rest)) => {
                if let Some(child) = self.children.get_mut(b) {
                    child.remove(rest, id);
                    if child.is_empty() {
                        self.children.remove(b);
                    }
                }
            }
        }
    }

    fn visit(&self, s: &[u8], f: &mut impl FnMut(SubId)) {
        let mut node = self;
        for id in &node.ids {
            f(*id);
        }
        for b in s {
            match node.children.get(b) {
                Some(child) => node = child,
                None => return,
            }
            for id in &node.ids {
                f(*id);
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.ids.is_empty() && self.children.is_empty()
    }
}

/// Per-attribute constraint buckets.
#[derive(Debug, Clone, Default)]
struct AttrBuckets {
    eq_str: FnvHashMap<String, Vec<SubId>>,
    eq_num: FnvHashMap<u64, Vec<SubId>>,
    eq_bool: [Vec<SubId>; 2],
    /// `Gt`/`Ge` boundaries, keyed by [`ord_key`] of the bound.
    lower: BTreeMap<u64, Boundary>,
    /// `Lt`/`Le` boundaries, keyed by [`ord_key`] of the bound.
    upper: BTreeMap<u64, Boundary>,
    prefix: Trie,
    /// `(subscription, constraint position)` pairs evaluated directly.
    fallback: Vec<(SubId, u32)>,
}

impl AttrBuckets {
    fn is_empty(&self) -> bool {
        self.eq_str.is_empty()
            && self.eq_num.is_empty()
            && self.eq_bool[0].is_empty()
            && self.eq_bool[1].is_empty()
            && self.lower.is_empty()
            && self.upper.is_empty()
            && self.prefix.is_empty()
            && self.fallback.is_empty()
    }
}

fn remove_from(v: &mut Vec<SubId>, id: SubId) {
    v.retain(|x| *x != id);
}

/// The counting index over a set of subscriptions.
///
/// Duplicate ids are rejected ([`insert`](Self::insert) returns `false`);
/// beyond that any mix of filters is accepted, including unsatisfiable
/// ones (they are stored, forwarded, audited — they just never match,
/// exactly as under a linear scan).
#[derive(Debug, Clone, Default)]
pub struct FilterIndex {
    entries: FnvHashMap<SubId, Entry>,
    attrs: FnvHashMap<String, AttrBuckets>,
    /// Zero-constraint filters restricted to a kind: they match every
    /// event of that kind, with no constraint to count.
    kind_only: FnvHashMap<String, Vec<SubId>>,
    /// Zero-constraint, kindless filters: they match everything.
    universal: Vec<SubId>,
    next_seq: u64,
}

impl FilterIndex {
    /// An empty index.
    pub fn new() -> Self {
        FilterIndex::default()
    }

    /// Number of stored subscriptions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `id` is stored.
    pub fn contains(&self, id: SubId) -> bool {
        self.entries.contains_key(&id)
    }

    /// The stored subscription with this id.
    pub fn get(&self, id: SubId) -> Option<&Subscription> {
        self.entries.get(&id).map(|e| &e.sub)
    }

    /// Stored subscriptions in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &Subscription> {
        self.entries.values().map(|e| &e.sub)
    }

    /// Stored subscriptions in insertion order.
    pub fn iter_in_order(&self) -> impl Iterator<Item = &Subscription> {
        let mut v: Vec<&Entry> = self.entries.values().collect();
        v.sort_unstable_by_key(|e| e.seq);
        v.into_iter().map(|e| &e.sub)
    }

    /// Indexes a subscription. Returns `false` (and stores nothing) if the
    /// id is already present.
    pub fn insert(&mut self, sub: Subscription) -> bool {
        if self.entries.contains_key(&sub.id) {
            return false;
        }
        let id = sub.id;
        for (ci, c) in sub.filter.constraints().iter().enumerate() {
            let slot = classify(c);
            if matches!(slot, Slot::Never) {
                continue;
            }
            let b = self.attrs.entry(c.attr.clone()).or_default();
            match slot {
                Slot::EqStr(s) => b.eq_str.entry(s.to_string()).or_default().push(id),
                Slot::EqNum(x) => b.eq_num.entry(num_key(x)).or_default().push(id),
                Slot::EqBool(v) => b.eq_bool[v as usize].push(id),
                Slot::Lower { bound, strict } => {
                    let bo = b.lower.entry(ord_key(bound)).or_default();
                    if strict { &mut bo.strict } else { &mut bo.incl }.push(id);
                }
                Slot::Upper { bound, strict } => {
                    let bo = b.upper.entry(ord_key(bound)).or_default();
                    if strict { &mut bo.strict } else { &mut bo.incl }.push(id);
                }
                Slot::Prefix(s) => b.prefix.insert(s.as_bytes(), id),
                Slot::Fallback => b.fallback.push((id, ci as u32)),
                Slot::Never => unreachable!(),
            }
        }
        if sub.filter.constraints().is_empty() {
            match sub.filter.kind() {
                Some(k) => self.kind_only.entry(k.to_string()).or_default().push(id),
                None => self.universal.push(id),
            }
        }
        let required = sub.filter.constraints().len() as u32;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(id, Entry { sub, seq, required });
        true
    }

    /// Removes a subscription, returning it.
    pub fn remove(&mut self, id: SubId) -> Option<Subscription> {
        let e = self.entries.remove(&id)?;
        for c in e.sub.filter.constraints() {
            let slot = classify(c);
            if matches!(slot, Slot::Never) {
                continue;
            }
            let Some(b) = self.attrs.get_mut(&c.attr) else { continue };
            match slot {
                Slot::EqStr(s) => {
                    if let Some(v) = b.eq_str.get_mut(s) {
                        remove_from(v, id);
                        if v.is_empty() {
                            b.eq_str.remove(s);
                        }
                    }
                }
                Slot::EqNum(x) => {
                    let k = num_key(x);
                    if let Some(v) = b.eq_num.get_mut(&k) {
                        remove_from(v, id);
                        if v.is_empty() {
                            b.eq_num.remove(&k);
                        }
                    }
                }
                Slot::EqBool(v) => remove_from(&mut b.eq_bool[v as usize], id),
                Slot::Lower { bound, strict } => {
                    let k = ord_key(bound);
                    if let Some(bo) = b.lower.get_mut(&k) {
                        remove_from(if strict { &mut bo.strict } else { &mut bo.incl }, id);
                        if bo.is_empty() {
                            b.lower.remove(&k);
                        }
                    }
                }
                Slot::Upper { bound, strict } => {
                    let k = ord_key(bound);
                    if let Some(bo) = b.upper.get_mut(&k) {
                        remove_from(if strict { &mut bo.strict } else { &mut bo.incl }, id);
                        if bo.is_empty() {
                            b.upper.remove(&k);
                        }
                    }
                }
                Slot::Prefix(s) => b.prefix.remove(s.as_bytes(), id),
                Slot::Fallback => b.fallback.retain(|(x, _)| *x != id),
                Slot::Never => unreachable!(),
            }
            if b.is_empty() {
                self.attrs.remove(&c.attr);
            }
        }
        if e.sub.filter.constraints().is_empty() {
            match e.sub.filter.kind() {
                Some(k) => {
                    if let Some(v) = self.kind_only.get_mut(k) {
                        remove_from(v, id);
                        if v.is_empty() {
                            self.kind_only.remove(k);
                        }
                    }
                }
                None => remove_from(&mut self.universal, id),
            }
        }
        Some(e.sub)
    }

    /// Ids of subscriptions matching an event with the given kind and
    /// attributes, in insertion order. `kind: None` means "no kind": only
    /// kind-unrestricted filters can pass (used by covering queries;
    /// events always carry a kind).
    pub fn matching<'a>(
        &self,
        kind: Option<&str>,
        attrs: impl Iterator<Item = (&'a str, &'a AttrValue)>,
    ) -> Vec<SubId> {
        let mut counts: FnvHashMap<SubId, u32> = FnvHashMap::default();
        for (name, value) in attrs {
            let Some(b) = self.attrs.get(name) else { continue };
            let mut bump = |id: SubId| *counts.entry(id).or_insert(0) += 1;
            match value {
                AttrValue::Str(s) => {
                    if let Some(ids) = b.eq_str.get(s.as_ref()) {
                        ids.iter().for_each(|&id| bump(id));
                    }
                    b.prefix.visit(s.as_bytes(), &mut bump);
                }
                AttrValue::Int(_) | AttrValue::Float(_) => {
                    let x = value.as_number().expect("numeric");
                    // NaN compares with nothing: only the fallback list
                    // (where `Exists` lives) can be satisfied.
                    if !x.is_nan() {
                        if let Some(ids) = b.eq_num.get(&num_key(x)) {
                            ids.iter().for_each(|&id| bump(id));
                        }
                        let k = ord_key(x);
                        for (&bk, bo) in b.lower.range(..=k) {
                            bo.incl.iter().for_each(|&id| bump(id));
                            if bk != k {
                                bo.strict.iter().for_each(|&id| bump(id));
                            }
                        }
                        for (&bk, bo) in b.upper.range(k..) {
                            bo.incl.iter().for_each(|&id| bump(id));
                            if bk != k {
                                bo.strict.iter().for_each(|&id| bump(id));
                            }
                        }
                    }
                }
                AttrValue::Bool(v) => {
                    b.eq_bool[*v as usize].iter().for_each(|&id| bump(id));
                }
            }
            for &(id, ci) in &b.fallback {
                let e = &self.entries[&id];
                if e.sub.filter.constraints()[ci as usize].matches_value(value) {
                    bump(id);
                }
            }
        }
        let kind_ok = |f: &Filter| match f.kind() {
            None => true,
            Some(k0) => kind == Some(k0),
        };
        let mut out: Vec<SubId> = counts
            .iter()
            .filter_map(|(&id, &n)| {
                let e = &self.entries[&id];
                (n == e.required && kind_ok(&e.sub.filter)).then_some(id)
            })
            .collect();
        if let Some(k) = kind {
            if let Some(ids) = self.kind_only.get(k) {
                out.extend(ids);
            }
        }
        out.extend(&self.universal);
        out.sort_unstable_by_key(|id| self.entries[id].seq);
        out
    }

    /// Ids of subscriptions matching `event`, in insertion order. Agrees
    /// exactly with scanning every stored filter through
    /// [`Filter::matches`].
    pub fn matching_event(&self, event: &Event) -> Vec<SubId> {
        self.matching(Some(event.kind()), event.attrs())
    }

    /// Ids of stored filters that *cover* `query` — exact (sound and
    /// complete) when `query` is a conjunction of `Eq` constraints on
    /// distinct attributes, plus an optional kind. Returns `None` for
    /// filters outside that fragment (the caller falls back to a scan).
    ///
    /// Why this works: for an `Eq(a, v)` constraint, a stored constraint
    /// on `a` covers it iff `v` satisfies the stored constraint, so
    /// "stored filters covering the query" is precisely "stored filters
    /// matching the event `{a: v, ...}` of the query's operands" — one
    /// counting probe instead of a pairwise `covers` sweep.
    pub fn covering_ids(&self, query: &Filter) -> Option<Vec<SubId>> {
        let cs = query.constraints();
        let mut pairs: Vec<(&str, &AttrValue)> = Vec::with_capacity(cs.len());
        for c in cs {
            if c.op != Op::Eq {
                return None;
            }
            if pairs.iter().any(|(a, _)| *a == c.attr.as_str()) {
                return None; // repeated attribute: one synthetic value cannot represent both
            }
            pairs.push((c.attr.as_str(), &c.value));
        }
        Some(self.matching(query.kind(), pairs.into_iter()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(id: SubId, filter: Filter) -> Subscription {
        Subscription { id, filter }
    }

    fn ids(index: &FilterIndex, event: &Event) -> Vec<SubId> {
        index.matching_event(event)
    }

    #[test]
    fn counting_matches_conjunctions() {
        let mut ix = FilterIndex::new();
        ix.insert(sub(1, Filter::for_kind("k").with_eq("u", "bob")));
        ix.insert(sub(2, Filter::for_kind("k").with_constraint("t", Op::Gt, 10i64)));
        ix.insert(sub(
            3,
            Filter::for_kind("k").with_eq("u", "bob").with_constraint("t", Op::Gt, 10i64),
        ));
        let e = Event::new("k").with_attr("u", "bob").with_attr("t", 20i64);
        assert_eq!(ids(&ix, &e), vec![1, 2, 3]);
        let e = Event::new("k").with_attr("u", "bob").with_attr("t", 5i64);
        assert_eq!(ids(&ix, &e), vec![1]);
        let e = Event::new("k").with_attr("t", 20i64);
        assert_eq!(ids(&ix, &e), vec![2], "partial conjunction must not match");
    }

    #[test]
    fn kind_checked_per_candidate() {
        let mut ix = FilterIndex::new();
        ix.insert(sub(1, Filter::for_kind("a").with_eq("x", 1i64)));
        ix.insert(sub(2, Filter::for_kind("b").with_eq("x", 1i64)));
        ix.insert(sub(3, Filter::any().with_eq("x", 1i64)));
        ix.insert(sub(4, Filter::for_kind("a")));
        ix.insert(sub(5, Filter::any()));
        let e = Event::new("a").with_attr("x", 1i64);
        assert_eq!(ids(&ix, &e), vec![1, 3, 4, 5]);
        let e = Event::new("c").with_attr("x", 1i64);
        assert_eq!(ids(&ix, &e), vec![3, 5]);
    }

    #[test]
    fn numeric_eq_is_cross_type() {
        let mut ix = FilterIndex::new();
        ix.insert(sub(1, Filter::any().with_eq("x", 3i64)));
        ix.insert(sub(2, Filter::any().with_eq("x", 3.0)));
        ix.insert(sub(3, Filter::any().with_eq("x", 0.0)));
        let e = Event::new("k").with_attr("x", 3.0);
        assert_eq!(ids(&ix, &e), vec![1, 2]);
        let e = Event::new("k").with_attr("x", 3i64);
        assert_eq!(ids(&ix, &e), vec![1, 2]);
        // -0.0 equals 0.0 numerically.
        let e = Event::new("k").with_attr("x", -0.0);
        assert_eq!(ids(&ix, &e), vec![3]);
    }

    #[test]
    fn boundary_maps_respect_strictness() {
        let mut ix = FilterIndex::new();
        ix.insert(sub(1, Filter::any().with_constraint("x", Op::Gt, 10i64)));
        ix.insert(sub(2, Filter::any().with_constraint("x", Op::Ge, 10i64)));
        ix.insert(sub(3, Filter::any().with_constraint("x", Op::Lt, 10i64)));
        ix.insert(sub(4, Filter::any().with_constraint("x", Op::Le, 10i64)));
        let at = |v: f64| Event::new("k").with_attr("x", v);
        assert_eq!(ids(&ix, &at(10.0)), vec![2, 4]);
        assert_eq!(ids(&ix, &at(10.5)), vec![1, 2]);
        assert_eq!(ids(&ix, &at(9.5)), vec![3, 4]);
    }

    #[test]
    fn prefix_trie_walks_event_string() {
        let mut ix = FilterIndex::new();
        ix.insert(sub(1, Filter::any().with_constraint("s", Op::Prefix, "st")));
        ix.insert(sub(2, Filter::any().with_constraint("s", Op::Prefix, "st andrews")));
        ix.insert(sub(3, Filter::any().with_constraint("s", Op::Prefix, "")));
        ix.insert(sub(4, Filter::any().with_constraint("s", Op::Prefix, "dundee")));
        let e = Event::new("k").with_attr("s", "st andrews west");
        assert_eq!(ids(&ix, &e), vec![1, 2, 3]);
        let e = Event::new("k").with_attr("s", 5i64);
        assert!(ids(&ix, &e).is_empty(), "prefix never matches non-strings");
    }

    #[test]
    fn fallback_ops_and_exists() {
        let mut ix = FilterIndex::new();
        ix.insert(sub(1, Filter::any().with_constraint("s", Op::Suffix, "street")));
        ix.insert(sub(2, Filter::any().with_constraint("s", Op::Contains, "h st")));
        ix.insert(sub(3, Filter::any().with_constraint("s", Op::Ne, "north haugh")));
        ix.insert(sub(4, Filter::any().with_exists("s")));
        ix.insert(sub(5, Filter::any().with_constraint("s", Op::Lt, "t")));
        let e = Event::new("k").with_attr("s", "south street");
        assert_eq!(ids(&ix, &e), vec![1, 2, 3, 4, 5]);
        let e = Event::new("k").with_attr("s", "north haugh");
        assert_eq!(ids(&ix, &e), vec![4, 5]);
    }

    #[test]
    fn nan_operands_and_nan_events_never_match() {
        let mut ix = FilterIndex::new();
        ix.insert(sub(1, Filter::any().with_eq("x", f64::NAN)));
        ix.insert(sub(2, Filter::any().with_constraint("x", Op::Lt, f64::NAN)));
        ix.insert(sub(3, Filter::any().with_constraint("x", Op::Ne, f64::NAN)));
        ix.insert(sub(4, Filter::any().with_exists("x")));
        ix.insert(sub(5, Filter::any().with_eq("x", 1.0)));
        let e = Event::new("k").with_attr("x", 1.0);
        assert_eq!(ids(&ix, &e), vec![4, 5]);
        // A NaN event value satisfies only Exists.
        let e = Event::new("k").with_attr("x", f64::NAN);
        assert_eq!(ids(&ix, &e), vec![4]);
    }

    #[test]
    fn duplicate_and_repeated_constraints_count_separately() {
        let mut ix = FilterIndex::new();
        // Same attribute twice: an interval.
        ix.insert(sub(
            1,
            Filter::any().with_constraint("x", Op::Gt, 0i64).with_constraint("x", Op::Lt, 10i64),
        ));
        // Identical constraint repeated.
        ix.insert(sub(
            2,
            Filter::any().with_constraint("x", Op::Gt, 5i64).with_constraint("x", Op::Gt, 5i64),
        ));
        let at = |v: i64| Event::new("k").with_attr("x", v);
        assert_eq!(ids(&ix, &at(7)), vec![1, 2]);
        assert_eq!(ids(&ix, &at(12)), vec![2]);
        assert_eq!(ids(&ix, &at(3)), vec![1]);
    }

    #[test]
    fn insert_remove_roundtrip_leaves_no_residue() {
        let mut ix = FilterIndex::new();
        let filters = [
            Filter::for_kind("k").with_eq("u", "bob"),
            Filter::any().with_constraint("x", Op::Gt, 1.5),
            Filter::any().with_constraint("s", Op::Prefix, "abc"),
            Filter::any().with_constraint("s", Op::Suffix, "z"),
            Filter::for_kind("k"),
            Filter::any(),
        ];
        for (i, f) in filters.iter().enumerate() {
            assert!(ix.insert(sub(i as u64, f.clone())));
        }
        assert!(!ix.insert(sub(0, Filter::any())), "duplicate id rejected");
        for i in 0..filters.len() {
            assert!(ix.remove(i as u64).is_some());
        }
        assert!(ix.is_empty());
        assert!(ix.attrs.is_empty(), "attribute buckets must drain");
        assert!(ix.kind_only.is_empty());
        assert!(ix.universal.is_empty());
        assert!(ix.remove(0).is_none());
    }

    #[test]
    fn covering_ids_agrees_with_filter_covers() {
        let mut ix = FilterIndex::new();
        let stored = [
            Filter::for_kind("k"),
            Filter::for_kind("k").with_eq("u", "bob"),
            Filter::any().with_constraint("x", Op::Gt, 0i64),
            Filter::any().with_constraint("s", Op::Prefix, "st"),
            Filter::any().with_exists("u"),
            Filter::any(),
            Filter::for_kind("other"),
        ];
        for (i, f) in stored.iter().enumerate() {
            ix.insert(sub(i as u64, f.clone()));
        }
        let queries = [
            Filter::for_kind("k").with_eq("u", "bob"),
            Filter::for_kind("k").with_eq("u", "bob").with_eq("x", 5i64),
            Filter::for_kind("k"),
            Filter::any().with_eq("s", "st andrews"),
            Filter::any(),
        ];
        for q in &queries {
            let got = ix.covering_ids(q).expect("all-Eq query");
            let want: Vec<SubId> = stored
                .iter()
                .enumerate()
                .filter(|(_, f)| f.covers(q))
                .map(|(i, _)| i as u64)
                .collect();
            assert_eq!(got, want, "query {q}");
        }
        // Outside the Eq fragment: no answer, caller scans.
        assert!(ix.covering_ids(&Filter::any().with_constraint("x", Op::Gt, 1i64)).is_none());
        assert!(ix.covering_ids(&Filter::any().with_eq("x", 1i64).with_eq("x", 2i64)).is_none());
    }

    #[test]
    fn match_order_is_insertion_order() {
        let mut ix = FilterIndex::new();
        for id in [9u64, 4, 7, 1] {
            ix.insert(sub(id, Filter::for_kind("k")));
        }
        assert_eq!(ids(&ix, &Event::new("k")), vec![9, 4, 7, 1]);
        ix.remove(4);
        ix.insert(sub(4, Filter::for_kind("k")));
        assert_eq!(ids(&ix, &Event::new("k")), vec![9, 7, 1, 4], "reinsertion goes to the back");
    }
}
