//! Typed attribute values, following Siena's name/type/value tuples.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The value of an event attribute.
///
/// Comparisons between `Int` and `Float` are numeric; all other cross-type
/// comparisons are undefined (constraints on mismatched types simply fail
/// to match, they do not error).
///
/// Strings are `Arc<str>` so values clone by reference-count bump on the
/// broker routing and matching hot paths.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string.
    Str(Arc<str>),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A boolean.
    Bool(bool),
}

impl AttrValue {
    /// The type name, for diagnostics and XML encoding.
    pub fn type_name(&self) -> &'static str {
        match self {
            AttrValue::Str(_) => "str",
            AttrValue::Int(_) => "int",
            AttrValue::Float(_) => "float",
            AttrValue::Bool(_) => "bool",
        }
    }

    /// The string inside, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Float` yield a float.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean inside, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Total-order comparison where defined: numerics compare numerically,
    /// strings lexicographically, booleans false < true. Mismatched types
    /// return `None`.
    pub fn partial_cmp_value(&self, other: &AttrValue) -> Option<Ordering> {
        use AttrValue::*;
        match (self, other) {
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_number()?, b.as_number()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Equality where defined (numeric across `Int`/`Float`).
    pub fn eq_value(&self, other: &AttrValue) -> bool {
        self.partial_cmp_value(other) == Some(Ordering::Equal)
    }

    /// Encodes the value as text for XML transport; parses back via
    /// [`AttrValue::from_text`] given the [`type_name`](Self::type_name).
    pub fn to_text(&self) -> String {
        match self {
            AttrValue::Str(s) => s.to_string(),
            AttrValue::Int(i) => i.to_string(),
            AttrValue::Float(f) => {
                // Preserve float-ness through the round trip.
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{f:.1}")
                } else {
                    f.to_string()
                }
            }
            AttrValue::Bool(b) => b.to_string(),
        }
    }

    /// Decodes a value from its `type_name` and text form.
    ///
    /// Returns `None` for unknown types or unparseable text.
    pub fn from_text(type_name: &str, text: &str) -> Option<AttrValue> {
        match type_name {
            "str" => Some(AttrValue::Str(text.into())),
            "int" => text.trim().parse().ok().map(AttrValue::Int),
            "float" => text.trim().parse().ok().map(AttrValue::Float),
            "bool" => match text.trim() {
                "true" => Some(AttrValue::Bool(true)),
                "false" => Some(AttrValue::Bool(false)),
                _ => None,
            },
            _ => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => write!(f, "\"{s}\""),
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.into())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s.into())
    }
}

impl From<Arc<str>> for AttrValue {
    fn from(s: Arc<str>) -> Self {
        AttrValue::Str(s)
    }
}

impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}

impl From<i32> for AttrValue {
    fn from(i: i32) -> Self {
        AttrValue::Int(i as i64)
    }
}

impl From<u32> for AttrValue {
    fn from(i: u32) -> Self {
        AttrValue::Int(i as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(f: f64) -> Self {
        AttrValue::Float(f)
    }
}

impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_comparison() {
        assert!(AttrValue::Int(3).eq_value(&AttrValue::Float(3.0)));
        assert_eq!(
            AttrValue::Int(2).partial_cmp_value(&AttrValue::Float(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn mismatched_types_do_not_compare() {
        assert_eq!(AttrValue::Str("3".into()).partial_cmp_value(&AttrValue::Int(3)), None);
        assert!(!AttrValue::Bool(true).eq_value(&AttrValue::Int(1)));
    }

    #[test]
    fn string_ordering() {
        assert_eq!(
            AttrValue::Str("abc".into()).partial_cmp_value(&AttrValue::Str("abd".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn text_round_trip() {
        let values = [
            AttrValue::Str("hello world".into()),
            AttrValue::Int(-42),
            AttrValue::Float(3.25),
            AttrValue::Float(7.0),
            AttrValue::Bool(true),
        ];
        for v in values {
            let back = AttrValue::from_text(v.type_name(), &v.to_text()).unwrap();
            assert!(v.eq_value(&back) || v == back, "{v:?} vs {back:?}");
            assert_eq!(back.type_name(), v.type_name());
        }
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert_eq!(AttrValue::from_text("int", "abc"), None);
        assert_eq!(AttrValue::from_text("bool", "maybe"), None);
        assert_eq!(AttrValue::from_text("quaternion", "1"), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(AttrValue::from("x"), AttrValue::Str("x".into()));
        assert_eq!(AttrValue::from(5i64), AttrValue::Int(5));
        assert_eq!(AttrValue::from(5i32), AttrValue::Int(5));
        assert_eq!(AttrValue::from(2.5), AttrValue::Float(2.5));
        assert_eq!(AttrValue::from(true), AttrValue::Bool(true));
    }

    #[test]
    fn display_forms() {
        assert_eq!(AttrValue::Str("s".into()).to_string(), "\"s\"");
        assert_eq!(AttrValue::Int(1).to_string(), "1");
    }
}
