//! Content-based publish/subscribe: the paper's "generic global event
//! service" (§4.1).
//!
//! The paper proposes "a general-purpose system such as Siena" to
//! distribute both low-level sensor events and high-level synthesised
//! events, because "it has enough expressibility in its publish/subscribe
//! language and shows evidence of being globally scalable". This crate
//! implements the published Siena design:
//!
//! * typed attribute events ([`Event`], [`AttrValue`]) with optional XML
//!   payloads bound via type projection,
//! * a subscription language ([`Filter`], [`Constraint`], [`Op`]) with the
//!   **covering** relation used to prune subscription propagation,
//! * [`Broker`] state machines supporting the *hierarchical* and *acyclic
//!   peer* topologies of the Siena paper,
//! * an Elvin-like [`centralized`] client-server baseline ("it uses a
//!   client-server architecture, limiting its scalability" — experiment
//!   **C1** quantifies this), and
//! * Mobikit-like [`mobility`] proxies that subscribe on behalf of
//!   disconnected mobile clients and hand buffered events over on
//!   reconnection.
//!
//! # Example
//!
//! ```
//! use gloss_event::{Event, Filter, Op};
//!
//! let filter = Filter::for_kind("user.location")
//!     .with_eq("user", "bob")
//!     .with_constraint("lat", Op::Gt, 56.0);
//! let event = Event::new("user.location")
//!     .with_attr("user", "bob")
//!     .with_attr("lat", 56.34);
//! assert!(filter.matches(&event));
//! ```

pub mod baseline;
pub mod broker;
pub mod centralized;
pub mod filter;
pub mod index;
pub mod mobility;
pub mod network;
pub mod notification;
pub mod value;

pub use baseline::LinearBroker;
pub use broker::{Broker, BrokerMsg, BrokerTopology, SubId};
pub use centralized::CentralServer;
pub use filter::{merge_cover, Advertisement, Constraint, Filter, Op, Subscription};
pub use gloss_governor::{IngressClass, LoadShedder, ShedConfig, ShedDecision};
pub use index::FilterIndex;
pub use network::{Architecture, ClientApi, PubSubConfig, PubSubNetwork, PubSubNode, Role};
pub use notification::{Event, EventId};
pub use value::AttrValue;
