//! The Siena-like event broker: a sans-IO state machine implementing
//! subscription propagation with covering-based pruning, advertisement
//! gating, and notification forwarding over hierarchical or acyclic-peer
//! broker topologies.
//!
//! Since PR 8 the broker is *sublinear* in its subscription table:
//!
//! * routing consults a counting [`FilterIndex`] instead of scanning the
//!   table filter-by-filter, so publish cost tracks the number of
//!   candidate subscriptions sharing attributes with the event, and
//! * each neighbouring interface keeps a [`ForwardTable`] — the covering
//!   relation over forwarded filters maintained *incrementally* as a
//!   parent/children DAG, with overlapping same-kind filters collapsed
//!   into one merged upstream filter ([`merge_cover`]) — so subscribe
//!   prunes against forwarded roots only and unsubscribe repairs just the
//!   removed filter's children instead of re-scanning the whole table.
//!
//! The pre-index broker survives verbatim as
//! [`LinearBroker`](crate::LinearBroker); property tests assert both
//! deliver byte-identical notification streams to clients.

use crate::filter::{merge_cover, Advertisement, Filter, Subscription};
use crate::index::FilterIndex;
use crate::notification::Event;
use gloss_governor::{IngressClass, LoadShedder, ShedConfig, ShedDecision};
use gloss_sim::{FnvBuildHasher, FnvHashMap, NodeIndex, Outbox, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Unique subscription identifier (clients derive these from their node
/// index so ids never collide).
pub type SubId = u64;

/// Tag bit for broker-minted merged filters. Client-assigned ids are
/// `(node_index << 32) | seq` with 31-bit node indices, so bit 63 is
/// never set on a client's subscription — the bit only keeps minted ids
/// collision-free. It does NOT mean "synthetic to this broker": a merged
/// cover minted downstream arrives here as a perfectly live subscription
/// with bit 63 set, so "is this id live here" is always decided by
/// `subs.contains(id)`, never by testing the bit.
const SYNTH_BIT: u64 = 1 << 63;

/// How many most-recent forwarded roots a new subscription is tested
/// against for merging. Bounded so subscribe stays O(1)-ish per target;
/// newest roots are the likeliest merge partners under churn.
const MERGE_SCAN: usize = 8;

/// How this broker is wired to other brokers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerTopology {
    /// Acyclic peer-to-peer graph: subscriptions propagate to all
    /// neighbours (pruned by covering); notifications follow reverse
    /// subscription paths.
    Peer {
        /// Neighbouring brokers.
        neighbors: Vec<NodeIndex>,
    },
    /// Hierarchical (client/server chain): subscriptions propagate to the
    /// parent only; notifications always flow up, and down only toward
    /// matching subscriptions. Simpler, but the root sees every event —
    /// the scalability contrast measured in experiment C1.
    Hierarchical {
        /// The parent broker (`None` at the root).
        parent: Option<NodeIndex>,
        /// Child brokers.
        children: Vec<NodeIndex>,
    },
}

impl BrokerTopology {
    fn broker_links(&self) -> Vec<NodeIndex> {
        match self {
            BrokerTopology::Peer { neighbors } => neighbors.clone(),
            BrokerTopology::Hierarchical { parent, children } => {
                let mut v = children.clone();
                if let Some(p) = parent {
                    v.push(*p);
                }
                v
            }
        }
    }
}

/// Messages of the publish/subscribe plane.
#[derive(Debug, Clone, PartialEq)]
pub enum BrokerMsg {
    /// Register a subscription (client→broker and broker→broker).
    Subscribe(Subscription),
    /// Remove a subscription by id.
    Unsubscribe(SubId),
    /// Declare the events a publisher will produce.
    Advertise(Advertisement),
    /// Retract an advertisement.
    Unadvertise(u64),
    /// Publish an event (client→broker).
    Publish(Event),
    /// Deliver/forward an event (broker→broker and broker→client).
    Notify(Event),
    /// A client registers with its access broker.
    Attach,
    /// A client deregisters (its subscriptions are dropped).
    Detach,
    /// Mobility: the client disconnects; a proxy buffers its events.
    MoveOut,
    /// Mobility: the client reconnects here; fetch state from `old_broker`.
    MoveIn {
        /// The broker the client was previously attached to.
        old_broker: NodeIndex,
    },
    /// Mobility: new broker asks old broker for a client's state.
    FetchBuffer {
        /// The mobile client.
        client: NodeIndex,
    },
    /// Mobility: old broker hands over buffered events and subscriptions.
    Handoff {
        /// The mobile client.
        client: NodeIndex,
        /// Events buffered while the client was away.
        events: Vec<Event>,
        /// The client's subscriptions, to re-register at the new broker.
        subs: Vec<Subscription>,
    },
}

/// The covering DAG over filters forwarded toward one neighbouring
/// interface. *Roots* are the filters actually forwarded (real
/// subscription filters, or broker-minted merged covers); every
/// non-forwarded subscription is recorded as a *child* of the root that
/// covers it. Roots double as a [`FilterIndex`], so "is this new filter
/// already covered" is a counting probe, not a table scan, and removing a
/// root repairs only its recorded children.
#[derive(Debug, Clone, Default)]
struct ForwardTable {
    /// Forwarded filters, indexed for sublinear cover queries.
    roots: FilterIndex,
    /// Root ids in forwarding order (deterministic scan/merge order).
    order: Vec<SubId>,
    /// Covered subscription → the root covering it.
    parent: FnvHashMap<SubId, SubId>,
    /// Root → covered subscriptions, in arrival order.
    children: FnvHashMap<SubId, Vec<SubId>>,
}

impl ForwardTable {
    fn add_root(&mut self, sub: Subscription) {
        self.order.push(sub.id);
        self.roots.insert(sub);
    }

    fn remove_root(&mut self, id: SubId) {
        self.order.retain(|x| *x != id);
        self.roots.remove(id);
    }

    /// The first forwarded root covering `f`, if any. All-`Eq` filters
    /// (the overwhelmingly common shape) resolve through the counting
    /// index; anything else scans the forwarded roots — still bounded by
    /// the *forwarded* set, which covering keeps far smaller than the
    /// subscription table.
    fn find_cover(&self, f: &Filter) -> Option<SubId> {
        if self.order.is_empty() {
            return None;
        }
        if let Some(ids) = self.roots.covering_ids(f) {
            return ids.into_iter().next();
        }
        self.order.iter().copied().find(|&r| self.roots.get(r).is_some_and(|s| s.filter.covers(f)))
    }

    /// A recent root `f` can merge with, and the merged cover.
    fn try_merge(&self, f: &Filter) -> Option<(SubId, Filter)> {
        for &r in self.order.iter().rev().take(MERGE_SCAN) {
            let rf = &self.roots.get(r).expect("root indexed").filter;
            if let Some(m) = merge_cover(rf, f).or_else(|| merge_cover(f, rf)) {
                return Some((r, m));
            }
        }
        None
    }
}

/// A content-based event broker (one per broker node).
#[derive(Debug, Clone)]
pub struct Broker {
    me: NodeIndex,
    topology: BrokerTopology,
    clients: BTreeSet<NodeIndex>,
    /// The subscription table, as a counting attribute index.
    subs: FilterIndex,
    /// Which interface each stored subscription arrived on.
    iface_of: FnvHashMap<SubId, NodeIndex>,
    /// Subscription ids per arrival interface, in arrival order (drives
    /// detach/handoff iteration without a table scan).
    by_iface: FnvHashMap<u32, Vec<SubId>>,
    /// Incremental covering DAG per neighbouring broker.
    tables: BTreeMap<NodeIndex, ForwardTable>,
    /// Advertisements seen, with the interface they arrived from.
    advs: Vec<(Advertisement, NodeIndex)>,
    /// When true, subscriptions are only forwarded toward interfaces that
    /// sent an overlapping advertisement.
    use_advertisements: bool,
    /// Mobility proxies: disconnected client → buffered events.
    proxies: BTreeMap<NodeIndex, Vec<Event>>,
    /// Ingress load shedder (None = unbounded legacy behaviour).
    shed: Option<LoadShedder>,
    /// Counter for broker-minted merged-filter ids.
    synth_seq: u64,
    /// Messages handled (load metric for C1).
    pub msgs_handled: u64,
    /// Notifications forwarded to other brokers.
    pub notifications_forwarded: u64,
}

/// Classifies a broker message for the load shedder. Publications carry
/// their priority in a `prio` numeric attribute; events without one
/// default above the priority floor (unmarked traffic is not low
/// priority).
fn ingress_class(msg: &BrokerMsg) -> (IngressClass, f64) {
    match msg {
        BrokerMsg::Subscribe(_) => (IngressClass::Subscription, 0.0),
        BrokerMsg::Publish(e) | BrokerMsg::Notify(e) => {
            (IngressClass::Publication, e.num_attr("prio").unwrap_or(f64::MAX))
        }
        _ => (IngressClass::Control, 0.0),
    }
}

impl Broker {
    /// Creates a broker for node `me` with the given topology.
    pub fn new(me: NodeIndex, topology: BrokerTopology) -> Self {
        Broker {
            me,
            topology,
            clients: BTreeSet::new(),
            subs: FilterIndex::new(),
            iface_of: FnvHashMap::default(),
            by_iface: FnvHashMap::default(),
            tables: BTreeMap::new(),
            advs: Vec::new(),
            use_advertisements: false,
            proxies: BTreeMap::new(),
            shed: None,
            synth_seq: 0,
            msgs_handled: 0,
            notifications_forwarded: 0,
        }
    }

    /// Enables advertisement-gated subscription forwarding.
    pub fn with_advertisements(mut self) -> Self {
        self.use_advertisements = true;
        self
    }

    /// Bounds this broker's ingress with a watermark load shedder.
    pub fn with_shedding(mut self, cfg: ShedConfig) -> Self {
        self.shed = Some(LoadShedder::new(cfg));
        self
    }

    /// The ingress shedder, when installed (for harness assertions).
    pub fn shedder(&self) -> Option<&LoadShedder> {
        self.shed.as_ref()
    }

    /// This broker's node index.
    pub fn index(&self) -> NodeIndex {
        self.me
    }

    /// Number of subscription entries currently stored.
    pub fn subscription_count(&self) -> usize {
        self.subs.len()
    }

    /// The stored subscriptions, in arrival order (for audit passes over
    /// the table).
    pub fn subscriptions(&self) -> impl Iterator<Item = &Subscription> {
        self.subs.iter_in_order()
    }

    /// Filters currently forwarded toward `target`, in forwarding order.
    /// Together they cover every local subscription that needs events
    /// from that interface (the invariant the equivalence tests check).
    pub fn forwarded_filters(&self, target: NodeIndex) -> Vec<Filter> {
        let Some(table) = self.tables.get(&target) else {
            return Vec::new();
        };
        table
            .order
            .iter()
            .map(|&r| table.roots.get(r).expect("root indexed").filter.clone())
            .collect()
    }

    /// The locally attached clients.
    pub fn clients(&self) -> impl Iterator<Item = NodeIndex> + '_ {
        self.clients.iter().copied()
    }

    /// Whether a proxy is buffering for `client`.
    pub fn has_proxy_for(&self, client: NodeIndex) -> bool {
        self.proxies.contains_key(&client)
    }

    /// Handles one message. `from` is the interface (client or neighbour
    /// broker) it arrived on.
    pub fn handle(
        &mut self,
        now: SimTime,
        from: NodeIndex,
        msg: BrokerMsg,
        out: &mut Outbox<BrokerMsg>,
    ) {
        self.msgs_handled += 1;
        if let Some(shed) = &mut self.shed {
            let (class, priority) = ingress_class(&msg);
            match shed.offer(now, from.0, class, priority) {
                ShedDecision::Admit(delay) => {
                    if delay > SimDuration::ZERO {
                        out.observe("pubsub.queue_delay_us", delay.as_micros() as f64);
                    }
                }
                ShedDecision::Shed => {
                    out.count("pubsub.shed", 1.0);
                    return;
                }
                ShedDecision::RejectSubscription => {
                    out.count("pubsub.subs_rejected", 1.0);
                    return;
                }
            }
        }
        match msg {
            BrokerMsg::Attach => {
                self.clients.insert(from);
            }
            BrokerMsg::Detach => {
                self.clients.remove(&from);
                let ids: Vec<SubId> = self.by_iface.get(&from.0).cloned().unwrap_or_default();
                for id in ids {
                    self.unsubscribe(id, out);
                }
            }
            BrokerMsg::Subscribe(sub) => self.subscribe(from, sub, out),
            BrokerMsg::Unsubscribe(id) => self.unsubscribe(id, out),
            BrokerMsg::Advertise(adv) => self.advertise(from, adv, out),
            BrokerMsg::Unadvertise(id) => {
                if let Some(pos) = self.advs.iter().position(|(a, _)| a.id == id) {
                    let (_, iface) = self.advs.remove(pos);
                    // Flood the retraction away from where it came.
                    for n in self.topology.broker_links() {
                        if n != iface {
                            out.send(n, BrokerMsg::Unadvertise(id));
                        }
                    }
                }
            }
            BrokerMsg::Publish(event) | BrokerMsg::Notify(event) => self.route(from, event, out),
            BrokerMsg::MoveOut => {
                // Keep the client's subscriptions live; buffer its events.
                self.proxies.entry(from).or_default();
                out.count("pubsub.move_out", 1.0);
            }
            BrokerMsg::MoveIn { old_broker } => {
                self.clients.insert(from);
                out.send(old_broker, BrokerMsg::FetchBuffer { client: from });
            }
            BrokerMsg::FetchBuffer { client } => {
                let events = self.proxies.remove(&client).unwrap_or_default();
                let ids: Vec<SubId> = self.by_iface.get(&client.0).cloned().unwrap_or_default();
                let subs: Vec<Subscription> =
                    ids.iter().map(|&i| self.subs.get(i).expect("id tracked").clone()).collect();
                self.clients.remove(&client);
                for s in &subs {
                    self.unsubscribe(s.id, out);
                }
                out.send(from, BrokerMsg::Handoff { client, events, subs });
            }
            BrokerMsg::Handoff { client, events, subs } => {
                // The handoff target is the client's new access broker;
                // (re-)attach covers the same-broker move, where
                // FetchBuffer detached the client after MoveIn attached it.
                self.clients.insert(client);
                for s in subs {
                    self.subscribe(client, s, out);
                }
                out.count("pubsub.handoff_events", events.len() as f64);
                for e in events {
                    out.send(client, BrokerMsg::Notify(e));
                }
            }
        }
    }

    /// Targets for subscription propagation, excluding the interface the
    /// subscription arrived on.
    fn sub_targets(&self, came_from: NodeIndex) -> Vec<NodeIndex> {
        match &self.topology {
            BrokerTopology::Peer { neighbors } => {
                neighbors.iter().copied().filter(|n| *n != came_from).collect()
            }
            BrokerTopology::Hierarchical { parent, .. } => {
                parent.iter().copied().filter(|p| *p != came_from).collect()
            }
        }
    }

    fn subscribe(&mut self, from: NodeIndex, sub: Subscription, out: &mut Outbox<BrokerMsg>) {
        if self.subs.contains(sub.id) {
            return; // duplicate (acyclic topologies make this rare)
        }
        for target in self.sub_targets(from) {
            let table = self.tables.entry(target).or_default();
            // Covering-based pruning: an already-forwarded root covering
            // this filter makes forwarding redundant. `find_cover`
            // short-circuits on an empty table and answers all-Eq filters
            // from the counting index.
            if let Some(root) = table.find_cover(&sub.filter) {
                table.parent.insert(sub.id, root);
                table.children.entry(root).or_default().push(sub.id);
                out.count("pubsub.subs_pruned", 1.0);
                continue;
            }
            // Advertisement gating: forward only toward interfaces that
            // advertised overlapping events.
            if self.use_advertisements {
                let relevant = self
                    .advs
                    .iter()
                    .any(|(a, iface)| *iface == target && a.relevant_to(&sub.filter));
                if !relevant {
                    out.count("pubsub.subs_gated", 1.0);
                    continue;
                }
            }
            // SIENA-style merging: collapse this filter with an
            // overlapping forwarded root into one broader cover, so the
            // upstream broker holds one filter instead of two. (A merged
            // cover admits more events on this link; local matching
            // still delivers exactly the right ones to clients.)
            if let Some((partner, merged)) = table.try_merge(&sub.filter) {
                let synth = SYNTH_BIT
                    | (u64::from(self.me.0) << 32)
                    | (self.synth_seq & u64::from(u32::MAX));
                self.synth_seq += 1;
                let synthetic = Subscription { id: synth, filter: merged };
                // Subscribe before unsubscribe: upstream coverage never gaps.
                out.send(target, BrokerMsg::Subscribe(synthetic.clone()));
                out.send(target, BrokerMsg::Unsubscribe(partner));
                table.remove_root(partner);
                let mut kids = table.children.remove(&partner).unwrap_or_default();
                if self.subs.contains(partner) {
                    // A live partner — a client's sub, or a merged cover a
                    // downstream broker forwarded to us — is now covered
                    // itself; only this broker's own minted covers (never
                    // stored in `subs`) simply vanish.
                    kids.push(partner);
                }
                kids.push(sub.id);
                for &c in &kids {
                    table.parent.insert(c, synth);
                }
                table.children.insert(synth, kids);
                table.add_root(synthetic);
                out.count("pubsub.subs_merged", 1.0);
                continue;
            }
            table.add_root(sub.clone());
            out.send(target, BrokerMsg::Subscribe(sub.clone()));
        }
        self.iface_of.insert(sub.id, from);
        self.by_iface.entry(from.0).or_default().push(sub.id);
        self.subs.insert(sub);
    }

    fn unsubscribe(&mut self, id: SubId, out: &mut Outbox<BrokerMsg>) {
        if self.subs.remove(id).is_none() {
            return;
        }
        if let Some(iface) = self.iface_of.remove(&id) {
            if let Some(v) = self.by_iface.get_mut(&iface.0) {
                v.retain(|x| *x != id);
                if v.is_empty() {
                    self.by_iface.remove(&iface.0);
                }
            }
        }
        for (target, table) in self.tables.iter_mut() {
            if table.roots.contains(id) {
                // A forwarded root goes away: retract it, then repair
                // coverage for exactly its recorded children — not the
                // whole table, which is what the linear broker re-scanned.
                table.remove_root(id);
                out.send(*target, BrokerMsg::Unsubscribe(id));
                let kids = table.children.remove(&id).unwrap_or_default();
                for c in kids {
                    table.parent.remove(&c);
                    let cf = self.subs.get(c).expect("children are live subs").clone();
                    match table.find_cover(&cf.filter) {
                        Some(r) => {
                            table.parent.insert(c, r);
                            table.children.entry(r).or_default().push(c);
                        }
                        None => {
                            out.send(*target, BrokerMsg::Subscribe(cf.clone()));
                            table.add_root(cf);
                        }
                    }
                }
            } else if let Some(p) = table.parent.remove(&id) {
                // A covered child goes away: detach it, and retract a
                // broker-minted merged cover once its last child is gone.
                if let Some(kids) = table.children.get_mut(&p) {
                    kids.retain(|x| *x != id);
                    if kids.is_empty() {
                        table.children.remove(&p);
                        if !self.subs.contains(p) {
                            // Not a live subscription here ⇒ a cover this
                            // broker minted; retract it. A downstream
                            // broker's merged cover stays forwarded until
                            // its own Unsubscribe arrives.
                            table.remove_root(p);
                            out.send(*target, BrokerMsg::Unsubscribe(p));
                        }
                    }
                }
            }
        }
    }

    fn advertise(&mut self, from: NodeIndex, adv: Advertisement, out: &mut Outbox<BrokerMsg>) {
        if self.advs.iter().any(|(a, _)| a.id == adv.id) {
            return;
        }
        // Advertisements flood the broker graph.
        for n in self.topology.broker_links() {
            if n != from {
                out.send(n, BrokerMsg::Advertise(adv.clone()));
            }
        }
        self.advs.push((adv, from));
    }

    fn route(&mut self, from: NodeIndex, event: Event, out: &mut Outbox<BrokerMsg>) {
        // One counting probe yields every matching subscription, in
        // arrival order (the order the old linear scan delivered in).
        let matched = self.subs.matching_event(&event);
        // Interfaces with at least one matching subscription, for
        // inter-broker forwarding decisions.
        let mut wanted: HashSet<u32, FnvBuildHasher> = HashSet::default();
        let mut buffered: HashSet<u32, FnvBuildHasher> = HashSet::default();
        let mut to_buffer: Vec<NodeIndex> = Vec::new();
        for &id in &matched {
            let iface = *self.iface_of.get(&id).expect("id tracked");
            wanted.insert(iface.0);
            if iface == from {
                continue;
            }
            if self.proxies.contains_key(&iface) {
                if buffered.insert(iface.0) {
                    to_buffer.push(iface);
                }
            } else if self.clients.contains(&iface) {
                out.send(iface, BrokerMsg::Notify(event.clone()));
                out.count("pubsub.delivered_local", 1.0);
            }
        }
        for iface in to_buffer {
            self.proxies.get_mut(&iface).expect("proxy exists").push(event.clone());
        }

        // Inter-broker forwarding.
        match &self.topology {
            BrokerTopology::Peer { neighbors } => {
                for &n in neighbors {
                    if n != from && wanted.contains(&n.0) {
                        self.notifications_forwarded += 1;
                        out.send(n, BrokerMsg::Notify(event.clone()));
                    }
                }
            }
            BrokerTopology::Hierarchical { parent, children } => {
                if let Some(p) = parent {
                    if *p != from {
                        // Hierarchical cost: everything flows to the root.
                        self.notifications_forwarded += 1;
                        out.send(*p, BrokerMsg::Notify(event.clone()));
                    }
                }
                for &c in children {
                    if c != from && wanted.contains(&c.0) {
                        self.notifications_forwarded += 1;
                        out.send(c, BrokerMsg::Notify(event.clone()));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Op;

    fn n(i: u32) -> NodeIndex {
        NodeIndex(i)
    }

    fn sub(id: SubId, filter: Filter) -> Subscription {
        Subscription { id, filter }
    }

    fn sent_to(out: &Outbox<BrokerMsg>, to: NodeIndex) -> Vec<&BrokerMsg> {
        out.sends().iter().filter(|(t, _, _)| *t == to).map(|(_, m, _)| m).collect()
    }

    /// Broker 0 with peer neighbours 1 and 2; client 10 attached.
    fn peer_broker() -> Broker {
        let mut b = Broker::new(n(0), BrokerTopology::Peer { neighbors: vec![n(1), n(2)] });
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Attach, &mut out);
        b
    }

    #[test]
    fn subscription_forwarded_to_other_neighbors() {
        let mut b = peer_broker();
        let mut out = Outbox::new();
        let s = sub(1, Filter::for_kind("k"));
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Subscribe(s), &mut out);
        assert_eq!(sent_to(&out, n(1)).len(), 1);
        assert_eq!(sent_to(&out, n(2)).len(), 1);
        // From a neighbour: not forwarded back.
        let mut out = Outbox::new();
        let s = sub(2, Filter::for_kind("j"));
        b.handle(SimTime::ZERO, n(1), BrokerMsg::Subscribe(s), &mut out);
        assert!(sent_to(&out, n(1)).is_empty());
        assert_eq!(sent_to(&out, n(2)).len(), 1);
    }

    #[test]
    fn covering_prunes_forwarding() {
        let mut b = peer_broker();
        let mut out = Outbox::new();
        let broad = sub(1, Filter::for_kind("k"));
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Subscribe(broad), &mut out);
        // A narrower subscription is covered: no further forwarding.
        let mut out = Outbox::new();
        let narrow = sub(2, Filter::for_kind("k").with_eq("user", "bob"));
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Subscribe(narrow), &mut out);
        assert!(out.sends().is_empty(), "covered sub must not be forwarded");
        assert_eq!(b.subscription_count(), 2);
    }

    #[test]
    fn uncovered_subscription_still_forwarded() {
        let mut b = peer_broker();
        let mut out = Outbox::new();
        let narrow = sub(1, Filter::for_kind("k").with_eq("user", "bob"));
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Subscribe(narrow), &mut out);
        let mut out = Outbox::new();
        let broad = sub(2, Filter::for_kind("k"));
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Subscribe(broad), &mut out);
        // Broad is not covered by narrow; must go out to both neighbours.
        assert_eq!(out.sends().len(), 2);
    }

    #[test]
    fn notification_follows_subscription_reverse_path() {
        let mut b = peer_broker();
        let mut out = Outbox::new();
        // Neighbour 1 subscribed to kind k.
        b.handle(
            SimTime::ZERO,
            n(1),
            BrokerMsg::Subscribe(sub(1, Filter::for_kind("k"))),
            &mut out,
        );
        // Client 10 publishes a matching event.
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Publish(Event::new("k")), &mut out);
        assert_eq!(sent_to(&out, n(1)).len(), 1, "forward toward subscriber");
        assert!(sent_to(&out, n(2)).is_empty(), "no subscriber there");
        // Non-matching event goes nowhere.
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Publish(Event::new("other")), &mut out);
        assert!(out.sends().is_empty());
    }

    #[test]
    fn local_client_delivery() {
        let mut b = peer_broker();
        let mut out = Outbox::new();
        b.handle(
            SimTime::ZERO,
            n(10),
            BrokerMsg::Subscribe(sub(1, Filter::any().with_constraint("t", Op::Gt, 15i64))),
            &mut out,
        );
        let mut out = Outbox::new();
        let ev = Event::new("w").with_attr("t", 20i64);
        b.handle(SimTime::ZERO, n(1), BrokerMsg::Notify(ev), &mut out);
        let delivered = sent_to(&out, n(10));
        assert_eq!(delivered.len(), 1);
        assert!(matches!(delivered[0], BrokerMsg::Notify(_)));
    }

    #[test]
    fn publisher_does_not_receive_own_event() {
        let mut b = peer_broker();
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Subscribe(sub(1, Filter::any())), &mut out);
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Publish(Event::new("k")), &mut out);
        assert!(sent_to(&out, n(10)).is_empty());
    }

    #[test]
    fn unsubscribe_stops_forwarding_and_reinstates_covered() {
        let mut b = peer_broker();
        let mut out = Outbox::new();
        b.handle(
            SimTime::ZERO,
            n(10),
            BrokerMsg::Subscribe(sub(1, Filter::for_kind("k"))),
            &mut out,
        );
        b.handle(
            SimTime::ZERO,
            n(10),
            BrokerMsg::Subscribe(sub(2, Filter::for_kind("k").with_eq("u", "bob"))),
            &mut out,
        );
        // Unsubscribe the broad one; the narrow one must now be forwarded.
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Unsubscribe(1), &mut out);
        let to1 = sent_to(&out, n(1));
        assert!(to1.iter().any(|m| matches!(m, BrokerMsg::Unsubscribe(1))));
        assert!(
            to1.iter().any(|m| matches!(m, BrokerMsg::Subscribe(s) if s.id == 2)),
            "previously covered sub must be re-forwarded"
        );
        // Events no longer delivered to 10 after full unsubscribe of 2.
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Unsubscribe(2), &mut out);
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(1), BrokerMsg::Notify(Event::new("k")), &mut out);
        assert!(sent_to(&out, n(10)).is_empty());
    }

    #[test]
    fn hierarchical_notifications_always_go_up() {
        let mut b = Broker::new(
            n(1),
            BrokerTopology::Hierarchical { parent: Some(n(0)), children: vec![n(2)] },
        );
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Attach, &mut out);
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Publish(Event::new("k")), &mut out);
        assert_eq!(sent_to(&out, n(0)).len(), 1, "parent always gets the event");
        assert!(sent_to(&out, n(2)).is_empty(), "child has no matching sub");
    }

    #[test]
    fn hierarchical_subscriptions_go_to_parent_only() {
        let mut b = Broker::new(
            n(1),
            BrokerTopology::Hierarchical { parent: Some(n(0)), children: vec![n(2)] },
        );
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Subscribe(sub(1, Filter::any())), &mut out);
        assert_eq!(sent_to(&out, n(0)).len(), 1);
        assert!(sent_to(&out, n(2)).is_empty());
    }

    #[test]
    fn hierarchical_down_forwarding_needs_matching_sub() {
        let mut b = Broker::new(
            n(0),
            BrokerTopology::Hierarchical { parent: None, children: vec![n(1), n(2)] },
        );
        let mut out = Outbox::new();
        b.handle(
            SimTime::ZERO,
            n(1),
            BrokerMsg::Subscribe(sub(1, Filter::for_kind("k"))),
            &mut out,
        );
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(2), BrokerMsg::Notify(Event::new("k")), &mut out);
        assert_eq!(sent_to(&out, n(1)).len(), 1);
        assert!(sent_to(&out, n(2)).is_empty());
    }

    #[test]
    fn advertisement_gating() {
        let mut b = peer_broker().with_advertisements();
        let mut out = Outbox::new();
        // Neighbour 1 advertises kind k.
        b.handle(
            SimTime::ZERO,
            n(1),
            BrokerMsg::Advertise(Advertisement { id: 7, filter: Filter::for_kind("k") }),
            &mut out,
        );
        // Advertisement floods to the other neighbour.
        assert_eq!(sent_to(&out, n(2)).len(), 1);
        // A subscription for kind k goes toward 1 only.
        let mut out = Outbox::new();
        b.handle(
            SimTime::ZERO,
            n(10),
            BrokerMsg::Subscribe(sub(1, Filter::for_kind("k"))),
            &mut out,
        );
        assert_eq!(sent_to(&out, n(1)).len(), 1);
        assert!(sent_to(&out, n(2)).is_empty(), "no advertisement from 2");
        // A subscription for an unadvertised kind goes nowhere.
        let mut out = Outbox::new();
        b.handle(
            SimTime::ZERO,
            n(10),
            BrokerMsg::Subscribe(sub(2, Filter::for_kind("z"))),
            &mut out,
        );
        assert!(out.sends().is_empty());
    }

    #[test]
    fn detach_removes_client_subscriptions() {
        let mut b = peer_broker();
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Subscribe(sub(1, Filter::any())), &mut out);
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Detach, &mut out);
        assert_eq!(b.subscription_count(), 0);
        assert_eq!(b.clients().count(), 0);
    }

    #[test]
    fn duplicate_subscription_ignored() {
        let mut b = peer_broker();
        let mut out = Outbox::new();
        let s = sub(1, Filter::any());
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Subscribe(s.clone()), &mut out);
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Subscribe(s), &mut out);
        assert_eq!(b.subscription_count(), 1);
    }

    #[test]
    fn move_out_buffers_then_handoff_drains() {
        let mut b = peer_broker();
        let mut out = Outbox::new();
        b.handle(
            SimTime::ZERO,
            n(10),
            BrokerMsg::Subscribe(sub(1, Filter::for_kind("k"))),
            &mut out,
        );
        b.handle(SimTime::ZERO, n(10), BrokerMsg::MoveOut, &mut out);
        assert!(b.has_proxy_for(n(10)));
        // Events arriving while away are buffered, not sent.
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(1), BrokerMsg::Notify(Event::new("k")), &mut out);
        assert!(sent_to(&out, n(10)).is_empty());
        // New broker (20) fetches the buffer.
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(20), BrokerMsg::FetchBuffer { client: n(10) }, &mut out);
        let handoffs = sent_to(&out, n(20));
        assert_eq!(handoffs.len(), 1);
        match handoffs[0] {
            BrokerMsg::Handoff { events, subs, .. } => {
                assert_eq!(events.len(), 1);
                assert_eq!(subs.len(), 1);
            }
            other => panic!("expected handoff, got {other:?}"),
        }
        assert!(!b.has_proxy_for(n(10)));
        assert_eq!(b.subscription_count(), 0);
    }

    #[test]
    fn handoff_reregisters_and_replays() {
        let mut b2 = Broker::new(n(5), BrokerTopology::Peer { neighbors: vec![] });
        let mut out = Outbox::new();
        b2.handle(SimTime::ZERO, n(10), BrokerMsg::MoveIn { old_broker: n(0) }, &mut out);
        assert!(matches!(
            sent_to(&out, n(0))[0],
            BrokerMsg::FetchBuffer { client } if *client == n(10)
        ));
        let mut out = Outbox::new();
        b2.handle(
            SimTime::ZERO,
            n(0),
            BrokerMsg::Handoff {
                client: n(10),
                events: vec![Event::new("k")],
                subs: vec![sub(1, Filter::for_kind("k"))],
            },
            &mut out,
        );
        // Buffered event replayed to the client; sub re-registered.
        assert_eq!(sent_to(&out, n(10)).len(), 1);
        assert_eq!(b2.subscription_count(), 1);
    }

    #[test]
    fn overlapping_forwards_merge_into_one_cover() {
        let mut b = Broker::new(n(0), BrokerTopology::Peer { neighbors: vec![n(1)] });
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Attach, &mut out);
        let f1 = Filter::for_kind("k").with_constraint("x", Op::Gt, 0i64).with_eq("u", "bob");
        let f2 = Filter::for_kind("k").with_constraint("x", Op::Gt, 5i64).with_eq("u", "anna");
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Subscribe(sub(1, f1.clone())), &mut out);
        assert_eq!(out.sends().len(), 1, "first sub forwards as itself");
        // The second overlaps the first without either covering the
        // other: the broker mints one merged cover and retracts the
        // original, so upstream holds one filter instead of two.
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Subscribe(sub(2, f2.clone())), &mut out);
        let to1 = sent_to(&out, n(1));
        assert_eq!(to1.len(), 2);
        let merged = match to1[0] {
            BrokerMsg::Subscribe(s) => {
                assert_ne!(s.id & SYNTH_BIT, 0, "merged cover carries a synthetic id");
                s.filter.clone()
            }
            other => panic!("expected merged subscribe first, got {other:?}"),
        };
        assert!(matches!(to1[1], BrokerMsg::Unsubscribe(1)), "original retracted after cover");
        assert!(merged.covers(&f1) && merged.covers(&f2), "merge must cover both: {merged}");
        assert!(out.counts().iter().any(|(k, _)| k == "pubsub.subs_merged"));
        assert_eq!(b.forwarded_filters(n(1)), vec![merged]);
    }

    #[test]
    fn merged_cover_retracted_when_last_child_unsubscribes() {
        let mut b = Broker::new(n(0), BrokerTopology::Peer { neighbors: vec![n(1)] });
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Attach, &mut out);
        let f1 = Filter::for_kind("k").with_constraint("x", Op::Gt, 0i64).with_eq("u", "bob");
        let f2 = Filter::for_kind("k").with_constraint("x", Op::Gt, 5i64).with_eq("u", "anna");
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Subscribe(sub(1, f1)), &mut out);
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Subscribe(sub(2, f2)), &mut out);
        assert_eq!(b.forwarded_filters(n(1)).len(), 1);
        // First child gone: the merged cover still serves the second.
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Unsubscribe(1), &mut out);
        assert!(out.sends().is_empty(), "cover still needed, nothing retracted");
        assert_eq!(b.forwarded_filters(n(1)).len(), 1);
        // Last child gone: the synthetic cover is retracted upstream.
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Unsubscribe(2), &mut out);
        assert_eq!(out.sends().len(), 1);
        assert!(
            matches!(sent_to(&out, n(1))[0], BrokerMsg::Unsubscribe(id) if id & SYNTH_BIT != 0),
            "synthetic cover must be retracted"
        );
        assert!(b.forwarded_filters(n(1)).is_empty());
    }

    /// Tight shedding policy for overload tests: selective shedding from
    /// depth 4, hard bound 8, slow drain.
    fn tight_shed() -> gloss_governor::ShedConfig {
        gloss_governor::ShedConfig {
            capacity: 8.0,
            high_watermark: 4.0,
            drain_per_sec: 10.0,
            priority_floor: 4.0,
            fair_window: gloss_sim::SimDuration::from_secs(1),
            fair_share: 1000,
        }
    }

    #[test]
    fn overloaded_broker_sheds_low_priority_publications() {
        let mut b = peer_broker().with_shedding(tight_shed());
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Subscribe(sub(1, Filter::any())), &mut out);
        // Fill past the high watermark with unmarked (high-priority)
        // publications from distinct sources.
        let mut out = Outbox::new();
        for i in 0..6 {
            b.handle(SimTime::ZERO, n(100 + i), BrokerMsg::Publish(Event::new("k")), &mut out);
        }
        assert_eq!(b.shedder().unwrap().shed, 0, "high priority admitted up to capacity");
        // A low-priority publication is now shed (never delivered) ...
        let mut out = Outbox::new();
        let low = Event::new("k").with_attr("prio", 1i64);
        b.handle(SimTime::ZERO, n(200), BrokerMsg::Publish(low), &mut out);
        assert!(sent_to(&out, n(10)).is_empty(), "shed event must not be delivered");
        assert!(out.counts().iter().any(|(k, _)| k == "pubsub.shed"));
        // ... while a high-priority one still gets through.
        let mut out = Outbox::new();
        let high = Event::new("k").with_attr("prio", 9i64);
        b.handle(SimTime::ZERO, n(201), BrokerMsg::Publish(high), &mut out);
        assert_eq!(sent_to(&out, n(10)).len(), 1);
    }

    #[test]
    fn overloaded_broker_rejects_subscriptions_but_admits_control() {
        let mut b = peer_broker().with_shedding(tight_shed());
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Subscribe(sub(1, Filter::any())), &mut out);
        let mut out = Outbox::new();
        for i in 0..6 {
            b.handle(SimTime::ZERO, n(100 + i), BrokerMsg::Publish(Event::new("k")), &mut out);
        }
        // New subscriptions are refused under overload.
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(11), BrokerMsg::Subscribe(sub(2, Filter::any())), &mut out);
        assert_eq!(b.subscription_count(), 1, "subscription must be rejected");
        assert!(out.counts().iter().any(|(k, _)| k == "pubsub.subs_rejected"));
        // Unsubscribes (load-reducing control) are always admitted.
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, n(10), BrokerMsg::Unsubscribe(1), &mut out);
        assert_eq!(b.subscription_count(), 0);
    }

    /// Runs `msg` at its destination and shuttles every resulting
    /// inter-broker message until the pair is quiescent.
    fn drain(
        a: &mut Broker,
        b: &mut Broker,
        mut q: std::collections::VecDeque<(NodeIndex, NodeIndex, BrokerMsg)>,
    ) -> Vec<(NodeIndex, BrokerMsg)> {
        let mut external = Vec::new();
        while let Some((to, from, msg)) = q.pop_front() {
            let target = if to == a.index() { &mut *a } else { &mut *b };
            let me = target.index();
            let mut out = Outbox::new();
            target.handle(SimTime::ZERO, from, msg, &mut out);
            for (t, m, _) in out.sends() {
                if *t == a.index() || *t == b.index() {
                    q.push_back((*t, me, m.clone()));
                } else {
                    external.push((*t, m.clone()));
                }
            }
        }
        external
    }

    /// Regression: a client crashing mid-covering-chain must not leave
    /// orphan subscription entries at the upstream broker. The access
    /// broker holds a broad forwarded sub and a narrow covered one; on the
    /// client's detach (how the harness surfaces a client crash) the
    /// covered sub is transiently re-forwarded upstream by the covering
    /// repair — the detach must still unwind it.
    #[test]
    fn client_crash_mid_covering_chain_leaves_no_orphans_upstream() {
        let mut a = Broker::new(n(0), BrokerTopology::Peer { neighbors: vec![n(1)] });
        let mut b = Broker::new(n(1), BrokerTopology::Peer { neighbors: vec![n(0)] });

        let client = n(10);
        drain(
            &mut a,
            &mut b,
            [
                (n(0), client, BrokerMsg::Attach),
                // Broad sub: forwarded to b.
                (n(0), client, BrokerMsg::Subscribe(sub(1, Filter::for_kind("k")))),
                // Narrow sub: covered by the broad one, pruned.
                (
                    n(0),
                    client,
                    BrokerMsg::Subscribe(sub(2, Filter::for_kind("k").with_eq("u", "x"))),
                ),
            ]
            .into(),
        );
        assert_eq!(a.subscription_count(), 2);
        assert_eq!(b.subscription_count(), 1, "only the broad sub crosses the link");

        // The client crashes; its access broker sees a detach.
        drain(&mut a, &mut b, [(n(0), client, BrokerMsg::Detach)].into());
        assert_eq!(a.subscription_count(), 0);
        assert_eq!(
            b.subscription_count(),
            0,
            "upstream broker kept orphan entries for a dead client"
        );
    }

    /// Un-merge regression: after a merged cover is fully unwound,
    /// republished events must stop crossing the link.
    #[test]
    fn unsubscribe_then_republish_after_unmerge() {
        let mut a = Broker::new(n(0), BrokerTopology::Peer { neighbors: vec![n(1)] });
        let mut b = Broker::new(n(1), BrokerTopology::Peer { neighbors: vec![n(0)] });
        let subscriber = n(10); // at a
        let publisher = n(20); // at b
        drain(
            &mut a,
            &mut b,
            [
                (n(0), subscriber, BrokerMsg::Attach),
                (n(1), publisher, BrokerMsg::Attach),
                (
                    n(0),
                    subscriber,
                    BrokerMsg::Subscribe(sub(
                        1,
                        Filter::for_kind("k")
                            .with_constraint("x", Op::Gt, 0i64)
                            .with_eq("u", "bob"),
                    )),
                ),
                (
                    n(0),
                    subscriber,
                    BrokerMsg::Subscribe(sub(
                        2,
                        Filter::for_kind("k")
                            .with_constraint("x", Op::Gt, 5i64)
                            .with_eq("u", "anna"),
                    )),
                ),
            ]
            .into(),
        );
        assert_eq!(b.subscription_count(), 1, "one merged cover crosses the link");

        // A matching publication reaches the subscriber through the cover.
        let ev = Event::new("k").with_attr("x", 3i64).with_attr("u", "bob");
        let delivered =
            drain(&mut a, &mut b, [(n(1), publisher, BrokerMsg::Publish(ev.clone()))].into());
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].0, subscriber);

        // Unwind both children; then republish: nothing may cross.
        drain(&mut a, &mut b, [(n(0), subscriber, BrokerMsg::Unsubscribe(1))].into());
        assert_eq!(b.subscription_count(), 1, "cover still serves the second child");
        drain(&mut a, &mut b, [(n(0), subscriber, BrokerMsg::Unsubscribe(2))].into());
        assert_eq!(b.subscription_count(), 0, "merged cover retracted upstream");
        let delivered = drain(&mut a, &mut b, [(n(1), publisher, BrokerMsg::Publish(ev))].into());
        assert!(delivered.is_empty(), "republish after unmerge must not deliver");
    }
}
