//! The pre-index linear broker, kept verbatim as a reference oracle.
//!
//! [`LinearBroker`] is the broker as it stood before the counting index
//! (PR 8): a `Vec` subscription table scanned filter-by-filter on every
//! publish, and per-neighbour forwarded-id sets re-scanned on every
//! unsubscribe. It exists so the indexed [`Broker`](crate::Broker) can be
//! *proven* equivalent — the property tests replay random
//! subscribe/unsubscribe/publish/mobility interleavings through both and
//! assert byte-identical client delivery — and so the scaling benches
//! (s6/c17) have an honest "what it used to cost" column. Do not use it
//! for anything else; it is O(table size) per publish.

use crate::broker::{BrokerMsg, BrokerTopology, SubId};
use crate::filter::{Advertisement, Filter, Subscription};
use crate::notification::Event;
use gloss_governor::{IngressClass, LoadShedder, ShedConfig, ShedDecision};
use gloss_sim::{NodeIndex, Outbox, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
struct SubEntry {
    sub: Subscription,
    iface: NodeIndex,
}

/// The linear-scan content-based broker (reference implementation).
#[derive(Debug, Clone)]
pub struct LinearBroker {
    me: NodeIndex,
    topology: BrokerTopology,
    clients: BTreeSet<NodeIndex>,
    subs: Vec<SubEntry>,
    /// Subscription ids we have forwarded, per neighbouring broker.
    forwarded: BTreeMap<NodeIndex, BTreeSet<SubId>>,
    /// Advertisements seen, with the interface they arrived from.
    advs: Vec<(Advertisement, NodeIndex)>,
    /// When true, subscriptions are only forwarded toward interfaces that
    /// sent an overlapping advertisement.
    use_advertisements: bool,
    /// Mobility proxies: disconnected client → buffered events.
    proxies: BTreeMap<NodeIndex, Vec<Event>>,
    /// Ingress load shedder (None = unbounded legacy behaviour).
    shed: Option<LoadShedder>,
    /// Messages handled (load metric for C1).
    pub msgs_handled: u64,
    /// Notifications forwarded to other brokers.
    pub notifications_forwarded: u64,
}

/// Classifies a broker message for the load shedder (same policy as the
/// indexed broker).
fn ingress_class(msg: &BrokerMsg) -> (IngressClass, f64) {
    match msg {
        BrokerMsg::Subscribe(_) => (IngressClass::Subscription, 0.0),
        BrokerMsg::Publish(e) | BrokerMsg::Notify(e) => {
            (IngressClass::Publication, e.num_attr("prio").unwrap_or(f64::MAX))
        }
        _ => (IngressClass::Control, 0.0),
    }
}

impl LinearBroker {
    /// Creates a broker for node `me` with the given topology.
    pub fn new(me: NodeIndex, topology: BrokerTopology) -> Self {
        LinearBroker {
            me,
            topology,
            clients: BTreeSet::new(),
            subs: Vec::new(),
            forwarded: BTreeMap::new(),
            advs: Vec::new(),
            use_advertisements: false,
            proxies: BTreeMap::new(),
            shed: None,
            msgs_handled: 0,
            notifications_forwarded: 0,
        }
    }

    /// Enables advertisement-gated subscription forwarding.
    pub fn with_advertisements(mut self) -> Self {
        self.use_advertisements = true;
        self
    }

    /// Bounds this broker's ingress with a watermark load shedder.
    pub fn with_shedding(mut self, cfg: ShedConfig) -> Self {
        self.shed = Some(LoadShedder::new(cfg));
        self
    }

    /// This broker's node index.
    pub fn index(&self) -> NodeIndex {
        self.me
    }

    /// Number of subscription entries currently stored.
    pub fn subscription_count(&self) -> usize {
        self.subs.len()
    }

    /// The stored subscriptions, in table order.
    pub fn subscriptions(&self) -> impl Iterator<Item = &Subscription> {
        self.subs.iter().map(|e| &e.sub)
    }

    /// Filters currently forwarded toward `target`, in table order.
    pub fn forwarded_filters(&self, target: NodeIndex) -> Vec<Filter> {
        let Some(set) = self.forwarded.get(&target) else {
            return Vec::new();
        };
        self.subs.iter().filter(|e| set.contains(&e.sub.id)).map(|e| e.sub.filter.clone()).collect()
    }

    /// Handles one message. `from` is the interface (client or neighbour
    /// broker) it arrived on.
    pub fn handle(
        &mut self,
        now: SimTime,
        from: NodeIndex,
        msg: BrokerMsg,
        out: &mut Outbox<BrokerMsg>,
    ) {
        self.msgs_handled += 1;
        if let Some(shed) = &mut self.shed {
            let (class, priority) = ingress_class(&msg);
            match shed.offer(now, from.0, class, priority) {
                ShedDecision::Admit(delay) => {
                    if delay > SimDuration::ZERO {
                        out.observe("pubsub.queue_delay_us", delay.as_micros() as f64);
                    }
                }
                ShedDecision::Shed => {
                    out.count("pubsub.shed", 1.0);
                    return;
                }
                ShedDecision::RejectSubscription => {
                    out.count("pubsub.subs_rejected", 1.0);
                    return;
                }
            }
        }
        match msg {
            BrokerMsg::Attach => {
                self.clients.insert(from);
            }
            BrokerMsg::Detach => {
                self.clients.remove(&from);
                let ids: Vec<SubId> =
                    self.subs.iter().filter(|e| e.iface == from).map(|e| e.sub.id).collect();
                for id in ids {
                    self.unsubscribe(id, out);
                }
            }
            BrokerMsg::Subscribe(sub) => self.subscribe(from, sub, out),
            BrokerMsg::Unsubscribe(id) => self.unsubscribe(id, out),
            BrokerMsg::Advertise(adv) => self.advertise(from, adv, out),
            BrokerMsg::Unadvertise(id) => {
                if let Some(pos) = self.advs.iter().position(|(a, _)| a.id == id) {
                    let (_, iface) = self.advs.remove(pos);
                    for n in self.broker_links() {
                        if n != iface {
                            out.send(n, BrokerMsg::Unadvertise(id));
                        }
                    }
                }
            }
            BrokerMsg::Publish(event) | BrokerMsg::Notify(event) => self.route(from, event, out),
            BrokerMsg::MoveOut => {
                self.proxies.entry(from).or_default();
                out.count("pubsub.move_out", 1.0);
            }
            BrokerMsg::MoveIn { old_broker } => {
                self.clients.insert(from);
                out.send(old_broker, BrokerMsg::FetchBuffer { client: from });
            }
            BrokerMsg::FetchBuffer { client } => {
                let events = self.proxies.remove(&client).unwrap_or_default();
                let subs: Vec<Subscription> =
                    self.subs.iter().filter(|e| e.iface == client).map(|e| e.sub.clone()).collect();
                self.clients.remove(&client);
                for s in &subs {
                    self.unsubscribe(s.id, out);
                }
                out.send(from, BrokerMsg::Handoff { client, events, subs });
            }
            BrokerMsg::Handoff { client, events, subs } => {
                self.clients.insert(client);
                for s in subs {
                    self.subscribe(client, s, out);
                }
                out.count("pubsub.handoff_events", events.len() as f64);
                for e in events {
                    out.send(client, BrokerMsg::Notify(e));
                }
            }
        }
    }

    fn broker_links(&self) -> Vec<NodeIndex> {
        match &self.topology {
            BrokerTopology::Peer { neighbors } => neighbors.clone(),
            BrokerTopology::Hierarchical { parent, children } => {
                let mut v = children.clone();
                if let Some(p) = parent {
                    v.push(*p);
                }
                v
            }
        }
    }

    /// Targets for subscription propagation, excluding the interface the
    /// subscription arrived on.
    fn sub_targets(&self, came_from: NodeIndex) -> Vec<NodeIndex> {
        match &self.topology {
            BrokerTopology::Peer { neighbors } => {
                neighbors.iter().copied().filter(|n| *n != came_from).collect()
            }
            BrokerTopology::Hierarchical { parent, .. } => {
                parent.iter().copied().filter(|p| *p != came_from).collect()
            }
        }
    }

    fn subscribe(&mut self, from: NodeIndex, sub: Subscription, out: &mut Outbox<BrokerMsg>) {
        if self.subs.iter().any(|e| e.sub.id == sub.id) {
            return; // duplicate (acyclic topologies make this rare)
        }
        for target in self.sub_targets(from) {
            let already = self.forwarded.get(&target);
            // Covering-based pruning: the full table scan this crate's
            // indexed broker replaces.
            let covered = self.subs.iter().any(|e| {
                already.is_some_and(|set| set.contains(&e.sub.id))
                    && e.sub.filter.covers(&sub.filter)
            });
            if covered {
                out.count("pubsub.subs_pruned", 1.0);
                continue;
            }
            if self.use_advertisements {
                let relevant = self
                    .advs
                    .iter()
                    .any(|(a, iface)| *iface == target && a.relevant_to(&sub.filter));
                if !relevant {
                    out.count("pubsub.subs_gated", 1.0);
                    continue;
                }
            }
            self.forwarded.entry(target).or_default().insert(sub.id);
            out.send(target, BrokerMsg::Subscribe(sub.clone()));
        }
        self.subs.push(SubEntry { sub, iface: from });
    }

    fn unsubscribe(&mut self, id: SubId, out: &mut Outbox<BrokerMsg>) {
        let Some(pos) = self.subs.iter().position(|e| e.sub.id == id) else {
            return;
        };
        let removed = self.subs.remove(pos);
        for (neighbor, set) in self.forwarded.iter_mut() {
            if set.remove(&id) {
                out.send(*neighbor, BrokerMsg::Unsubscribe(id));
                // Re-forward subscriptions this one was covering: O(N·M).
                for e in &self.subs {
                    if e.iface == *neighbor || set.contains(&e.sub.id) {
                        continue;
                    }
                    if removed.sub.filter.covers(&e.sub.filter) {
                        set.insert(e.sub.id);
                        out.send(*neighbor, BrokerMsg::Subscribe(e.sub.clone()));
                    }
                }
            }
        }
    }

    fn advertise(&mut self, from: NodeIndex, adv: Advertisement, out: &mut Outbox<BrokerMsg>) {
        if self.advs.iter().any(|(a, _)| a.id == adv.id) {
            return;
        }
        for n in self.broker_links() {
            if n != from {
                out.send(n, BrokerMsg::Advertise(adv.clone()));
            }
        }
        self.advs.push((adv, from));
    }

    fn route(&mut self, from: NodeIndex, event: Event, out: &mut Outbox<BrokerMsg>) {
        // Local delivery: one full table scan per publication.
        let mut to_buffer: Vec<NodeIndex> = Vec::new();
        for e in &self.subs {
            let iface = e.iface;
            if iface == from || !self.clients.contains(&iface) && !self.proxies.contains_key(&iface)
            {
                continue;
            }
            if e.sub.filter.matches(&event) {
                if self.proxies.contains_key(&iface) {
                    if !to_buffer.contains(&iface) {
                        to_buffer.push(iface);
                    }
                } else if self.clients.contains(&iface) {
                    out.send(iface, BrokerMsg::Notify(event.clone()));
                    out.count("pubsub.delivered_local", 1.0);
                }
            }
        }
        for iface in to_buffer {
            self.proxies.get_mut(&iface).expect("proxy exists").push(event.clone());
        }

        // Inter-broker forwarding: another scan per neighbour.
        match &self.topology {
            BrokerTopology::Peer { neighbors } => {
                for &n in neighbors {
                    if n == from {
                        continue;
                    }
                    let wanted =
                        self.subs.iter().any(|e| e.iface == n && e.sub.filter.matches(&event));
                    if wanted {
                        self.notifications_forwarded += 1;
                        out.send(n, BrokerMsg::Notify(event.clone()));
                    }
                }
            }
            BrokerTopology::Hierarchical { parent, children } => {
                if let Some(p) = parent {
                    if *p != from {
                        self.notifications_forwarded += 1;
                        out.send(*p, BrokerMsg::Notify(event.clone()));
                    }
                }
                for &c in children {
                    if c == from {
                        continue;
                    }
                    let wanted =
                        self.subs.iter().any(|e| e.iface == c && e.sub.filter.matches(&event));
                    if wanted {
                        self.notifications_forwarded += 1;
                        out.send(c, BrokerMsg::Notify(event.clone()));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_broker_still_routes() {
        let mut b =
            LinearBroker::new(NodeIndex(0), BrokerTopology::Peer { neighbors: vec![NodeIndex(1)] });
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, NodeIndex(10), BrokerMsg::Attach, &mut out);
        b.handle(
            SimTime::ZERO,
            NodeIndex(10),
            BrokerMsg::Subscribe(Subscription { id: 1, filter: Filter::for_kind("k") }),
            &mut out,
        );
        let mut out = Outbox::new();
        b.handle(SimTime::ZERO, NodeIndex(1), BrokerMsg::Notify(Event::new("k")), &mut out);
        assert_eq!(out.sends().len(), 1);
        assert_eq!(b.subscription_count(), 1);
        assert_eq!(b.forwarded_filters(NodeIndex(1)).len(), 1);
    }
}
