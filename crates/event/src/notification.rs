//! Events (notifications): typed attribute maps with optional XML payloads.

use crate::value::AttrValue;
use gloss_sim::{NodeIndex, SimTime};
use gloss_xml::{Element, ParseError};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Globally unique event identifier: publishing node + per-node sequence.
///
/// Used for duplicate suppression during mobility handoff and for tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EventId {
    /// The publishing node.
    pub origin: NodeIndex,
    /// The publisher's sequence number.
    pub seq: u64,
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

/// An event: a kind, typed attributes, an optional structured XML payload,
/// and provenance (id + publication time).
///
/// The paper's events are "XML-encoded"; [`Event::to_xml`] /
/// [`Event::from_xml`] provide that wire form, used by the pipeline layer
/// and by inter-node links.
///
/// Attributes and payload are `Arc`-backed with copy-on-write mutation:
/// cloning an event (which brokers do once per neighbour/subscriber on
/// every routing hop) bumps two reference counts instead of deep-copying
/// the attribute map, and [`Event::set_attr`] clones the map only when it
/// is actually shared.
///
/// # Example
///
/// ```
/// use gloss_event::Event;
/// let e = Event::new("weather.reading")
///     .with_attr("street", "South Street")
///     .with_attr("celsius", 20.0);
/// assert_eq!(e.kind(), "weather.reading");
/// assert_eq!(e.attr("celsius").and_then(|v| v.as_number()), Some(20.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    kind: Arc<str>,
    attrs: Arc<BTreeMap<Arc<str>, AttrValue>>,
    payload: Option<Arc<Element>>,
    id: EventId,
    published_at: SimTime,
}

/// All attribute-less events share one empty map, so creating an event
/// costs no map allocation until the first `set_attr`.
fn empty_attrs() -> Arc<BTreeMap<Arc<str>, AttrValue>> {
    use std::sync::OnceLock;
    static EMPTY: OnceLock<Arc<BTreeMap<Arc<str>, AttrValue>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(BTreeMap::new())).clone()
}

impl Default for Event {
    fn default() -> Self {
        Event::new("")
    }
}

impl Event {
    /// Creates an event of the given kind with no attributes. Passing an
    /// `Arc<str>` kind (e.g. one cached by a rule engine) is
    /// allocation-free.
    pub fn new(kind: impl Into<Arc<str>>) -> Self {
        Event {
            kind: kind.into(),
            attrs: empty_attrs(),
            payload: None,
            id: EventId::default(),
            published_at: SimTime::default(),
        }
    }

    /// The event kind (e.g. `"user.location"`).
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The unique id assigned at publication.
    pub fn id(&self) -> EventId {
        self.id
    }

    /// When the event was published (simulated time).
    pub fn published_at(&self) -> SimTime {
        self.published_at
    }

    /// Stamps provenance; called by the publishing client/broker.
    pub fn stamp(&mut self, id: EventId, at: SimTime) {
        self.id = id;
        self.published_at = at;
    }

    /// Builder: stamped form, for tests and workload generators.
    pub fn stamped(mut self, id: EventId, at: SimTime) -> Self {
        self.stamp(id, at);
        self
    }

    /// The value of attribute `name`.
    pub fn attr(&self, name: &str) -> Option<&AttrValue> {
        self.attrs.get(name)
    }

    /// String attribute convenience accessor.
    pub fn str_attr(&self, name: &str) -> Option<&str> {
        self.attr(name).and_then(AttrValue::as_str)
    }

    /// Numeric attribute convenience accessor.
    pub fn num_attr(&self, name: &str) -> Option<f64> {
        self.attr(name).and_then(AttrValue::as_number)
    }

    /// All attributes in name order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.attrs.iter().map(|(k, v)| (k.as_ref(), v))
    }

    /// Number of attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Sets an attribute (copy-on-write: clones the attribute map only
    /// if it is shared with another event). Passing `Arc<str>` for the
    /// name is allocation-free.
    pub fn set_attr(&mut self, name: impl Into<Arc<str>>, value: impl Into<AttrValue>) {
        Arc::make_mut(&mut self.attrs).insert(name.into(), value.into());
    }

    /// Builder form of [`set_attr`](Self::set_attr).
    pub fn with_attr(mut self, name: impl Into<Arc<str>>, value: impl Into<AttrValue>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// The structured payload, if any.
    pub fn payload(&self) -> Option<&Element> {
        self.payload.as_deref()
    }

    /// Attaches a structured payload.
    pub fn with_payload(mut self, payload: Element) -> Self {
        self.payload = Some(Arc::new(payload));
        self
    }

    /// Serialises to the XML wire form.
    pub fn to_xml(&self) -> Element {
        let mut el = Element::new("event")
            .with_attr("kind", self.kind.as_ref())
            .with_attr("origin", self.id.origin.0.to_string())
            .with_attr("seq", self.id.seq.to_string())
            .with_attr("at", self.published_at.as_micros().to_string());
        for (name, value) in self.attrs.iter() {
            el.push(
                Element::new("attr")
                    .with_attr("name", name.as_ref())
                    .with_attr("type", value.type_name())
                    .with_text(value.to_text()),
            );
        }
        if let Some(p) = &self.payload {
            el.push(Element::new("payload").with_child(Element::clone(p)));
        }
        el
    }

    /// Parses the XML wire form.
    ///
    /// Attributes with unknown types or unparseable values are dropped
    /// (forward compatibility: an old node can still route an event whose
    /// new attribute types it does not understand).
    pub fn from_xml(el: &Element) -> Event {
        let mut ev = Event::new(el.attr("kind").unwrap_or("unknown"));
        let origin = el.attr("origin").and_then(|s| s.parse().ok()).unwrap_or(0);
        let seq = el.attr("seq").and_then(|s| s.parse().ok()).unwrap_or(0);
        let at = el.attr("at").and_then(|s| s.parse().ok()).unwrap_or(0);
        ev.id = EventId { origin: NodeIndex(origin), seq };
        ev.published_at = SimTime::from_micros(at);
        let attrs = Arc::make_mut(&mut ev.attrs);
        for a in el.children_named("attr") {
            if let (Some(name), Some(ty)) = (a.attr("name"), a.attr("type")) {
                if let Some(v) = AttrValue::from_text(ty, &a.text()) {
                    attrs.insert(name.into(), v);
                }
            }
        }
        if let Some(p) = el.child("payload").and_then(|p| p.children().next()) {
            ev.payload = Some(Arc::new(p.clone()));
        }
        ev
    }

    /// Parses the textual XML wire form.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] if `text` is not well-formed XML.
    pub fn from_xml_text(text: &str) -> Result<Event, ParseError> {
        Ok(Event::from_xml(&gloss_xml::parse(text)?))
    }

    /// Approximate wire size in bytes (for load accounting).
    pub fn wire_size(&self) -> usize {
        self.to_xml().to_xml().len()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}](", self.kind, self.id)?;
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_xml::parse;

    fn sample() -> Event {
        Event::new("user.location")
            .with_attr("user", "bob")
            .with_attr("lat", 56.34)
            .with_attr("lon", -2.80)
            .with_attr("indoor", false)
            .with_attr("floor", 2i64)
            .with_payload(parse(r#"<pos src="gps"><accuracy>5</accuracy></pos>"#).unwrap())
            .stamped(EventId { origin: NodeIndex(3), seq: 17 }, SimTime::from_millis(1234))
    }

    #[test]
    fn accessors() {
        let e = sample();
        assert_eq!(e.kind(), "user.location");
        assert_eq!(e.str_attr("user"), Some("bob"));
        assert_eq!(e.num_attr("floor"), Some(2.0));
        assert_eq!(e.attr("indoor").and_then(AttrValue::as_bool), Some(false));
        assert_eq!(e.attr_count(), 5);
        assert_eq!(e.id().seq, 17);
    }

    #[test]
    fn xml_round_trip() {
        let e = sample();
        let xml = e.to_xml();
        let back = Event::from_xml(&xml);
        assert_eq!(back.kind(), e.kind());
        assert_eq!(back.id(), e.id());
        assert_eq!(back.published_at(), e.published_at());
        assert_eq!(back.str_attr("user"), Some("bob"));
        assert!((back.num_attr("lat").unwrap() - 56.34).abs() < 1e-9);
        assert_eq!(back.payload().unwrap().name(), "pos");
        assert_eq!(back.attr_count(), e.attr_count());
    }

    #[test]
    fn xml_text_round_trip() {
        let e = sample();
        let text = e.to_xml().to_xml();
        let back = Event::from_xml_text(&text).unwrap();
        assert_eq!(back.num_attr("lon"), e.num_attr("lon"));
    }

    #[test]
    fn from_xml_tolerates_unknown_attribute_types() {
        let el = parse(
            r#"<event kind="x"><attr name="good" type="int">5</attr><attr name="odd" type="tensor">?</attr></event>"#,
        )
        .unwrap();
        let e = Event::from_xml(&el);
        assert_eq!(e.num_attr("good"), Some(5.0));
        assert!(e.attr("odd").is_none());
    }

    #[test]
    fn from_xml_defaults_when_unstamped() {
        let el = parse(r#"<event kind="y"/>"#).unwrap();
        let e = Event::from_xml(&el);
        assert_eq!(e.id(), EventId::default());
        assert_eq!(e.published_at(), SimTime::ZERO);
    }

    #[test]
    fn clone_is_shallow_and_set_attr_copies_on_write() {
        let original = sample();
        let mut cloned = original.clone();
        assert_eq!(cloned, original);
        // Mutating the clone must not leak into the original.
        cloned.set_attr("user", "anna");
        assert_eq!(cloned.str_attr("user"), Some("anna"));
        assert_eq!(original.str_attr("user"), Some("bob"));
        // An unshared event mutates in place (no second map).
        let mut solo = Event::new("x").with_attr("a", 1i64);
        solo.set_attr("b", 2i64);
        assert_eq!(solo.attr_count(), 2);
    }

    #[test]
    fn wire_size_positive_and_monotone() {
        let small = Event::new("a");
        let big = sample();
        assert!(small.wire_size() > 0);
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn display_contains_kind_and_attrs() {
        let s = sample().to_string();
        assert!(s.contains("user.location"));
        assert!(s.contains("user=\"bob\""));
    }
}
