//! Elvin-like centralized event server: the client-server baseline.
//!
//! The paper (§3) notes Elvin "uses a client-server architecture, limiting
//! its scalability". This module provides that baseline for experiment
//! **C1**: one server stores every subscription and handles every publish,
//! so its message load grows with the whole population, whereas the
//! distributed broker topologies spread the load.

use crate::broker::{BrokerMsg, SubId};
use crate::filter::Subscription;
use gloss_sim::{NodeIndex, Outbox, SimTime};
use std::collections::BTreeSet;

/// The single event server of the centralized architecture. It speaks the
/// same [`BrokerMsg`] protocol as the distributed brokers, so clients are
/// oblivious to which architecture they are attached to.
#[derive(Debug, Clone, Default)]
pub struct CentralServer {
    clients: BTreeSet<NodeIndex>,
    subs: Vec<(Subscription, NodeIndex)>,
    /// Messages handled (load metric for C1).
    pub msgs_handled: u64,
    /// Notifications sent to clients.
    pub notifications_sent: u64,
}

impl CentralServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        CentralServer::default()
    }

    /// Number of stored subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subs.len()
    }

    /// Handles one client message.
    pub fn handle(
        &mut self,
        _now: SimTime,
        from: NodeIndex,
        msg: BrokerMsg,
        out: &mut Outbox<BrokerMsg>,
    ) {
        self.msgs_handled += 1;
        match msg {
            BrokerMsg::Attach => {
                self.clients.insert(from);
            }
            BrokerMsg::Detach => {
                self.clients.remove(&from);
                self.subs.retain(|(_, c)| *c != from);
            }
            BrokerMsg::Subscribe(sub) if !self.subs.iter().any(|(s, _)| s.id == sub.id) => {
                self.subs.push((sub, from));
            }
            BrokerMsg::Unsubscribe(id) => {
                self.subs.retain(|(s, _)| s.id != id);
            }
            BrokerMsg::Publish(event) | BrokerMsg::Notify(event) => {
                let mut already: BTreeSet<NodeIndex> = BTreeSet::new();
                for (sub, client) in &self.subs {
                    if *client != from
                        && self.clients.contains(client)
                        && !already.contains(client)
                        && sub.filter.matches(&event)
                    {
                        already.insert(*client);
                        self.notifications_sent += 1;
                        out.send(*client, BrokerMsg::Notify(event.clone()));
                    }
                }
            }
            // Advertisements are irrelevant with one server; mobility needs
            // no proxy because the server is always reachable.
            _ => {}
        }
    }

    /// Removes a subscription by id (test/bench convenience).
    pub fn remove(&mut self, id: SubId) {
        self.subs.retain(|(s, _)| s.id != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;
    use crate::notification::Event;

    fn n(i: u32) -> NodeIndex {
        NodeIndex(i)
    }

    fn attach_and_subscribe(s: &mut CentralServer, client: NodeIndex, id: SubId, f: Filter) {
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, client, BrokerMsg::Attach, &mut out);
        s.handle(
            SimTime::ZERO,
            client,
            BrokerMsg::Subscribe(Subscription { id, filter: f }),
            &mut out,
        );
    }

    #[test]
    fn publish_notifies_matching_clients_once() {
        let mut s = CentralServer::new();
        attach_and_subscribe(&mut s, n(1), 1, Filter::for_kind("k"));
        // Client 1 has a second overlapping subscription: still one copy.
        let mut out = Outbox::new();
        s.handle(
            SimTime::ZERO,
            n(1),
            BrokerMsg::Subscribe(Subscription { id: 2, filter: Filter::any() }),
            &mut out,
        );
        attach_and_subscribe(&mut s, n(2), 3, Filter::for_kind("other"));
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(9), BrokerMsg::Publish(Event::new("k")), &mut out);
        let to_1 = out.sends().iter().filter(|(t, _, _)| *t == n(1)).count();
        let to_2 = out.sends().iter().filter(|(t, _, _)| *t == n(2)).count();
        assert_eq!(to_1, 1);
        assert_eq!(to_2, 0);
    }

    #[test]
    fn publisher_excluded_from_delivery() {
        let mut s = CentralServer::new();
        attach_and_subscribe(&mut s, n(1), 1, Filter::any());
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(1), BrokerMsg::Publish(Event::new("k")), &mut out);
        assert!(out.sends().is_empty());
    }

    #[test]
    fn unsubscribe_and_detach() {
        let mut s = CentralServer::new();
        attach_and_subscribe(&mut s, n(1), 1, Filter::any());
        attach_and_subscribe(&mut s, n(2), 2, Filter::any());
        let mut out = Outbox::new();
        s.handle(SimTime::ZERO, n(1), BrokerMsg::Unsubscribe(1), &mut out);
        assert_eq!(s.subscription_count(), 1);
        s.handle(SimTime::ZERO, n(2), BrokerMsg::Detach, &mut out);
        assert_eq!(s.subscription_count(), 0);
    }

    #[test]
    fn load_counter_counts_everything() {
        let mut s = CentralServer::new();
        let mut out = Outbox::new();
        for i in 0..5 {
            s.handle(SimTime::ZERO, n(i), BrokerMsg::Publish(Event::new("k")), &mut out);
        }
        assert_eq!(s.msgs_handled, 5);
    }
}
