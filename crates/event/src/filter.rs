//! The subscription language: filters, constraints, advertisements, and
//! the covering relations that make distributed routing scale.
//!
//! A [`Filter`] is a conjunction of [`Constraint`]s over attributes, plus
//! an optional event-kind test. Following Siena, brokers prune
//! subscription propagation using **covering**: if a broker has already
//! forwarded a filter `f` to a neighbour, any new subscription covered by
//! `f` need not be forwarded. Covering here is *sound* (it never claims
//! `f1` covers `f2` unless every event matching `f2` matches `f1`) but
//! deliberately incomplete — undecided cases simply forgo pruning.

use crate::notification::Event;
use crate::value::AttrValue;
use std::fmt;

/// A constraint operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Attribute equals the value.
    Eq,
    /// Attribute differs from the value (but must be present).
    Ne,
    /// Attribute is less than the value.
    Lt,
    /// Attribute is at most the value.
    Le,
    /// Attribute is greater than the value.
    Gt,
    /// Attribute is at least the value.
    Ge,
    /// String attribute starts with the value.
    Prefix,
    /// String attribute ends with the value.
    Suffix,
    /// String attribute contains the value.
    Contains,
    /// Attribute is present, any value (the operand is ignored).
    Exists,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Eq => "=",
            Op::Ne => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Prefix => "=*",
            Op::Suffix => "*=",
            Op::Contains => "~",
            Op::Exists => "any",
        };
        f.write_str(s)
    }
}

/// One constraint: attribute name, operator, operand.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// The attribute the constraint applies to.
    pub attr: String,
    /// The operator.
    pub op: Op,
    /// The operand (ignored for [`Op::Exists`]).
    pub value: AttrValue,
}

impl Constraint {
    /// Creates a constraint.
    pub fn new(attr: impl Into<String>, op: Op, value: impl Into<AttrValue>) -> Self {
        Constraint { attr: attr.into(), op, value: value.into() }
    }

    /// Whether `candidate` (the event's value for this attribute)
    /// satisfies the constraint.
    pub fn matches_value(&self, candidate: &AttrValue) -> bool {
        use std::cmp::Ordering::*;
        match self.op {
            Op::Exists => true,
            Op::Eq => candidate.eq_value(&self.value),
            Op::Ne => {
                // Comparable and unequal; mismatched types do not match.
                matches!(candidate.partial_cmp_value(&self.value), Some(Less | Greater))
            }
            Op::Lt => candidate.partial_cmp_value(&self.value) == Some(Less),
            Op::Le => {
                matches!(candidate.partial_cmp_value(&self.value), Some(Less | Equal))
            }
            Op::Gt => candidate.partial_cmp_value(&self.value) == Some(Greater),
            Op::Ge => {
                matches!(candidate.partial_cmp_value(&self.value), Some(Greater | Equal))
            }
            Op::Prefix => match (candidate.as_str(), self.value.as_str()) {
                (Some(c), Some(p)) => c.starts_with(p),
                _ => false,
            },
            Op::Suffix => match (candidate.as_str(), self.value.as_str()) {
                (Some(c), Some(p)) => c.ends_with(p),
                _ => false,
            },
            Op::Contains => match (candidate.as_str(), self.value.as_str()) {
                (Some(c), Some(p)) => c.contains(p),
                _ => false,
            },
        }
    }

    /// Whether every value satisfying this constraint is a string: the
    /// string operators require it, and comparisons against a string
    /// operand only ever match strings (cross-type comparisons are
    /// undefined and never match).
    fn string_only(&self) -> bool {
        match self.op {
            Op::Prefix | Op::Suffix | Op::Contains => true,
            Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                matches!(self.value, AttrValue::Str(_))
            }
            Op::Exists => false,
        }
    }

    /// Whether every value satisfying this constraint is a non-string
    /// (comparison against a non-string operand).
    fn nonstring_only(&self) -> bool {
        match self.op {
            Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                !matches!(self.value, AttrValue::Str(_))
            }
            _ => false,
        }
    }

    /// Whether every string value satisfies this constraint (an empty
    /// pattern matches every string).
    fn matches_every_string(&self) -> bool {
        matches!(self.op, Op::Prefix | Op::Suffix | Op::Contains) && self.value.as_str() == Some("")
    }

    /// Sound covering test: `true` only if **every** value satisfying
    /// `other` also satisfies `self` (both on the same attribute).
    ///
    /// Undecided cases return `false` (no pruning, still correct).
    pub fn covers(&self, other: &Constraint) -> bool {
        if self.attr != other.attr {
            return false;
        }
        use std::cmp::Ordering::*;
        let cmp = |a: &AttrValue, b: &AttrValue| a.partial_cmp_value(b);
        match (self.op, other.op) {
            // `exists` covers every constraint on the attribute.
            (Op::Exists, _) => true,
            // Identical constraints cover each other.
            (a, b) if a == b && self.value.eq_value(&other.value) => true,
            (Op::Eq, Op::Eq) => self.value.eq_value(&other.value),
            // x < v1 covers x < v2 when v2 <= v1; covers x <= v2 when v2 < v1;
            // covers x = v2 when v2 < v1.
            (Op::Lt, Op::Lt) | (Op::Lt, Op::Le) | (Op::Lt, Op::Eq) => {
                match cmp(&other.value, &self.value) {
                    Some(Less) => true,
                    Some(Equal) => other.op == Op::Lt,
                    _ => false,
                }
            }
            // x <= v1 covers x < v2 when v2 <= v1 (approximately: for ints
            // x < v2 implies x <= v2-1 <= v1; for floats x < v2 <= v1 means
            // x < v1 hence x <= v1); covers x <= v2 / x = v2 when v2 <= v1.
            (Op::Le, Op::Lt) | (Op::Le, Op::Le) | (Op::Le, Op::Eq) => {
                matches!(cmp(&other.value, &self.value), Some(Less | Equal))
            }
            (Op::Gt, Op::Gt) | (Op::Gt, Op::Ge) | (Op::Gt, Op::Eq) => {
                match cmp(&other.value, &self.value) {
                    Some(Greater) => true,
                    Some(Equal) => other.op == Op::Gt,
                    _ => false,
                }
            }
            (Op::Ge, Op::Gt) | (Op::Ge, Op::Ge) | (Op::Ge, Op::Eq) => {
                matches!(cmp(&other.value, &self.value), Some(Greater | Equal))
            }
            // x != v1 covers x = v2 (v2 != v1), x != v1 (same value),
            // and ranges strictly excluding v1.
            (Op::Ne, Op::Eq) => {
                matches!(cmp(&other.value, &self.value), Some(Less | Greater))
            }
            (Op::Ne, Op::Ne) => self.value.eq_value(&other.value),
            (Op::Ne, Op::Lt) | (Op::Ne, Op::Le) => {
                // all x < v2 (or <= v2) differ from v1 iff v1 >= v2 (resp >).
                match cmp(&self.value, &other.value) {
                    Some(Greater) => true,
                    Some(Equal) => other.op == Op::Lt,
                    _ => false,
                }
            }
            (Op::Ne, Op::Gt) | (Op::Ne, Op::Ge) => match cmp(&self.value, &other.value) {
                Some(Less) => true,
                Some(Equal) => other.op == Op::Gt,
                _ => false,
            },
            // prefix p1 covers prefix p2 when p2 extends p1; covers = v2
            // when v2 starts with p1.
            (Op::Prefix, Op::Prefix) | (Op::Prefix, Op::Eq) => {
                match (other.value.as_str(), self.value.as_str()) {
                    (Some(longer), Some(p)) => longer.starts_with(p),
                    _ => false,
                }
            }
            (Op::Suffix, Op::Suffix) | (Op::Suffix, Op::Eq) => {
                match (other.value.as_str(), self.value.as_str()) {
                    (Some(longer), Some(p)) => longer.ends_with(p),
                    _ => false,
                }
            }
            (Op::Contains, Op::Contains) | (Op::Contains, Op::Eq) => {
                match (other.value.as_str(), self.value.as_str()) {
                    (Some(longer), Some(p)) => longer.contains(p),
                    _ => false,
                }
            }
            (Op::Contains, Op::Prefix) | (Op::Contains, Op::Suffix) => {
                match (other.value.as_str(), self.value.as_str()) {
                    (Some(longer), Some(p)) => longer.contains(p),
                    _ => false,
                }
            }
            // x != v covers a string constraint none of whose matches can
            // equal v (string matches are always comparable to a string v).
            (Op::Ne, Op::Prefix) => match (self.value.as_str(), other.value.as_str()) {
                (Some(v), Some(p)) => !v.starts_with(p),
                _ => false,
            },
            (Op::Ne, Op::Suffix) => match (self.value.as_str(), other.value.as_str()) {
                (Some(v), Some(p)) => !v.ends_with(p),
                _ => false,
            },
            (Op::Ne, Op::Contains) => match (self.value.as_str(), other.value.as_str()) {
                (Some(v), Some(p)) => !v.contains(p),
                _ => false,
            },
            // An empty string pattern matches every string, so it covers
            // any constraint only strings can satisfy.
            _ if self.matches_every_string() && other.string_only() => true,
            _ => false,
        }
    }

    /// Sound *disjointness* test: `true` only if no value can satisfy both
    /// constraints. Used for advertisement-based pruning.
    pub fn disjoint(&self, other: &Constraint) -> bool {
        if self.attr != other.attr {
            return false;
        }
        use std::cmp::Ordering::*;
        let cmp = |a: &AttrValue, b: &AttrValue| a.partial_cmp_value(b);
        // Type split: one side only strings can satisfy, the other only
        // non-strings — no value satisfies both.
        if (self.string_only() && other.nonstring_only())
            || (other.string_only() && self.nonstring_only())
        {
            return true;
        }
        match (self.op, other.op) {
            (Op::Eq, Op::Eq) => {
                matches!(cmp(&self.value, &other.value), Some(Less | Greater))
            }
            (Op::Eq, Op::Ne) | (Op::Ne, Op::Eq) => self.value.eq_value(&other.value),
            (Op::Lt, Op::Gt) | (Op::Lt, Op::Ge) | (Op::Le, Op::Gt) => {
                matches!(cmp(&self.value, &other.value), Some(Less | Equal))
            }
            (Op::Le, Op::Ge) => cmp(&self.value, &other.value) == Some(Less),
            (Op::Gt, Op::Lt) | (Op::Ge, Op::Lt) | (Op::Gt, Op::Le) => {
                matches!(cmp(&self.value, &other.value), Some(Greater | Equal))
            }
            (Op::Ge, Op::Le) => cmp(&self.value, &other.value) == Some(Greater),
            (Op::Eq, Op::Lt) | (Op::Eq, Op::Le) => match cmp(&self.value, &other.value) {
                Some(Greater) => true,
                Some(Equal) => other.op == Op::Lt,
                _ => false,
            },
            (Op::Lt, Op::Eq) | (Op::Le, Op::Eq) => other.disjoint(self),
            (Op::Eq, Op::Gt) | (Op::Eq, Op::Ge) => match cmp(&self.value, &other.value) {
                Some(Less) => true,
                Some(Equal) => other.op == Op::Gt,
                _ => false,
            },
            (Op::Gt, Op::Eq) | (Op::Ge, Op::Eq) => other.disjoint(self),
            (Op::Prefix, Op::Prefix) => match (self.value.as_str(), other.value.as_str()) {
                (Some(a), Some(b)) => !a.starts_with(b) && !b.starts_with(a),
                _ => false,
            },
            (Op::Prefix, Op::Eq) => match (self.value.as_str(), other.value.as_str()) {
                (Some(p), Some(v)) => !v.starts_with(p),
                _ => false,
            },
            (Op::Eq, Op::Prefix) => other.disjoint(self),
            // Two suffixes conflict unless one extends the other (a string
            // cannot end in both "dundee rd" and "perth rd").
            (Op::Suffix, Op::Suffix) => match (self.value.as_str(), other.value.as_str()) {
                (Some(a), Some(b)) => !a.ends_with(b) && !b.ends_with(a),
                _ => false,
            },
            (Op::Suffix, Op::Eq) => match (self.value.as_str(), other.value.as_str()) {
                (Some(p), Some(v)) => !v.ends_with(p),
                _ => false,
            },
            (Op::Eq, Op::Suffix) => other.disjoint(self),
            (Op::Contains, Op::Eq) => match (self.value.as_str(), other.value.as_str()) {
                (Some(p), Some(v)) => !v.contains(p),
                _ => false,
            },
            (Op::Eq, Op::Contains) => other.disjoint(self),
            _ => false,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.op == Op::Exists {
            write!(f, "{} exists", self.attr)
        } else {
            write!(f, "{} {} {}", self.attr, self.op, self.value)
        }
    }
}

/// A conjunction of constraints, optionally restricted to one event kind.
///
/// # Example
///
/// ```
/// use gloss_event::{Event, Filter, Op};
/// let f = Filter::for_kind("weather.reading")
///     .with_constraint("celsius", Op::Ge, 18.0);
/// assert!(f.matches(&Event::new("weather.reading").with_attr("celsius", 20.0)));
/// assert!(!f.matches(&Event::new("weather.reading").with_attr("celsius", 3.0)));
/// assert!(!f.matches(&Event::new("other").with_attr("celsius", 20.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Filter {
    kind: Option<String>,
    constraints: Vec<Constraint>,
}

impl Filter {
    /// A filter matching every event.
    pub fn any() -> Self {
        Filter::default()
    }

    /// A filter matching events of one kind.
    pub fn for_kind(kind: impl Into<String>) -> Self {
        Filter { kind: Some(kind.into()), constraints: Vec::new() }
    }

    /// Reassembles a filter from a kind restriction and constraint list
    /// (used by analysis passes that rewrite constraint sets).
    pub fn from_parts(kind: Option<String>, constraints: Vec<Constraint>) -> Self {
        Filter { kind, constraints }
    }

    /// The kind restriction, if any.
    pub fn kind(&self) -> Option<&str> {
        self.kind.as_deref()
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds a constraint.
    pub fn with_constraint(
        mut self,
        attr: impl Into<String>,
        op: Op,
        value: impl Into<AttrValue>,
    ) -> Self {
        self.constraints.push(Constraint::new(attr, op, value));
        self
    }

    /// Adds an equality constraint (the most common case).
    pub fn with_eq(self, attr: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.with_constraint(attr, Op::Eq, value)
    }

    /// Adds an existence constraint.
    pub fn with_exists(self, attr: impl Into<String>) -> Self {
        self.with_constraint(attr, Op::Exists, AttrValue::Bool(true))
    }

    /// Whether `event` satisfies the filter.
    pub fn matches(&self, event: &Event) -> bool {
        if let Some(k) = &self.kind {
            if event.kind() != k {
                return false;
            }
        }
        self.constraints.iter().all(|c| match event.attr(&c.attr) {
            Some(v) => c.matches_value(v),
            None => false,
        })
    }

    /// Sound covering: `true` only if every event matching `other` matches
    /// `self`.
    pub fn covers(&self, other: &Filter) -> bool {
        // Kind: self unrestricted, or kinds equal.
        match (&self.kind, &other.kind) {
            (Some(a), Some(b)) if a != b => return false,
            (Some(_), None) => return false,
            _ => {}
        }
        // Every constraint of self must be implied by some constraint of
        // other (conjunction semantics).
        self.constraints.iter().all(|c1| other.constraints.iter().any(|c2| c1.covers(c2)))
    }

    /// Sound disjointness: `true` only if no event can match both filters.
    pub fn disjoint(&self, other: &Filter) -> bool {
        if let (Some(a), Some(b)) = (&self.kind, &other.kind) {
            if a != b {
                return true;
            }
        }
        self.constraints.iter().any(|c1| other.constraints.iter().any(|c2| c1.disjoint(c2)))
    }

    /// Whether the filters might both match some event (the negation of
    /// [`disjoint`](Self::disjoint); may report `true` conservatively).
    pub fn overlaps(&self, other: &Filter) -> bool {
        !self.disjoint(other)
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            Some(k) => write!(f, "[{k}]")?,
            None => write!(f, "[*]")?,
        }
        for (i, c) in self.constraints.iter().enumerate() {
            write!(f, "{}{c}", if i == 0 { " " } else { " & " })?;
        }
        Ok(())
    }
}

/// A filter covering both `a` and `b`: `a`'s kind (when shared) plus the
/// constraints of `a` that some constraint of `b` implies. Every
/// constraint kept is implied by `a` (it is one of `a`'s) and by `b`, so
/// the result covers both. `None` when the filters target different
/// kinds or share no implied constraint (the merge would be `[*]`,
/// coarser than useful).
///
/// The broker uses this to forward one merged filter upstream instead of
/// two overlapping ones; `gloss_analysis`'s covering audit re-exports it
/// for its offline merge proposals.
pub fn merge_cover(a: &Filter, b: &Filter) -> Option<Filter> {
    if a.kind() != b.kind() {
        return None;
    }
    let kept: Vec<_> = a
        .constraints()
        .iter()
        .filter(|ca| b.constraints().iter().any(|cb| ca.covers(cb)))
        .cloned()
        .collect();
    if kept.is_empty() {
        return None;
    }
    Some(Filter::from_parts(a.kind().map(str::to_owned), kept))
}

/// A subscription: a filter plus the subscriber-assigned identifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    /// Unique id (assigned by the subscribing client).
    pub id: u64,
    /// What to receive.
    pub filter: Filter,
}

/// An advertisement: a publisher's declaration of the events it will
/// produce, used to gate subscription propagation toward publishers.
#[derive(Debug, Clone, PartialEq)]
pub struct Advertisement {
    /// Unique id (assigned by the advertising publisher).
    pub id: u64,
    /// The set of events the publisher may produce, as a filter.
    pub filter: Filter,
}

impl Advertisement {
    /// Whether a subscription is *relevant* to this advertisement (their
    /// filters may overlap). Conservative: `true` unless provably disjoint.
    pub fn relevant_to(&self, sub: &Filter) -> bool {
        self.filter.overlaps(sub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pairs: &[(&str, AttrValue)]) -> Event {
        let mut e = Event::new("k");
        for (n, v) in pairs {
            e.set_attr(*n, v.clone());
        }
        e
    }

    #[test]
    fn matching_all_ops() {
        let e = ev(&[
            ("n", AttrValue::Int(10)),
            ("s", AttrValue::Str("south street".into())),
            ("b", AttrValue::Bool(true)),
        ]);
        let cases = [
            (Constraint::new("n", Op::Eq, 10i64), true),
            (Constraint::new("n", Op::Eq, 11i64), false),
            (Constraint::new("n", Op::Ne, 11i64), true),
            (Constraint::new("n", Op::Ne, 10i64), false),
            (Constraint::new("n", Op::Lt, 11i64), true),
            (Constraint::new("n", Op::Le, 10i64), true),
            (Constraint::new("n", Op::Gt, 10i64), false),
            (Constraint::new("n", Op::Ge, 10i64), true),
            (Constraint::new("s", Op::Prefix, "south"), true),
            (Constraint::new("s", Op::Suffix, "street"), true),
            (Constraint::new("s", Op::Contains, "h st"), true),
            (Constraint::new("s", Op::Contains, "north"), false),
            (Constraint::new("b", Op::Exists, true), true),
            (Constraint::new("missing", Op::Exists, true), false),
        ];
        for (c, expected) in cases {
            let f = Filter { kind: None, constraints: vec![c.clone()] };
            assert_eq!(f.matches(&e), expected, "constraint {c}");
        }
    }

    #[test]
    fn type_mismatch_never_matches() {
        let e = ev(&[("x", AttrValue::Str("5".into()))]);
        let f = Filter::any().with_constraint("x", Op::Eq, 5i64);
        assert!(!f.matches(&e));
        let f = Filter::any().with_constraint("x", Op::Lt, 9i64);
        assert!(!f.matches(&e));
    }

    #[test]
    fn kind_restriction() {
        let f = Filter::for_kind("a");
        assert!(f.matches(&Event::new("a")));
        assert!(!f.matches(&Event::new("b")));
        assert!(Filter::any().matches(&Event::new("b")));
    }

    #[test]
    fn numeric_covering() {
        let lt10 = Constraint::new("x", Op::Lt, 10i64);
        let lt5 = Constraint::new("x", Op::Lt, 5i64);
        let le10 = Constraint::new("x", Op::Le, 10i64);
        let eq3 = Constraint::new("x", Op::Eq, 3i64);
        assert!(lt10.covers(&lt5));
        assert!(!lt5.covers(&lt10));
        assert!(lt10.covers(&eq3));
        assert!(le10.covers(&lt10));
        assert!(!lt10.covers(&le10));
        assert!(lt10.covers(&lt10));
        let gt0 = Constraint::new("x", Op::Gt, 0i64);
        let ge1 = Constraint::new("x", Op::Ge, 1i64);
        assert!(gt0.covers(&ge1));
        assert!(!ge1.covers(&gt0));
    }

    #[test]
    fn exists_covers_everything_on_attr() {
        let exists = Constraint::new("x", Op::Exists, true);
        assert!(exists.covers(&Constraint::new("x", Op::Eq, 1i64)));
        assert!(exists.covers(&Constraint::new("x", Op::Prefix, "a")));
        assert!(!exists.covers(&Constraint::new("y", Op::Eq, 1i64)));
    }

    #[test]
    fn ne_covering() {
        let ne5 = Constraint::new("x", Op::Ne, 5i64);
        assert!(ne5.covers(&Constraint::new("x", Op::Eq, 4i64)));
        assert!(!ne5.covers(&Constraint::new("x", Op::Eq, 5i64)));
        assert!(ne5.covers(&Constraint::new("x", Op::Lt, 5i64)));
        assert!(!ne5.covers(&Constraint::new("x", Op::Le, 5i64)));
        assert!(ne5.covers(&Constraint::new("x", Op::Gt, 5i64)));
        assert!(ne5.covers(&Constraint::new("x", Op::Ne, 5i64)));
    }

    #[test]
    fn string_covering() {
        let pre = Constraint::new("s", Op::Prefix, "st and");
        assert!(pre.covers(&Constraint::new("s", Op::Prefix, "st andrews")));
        assert!(pre.covers(&Constraint::new("s", Op::Eq, "st andrews")));
        assert!(!pre.covers(&Constraint::new("s", Op::Prefix, "st")));
        let suf = Constraint::new("s", Op::Suffix, "street");
        assert!(suf.covers(&Constraint::new("s", Op::Eq, "market street")));
        let contains = Constraint::new("s", Op::Contains, "and");
        assert!(contains.covers(&Constraint::new("s", Op::Prefix, "st andrews")));
        assert!(!contains.covers(&Constraint::new("s", Op::Prefix, "st")));
    }

    #[test]
    fn ne_covers_string_ops() {
        let ne = Constraint::new("s", Op::Ne, "market street");
        // Everything prefixed "north" differs from "market street".
        assert!(ne.covers(&Constraint::new("s", Op::Prefix, "north")));
        assert!(!ne.covers(&Constraint::new("s", Op::Prefix, "market")));
        assert!(ne.covers(&Constraint::new("s", Op::Suffix, "lane")));
        assert!(!ne.covers(&Constraint::new("s", Op::Suffix, "street")));
        assert!(ne.covers(&Constraint::new("s", Op::Contains, "dundee")));
        assert!(!ne.covers(&Constraint::new("s", Op::Contains, "ket st")));
        // A non-string operand decides nothing.
        assert!(!Constraint::new("s", Op::Ne, 5i64).covers(&Constraint::new("s", Op::Prefix, "a")));
    }

    #[test]
    fn empty_pattern_covers_string_constraints() {
        for op in [Op::Prefix, Op::Suffix, Op::Contains] {
            let any_string = Constraint::new("s", op, "");
            assert!(any_string.covers(&Constraint::new("s", Op::Prefix, "north")), "{op}");
            assert!(any_string.covers(&Constraint::new("s", Op::Suffix, "street")), "{op}");
            assert!(any_string.covers(&Constraint::new("s", Op::Eq, "x")), "{op}");
            assert!(any_string.covers(&Constraint::new("s", Op::Lt, "m")), "{op}");
            // Non-strings can satisfy these, so no covering.
            assert!(!any_string.covers(&Constraint::new("s", Op::Eq, 3i64)), "{op}");
            assert!(!any_string.covers(&Constraint::new("s", Op::Exists, true)), "{op}");
        }
    }

    #[test]
    fn suffix_and_contains_disjointness() {
        let suf = Constraint::new("s", Op::Suffix, "street");
        assert!(suf.disjoint(&Constraint::new("s", Op::Suffix, "lane")));
        assert!(!suf.disjoint(&Constraint::new("s", Op::Suffix, "market street")));
        assert!(suf.disjoint(&Constraint::new("s", Op::Eq, "north haugh")));
        assert!(!suf.disjoint(&Constraint::new("s", Op::Eq, "market street")));
        assert!(Constraint::new("s", Op::Eq, "north haugh").disjoint(&suf));
        let con = Constraint::new("s", Op::Contains, "street");
        assert!(con.disjoint(&Constraint::new("s", Op::Eq, "north haugh")));
        assert!(!con.disjoint(&Constraint::new("s", Op::Eq, "market street")));
    }

    #[test]
    fn cross_type_disjointness() {
        // Only strings match a prefix; only numbers match `= 5`.
        let pre = Constraint::new("x", Op::Prefix, "a");
        assert!(pre.disjoint(&Constraint::new("x", Op::Eq, 5i64)));
        assert!(Constraint::new("x", Op::Lt, 9i64).disjoint(&Constraint::new("x", Op::Eq, "s")));
        assert!(Constraint::new("x", Op::Eq, "a").disjoint(&Constraint::new("x", Op::Eq, 1i64)));
        // Exists spans every type: never disjoint this way.
        assert!(!pre.disjoint(&Constraint::new("x", Op::Exists, true)));
        assert!(!Constraint::new("x", Op::Exists, true).disjoint(&Constraint::new(
            "x",
            Op::Eq,
            5i64
        )));
    }

    #[test]
    fn filter_covering_conjunctions() {
        let broad = Filter::for_kind("k").with_constraint("x", Op::Gt, 0i64);
        let narrow =
            Filter::for_kind("k").with_constraint("x", Op::Gt, 5i64).with_eq("user", "bob");
        assert!(broad.covers(&narrow));
        assert!(!narrow.covers(&broad));
        // Kindless covers kinded, not vice versa.
        let kindless = Filter::any().with_constraint("x", Op::Gt, 0i64);
        assert!(kindless.covers(&broad));
        assert!(!broad.covers(&kindless));
        // A filter covers itself.
        assert!(broad.covers(&broad));
    }

    #[test]
    fn covering_is_sound_on_spot_checks() {
        // If f1 covers f2 then every matching event of f2 matches f1.
        let f1 = Filter::any().with_constraint("x", Op::Le, 10i64);
        let f2 = Filter::any().with_constraint("x", Op::Lt, 10i64);
        assert!(f1.covers(&f2));
        for v in [-5i64, 0, 9] {
            let e = ev(&[("x", AttrValue::Int(v))]);
            if f2.matches(&e) {
                assert!(f1.matches(&e));
            }
        }
    }

    #[test]
    fn disjointness() {
        let a = Filter::any().with_constraint("x", Op::Lt, 5i64);
        let b = Filter::any().with_constraint("x", Op::Gt, 5i64);
        assert!(a.disjoint(&b));
        assert!(b.disjoint(&a));
        let c = Filter::any().with_constraint("x", Op::Le, 5i64);
        let d = Filter::any().with_constraint("x", Op::Ge, 5i64);
        assert!(!c.disjoint(&d)); // both allow x = 5
        let e1 = Filter::any().with_eq("u", "bob");
        let e2 = Filter::any().with_eq("u", "anna");
        assert!(e1.disjoint(&e2));
        assert!(!e1.disjoint(&e1));
        // Different kinds are disjoint.
        assert!(Filter::for_kind("a").disjoint(&Filter::for_kind("b")));
    }

    #[test]
    fn prefix_disjointness() {
        let a = Filter::any().with_constraint("s", Op::Prefix, "north");
        let b = Filter::any().with_constraint("s", Op::Prefix, "south");
        assert!(a.disjoint(&b));
        let c = Filter::any().with_constraint("s", Op::Prefix, "sou");
        assert!(!b.disjoint(&c));
        let d = Filter::any().with_eq("s", "east lane");
        assert!(a.disjoint(&d));
    }

    #[test]
    fn advertisement_relevance() {
        let adv = Advertisement {
            id: 1,
            filter: Filter::for_kind("weather.reading").with_eq("city", "st andrews"),
        };
        assert!(adv.relevant_to(&Filter::for_kind("weather.reading")));
        assert!(!adv.relevant_to(&Filter::for_kind("user.location")));
        assert!(!adv.relevant_to(&Filter::for_kind("weather.reading").with_eq("city", "dundee")));
    }

    #[test]
    fn display_forms() {
        let f = Filter::for_kind("k").with_constraint("x", Op::Ge, 2i64).with_exists("y");
        let s = f.to_string();
        assert!(s.contains("[k]"), "{s}");
        assert!(s.contains("x >= 2"), "{s}");
        assert!(s.contains("y exists"), "{s}");
    }
}
