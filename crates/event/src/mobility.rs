//! Mobility support: Mobikit-style proxies over the broker network.
//!
//! The paper cites Mobikit (§3): "The system provides static proxies for
//! mobile entities, which subscribe on behalf of the mobile entity when the
//! mobile entity is disconnected from the pub/sub system." The protocol is
//! implemented by [`crate::Broker`] (the `MoveOut` / `MoveIn` /
//! `FetchBuffer` / `Handoff` messages) and driven by
//! [`crate::PubSubNetwork::move_client`]; this module holds the
//! network-level behaviour tests documenting the handoff guarantees:
//!
//! * events matching the mobile client's subscriptions while it is offline
//!   are buffered by a proxy at the *old* access broker;
//! * on reconnection at a *new* broker, buffered events are replayed and
//!   subscriptions are re-registered transparently;
//! * clients deduplicate by [`crate::EventId`], so handoff races cause
//!   counted duplicates rather than double processing.

#[cfg(test)]
mod tests {
    use crate::filter::Filter;
    use crate::network::{Architecture, PubSubConfig, PubSubNetwork};
    use crate::notification::Event;
    use gloss_sim::SimDuration;

    fn build() -> PubSubNetwork {
        PubSubNetwork::build(PubSubConfig {
            architecture: Architecture::AcyclicPeer,
            brokers: 4,
            clients_per_broker: 2,
            seed: 21,
            ..PubSubConfig::default()
        })
    }

    #[test]
    fn events_buffered_while_offline_are_replayed_after_move() {
        let mut net = build();
        let clients = net.clients().to_vec();
        let mobile = clients[0];
        let publisher = clients[5];
        net.subscribe(mobile, Filter::for_kind("news"));
        net.run_for(SimDuration::from_secs(2));

        // Go offline for 30 s; move to a different broker.
        let old_broker = net.client(mobile).access;
        let new_broker = net.brokers().iter().copied().find(|b| *b != old_broker).unwrap();
        net.move_client(mobile, new_broker, SimDuration::from_secs(30));
        net.run_for(SimDuration::from_secs(5));

        // Published while the client is away: buffered by the proxy.
        net.publish(publisher, Event::new("news").with_attr("n", 1i64));
        net.publish(publisher, Event::new("news").with_attr("n", 2i64));
        net.run_for(SimDuration::from_secs(5));
        assert_eq!(net.client(mobile).received.len(), 0, "offline: nothing delivered yet");

        // After reconnection the buffer drains.
        net.run_for(SimDuration::from_secs(60));
        assert_eq!(net.client(mobile).received.len(), 2);
        assert_eq!(net.client(mobile).duplicates, 0);
    }

    #[test]
    fn subscriptions_survive_the_move() {
        let mut net = build();
        let clients = net.clients().to_vec();
        let mobile = clients[1];
        let publisher = clients[6];
        net.subscribe(mobile, Filter::for_kind("news"));
        net.run_for(SimDuration::from_secs(2));

        let old_broker = net.client(mobile).access;
        let new_broker = net.brokers().iter().copied().find(|b| *b != old_broker).unwrap();
        net.move_client(mobile, new_broker, SimDuration::from_secs(10));
        net.run_for(SimDuration::from_secs(60));

        // Published after the move completes: delivered via the new broker.
        net.publish(publisher, Event::new("news"));
        net.run_for(SimDuration::from_secs(10));
        assert_eq!(net.client(mobile).received.len(), 1);
        assert_eq!(net.client(mobile).false_deliveries, 0);
    }

    #[test]
    fn non_matching_events_are_not_buffered() {
        let mut net = build();
        let clients = net.clients().to_vec();
        let mobile = clients[2];
        let publisher = clients[7];
        net.subscribe(mobile, Filter::for_kind("news"));
        net.run_for(SimDuration::from_secs(2));

        let old_broker = net.client(mobile).access;
        let new_broker = net.brokers().iter().copied().find(|b| *b != old_broker).unwrap();
        net.move_client(mobile, new_broker, SimDuration::from_secs(20));
        net.run_for(SimDuration::from_secs(5));
        net.publish(publisher, Event::new("spam"));
        net.run_for(SimDuration::from_secs(60));
        assert_eq!(net.client(mobile).received.len(), 0);
    }

    #[test]
    fn move_within_same_broker_is_safe() {
        let mut net = build();
        let clients = net.clients().to_vec();
        let mobile = clients[3];
        net.subscribe(mobile, Filter::for_kind("news"));
        net.run_for(SimDuration::from_secs(2));
        let broker = net.client(mobile).access;
        net.move_client(mobile, broker, SimDuration::from_secs(5));
        net.run_for(SimDuration::from_secs(30));
        net.publish(clients[4], Event::new("news"));
        net.run_for(SimDuration::from_secs(10));
        assert_eq!(net.client(mobile).received.len(), 1);
    }
}
