//! Simulation harness: broker networks, clients, and the three
//! architectures compared in experiment C1 (centralized, hierarchical,
//! acyclic peer).

use crate::broker::{Broker, BrokerMsg, BrokerTopology, SubId};
use crate::centralized::CentralServer;
use crate::filter::{Advertisement, Filter, Subscription};
use crate::notification::{Event, EventId};
use gloss_sim::{Batch, Input, Node, NodeIndex, Outbox, SimDuration, SimTime, Topology, World};
use std::collections::{BTreeMap, BTreeSet};

/// What a node in the pub/sub world is.
#[derive(Debug, Clone)]
pub enum Role {
    /// A distributed broker (boxed: the counting index makes it by far
    /// the largest role).
    Broker(Box<Broker>),
    /// The single server of the centralized architecture.
    Central(CentralServer),
    /// An end client: publishes, subscribes, records deliveries.
    Client(ClientApi),
}

/// Client-side state: its access broker, its subscriptions (used to detect
/// false deliveries), and everything it has received.
#[derive(Debug, Clone)]
pub struct ClientApi {
    /// The broker this client is attached to.
    pub access: NodeIndex,
    /// Active subscriptions (mirrors what was sent to the broker).
    pub subs: Vec<Subscription>,
    /// Events received, in arrival order.
    pub received: Vec<Event>,
    seen: BTreeSet<EventId>,
    /// Events received more than once (mobility handoff can race).
    pub duplicates: u64,
    /// Events received that match none of this client's subscriptions.
    pub false_deliveries: u64,
}

impl ClientApi {
    fn new(access: NodeIndex) -> Self {
        ClientApi {
            access,
            subs: Vec::new(),
            received: Vec::new(),
            seen: BTreeSet::new(),
            duplicates: 0,
            false_deliveries: 0,
        }
    }

    /// Events of a given kind received so far.
    pub fn received_of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Event> {
        self.received.iter().filter(move |e| e.kind() == kind)
    }
}

/// One node of the pub/sub simulation.
#[derive(Debug, Clone)]
pub struct PubSubNode {
    /// The node's role.
    pub role: Role,
}

impl ClientApi {
    fn ingest(&mut self, now: SimTime, msg: BrokerMsg, out: &mut Outbox<BrokerMsg>) {
        if let BrokerMsg::Notify(event) = msg {
            let latency_ms = now.since(event.published_at()).as_secs_f64() * 1e3;
            out.observe("pubsub.delivery_ms", latency_ms);
            out.count("pubsub.delivered", 1.0);
            if !self.seen.insert(event.id()) {
                self.duplicates += 1;
                out.count("pubsub.duplicates", 1.0);
            }
            if !self.subs.iter().any(|s| s.filter.matches(&event)) {
                self.false_deliveries += 1;
                out.count("pubsub.false_deliveries", 1.0);
            }
            self.received.push(event);
        }
    }
}

impl Node for PubSubNode {
    type Msg = BrokerMsg;

    fn handle(&mut self, now: SimTime, input: Input<BrokerMsg>, out: &mut Outbox<BrokerMsg>) {
        let Input::Msg { from, msg } = input else {
            return;
        };
        match &mut self.role {
            Role::Broker(b) => b.handle(now, from, msg, out),
            Role::Central(c) => c.handle(now, from, msg, out),
            Role::Client(c) => c.ingest(now, msg, out),
        }
    }

    /// Batched delivery: a broker fan-out flushed over one connection (or
    /// a mobility handoff replay) arrives as one batch; matching the role
    /// once per batch instead of per message amortises dispatch.
    fn on_batch(
        &mut self,
        now: SimTime,
        batch: &mut Batch<'_, BrokerMsg>,
        out: &mut Outbox<BrokerMsg>,
    ) {
        match &mut self.role {
            Role::Broker(b) => {
                for (from, msg) in batch {
                    b.handle(now, from, msg, out);
                }
            }
            Role::Central(c) => {
                for (from, msg) in batch {
                    c.handle(now, from, msg, out);
                }
            }
            Role::Client(c) => {
                for (_, msg) in batch {
                    c.ingest(now, msg, out);
                }
            }
        }
    }
}

/// Which broker architecture to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Architecture {
    /// One central server (Elvin-like).
    Centralized,
    /// A tree of brokers; subscriptions flow to the root, events flood up.
    Hierarchical,
    /// An acyclic peer graph with covering-pruned subscription propagation.
    AcyclicPeer,
}

/// Configuration for [`PubSubNetwork`].
#[derive(Debug, Clone)]
pub struct PubSubConfig {
    /// Which architecture to build.
    pub architecture: Architecture,
    /// Number of brokers (ignored for `Centralized`, which has one server).
    pub brokers: usize,
    /// Clients attached per broker (total clients for `Centralized`).
    pub clients_per_broker: usize,
    /// RNG seed (topology, latencies).
    pub seed: u64,
    /// Region names to scatter nodes over.
    pub regions: Vec<String>,
    /// Enable advertisement-gated subscription forwarding (peer mode only).
    pub advertisements: bool,
    /// Bound every broker's ingress with this load-shedding policy
    /// (`None` = unbounded legacy behaviour).
    pub shedding: Option<gloss_governor::ShedConfig>,
}

impl Default for PubSubConfig {
    fn default() -> Self {
        PubSubConfig {
            architecture: Architecture::AcyclicPeer,
            brokers: 4,
            clients_per_broker: 4,
            seed: 1,
            regions: vec!["scotland".into(), "england".into(), "europe".into()],
            advertisements: false,
            shedding: None,
        }
    }
}

/// A complete pub/sub deployment on a simulated topology.
///
/// # Example
///
/// ```
/// use gloss_event::{Event, Filter, PubSubConfig, PubSubNetwork};
/// use gloss_sim::SimDuration;
///
/// let mut net = PubSubNetwork::build(PubSubConfig::default());
/// let clients: Vec<_> = net.clients().to_vec();
/// net.subscribe(clients[0], Filter::for_kind("ping"));
/// net.run_for(SimDuration::from_secs(1)); // let subscriptions propagate
/// net.publish(clients[5], Event::new("ping"));
/// net.run_for(SimDuration::from_secs(5));
/// assert_eq!(net.client(clients[0]).received.len(), 1);
/// ```
#[derive(Debug)]
pub struct PubSubNetwork {
    world: World<PubSubNode>,
    brokers: Vec<NodeIndex>,
    clients: Vec<NodeIndex>,
    sub_seq: BTreeMap<NodeIndex, u64>,
    pub_seq: BTreeMap<NodeIndex, u64>,
}

impl PubSubNetwork {
    /// Builds a network per the configuration and attaches all clients.
    pub fn build(cfg: PubSubConfig) -> Self {
        let broker_count = match cfg.architecture {
            Architecture::Centralized => 1,
            _ => cfg.brokers.max(1),
        };
        let client_count = cfg.clients_per_broker * cfg.brokers.max(1);
        let total = broker_count + client_count;
        let regions: Vec<&str> = cfg.regions.iter().map(String::as_str).collect();
        let topology = Topology::random(total, &regions, cfg.seed);
        let mut rng = gloss_sim::SimRng::new(cfg.seed).fork("pubsub-wiring");

        let broker_ids: Vec<NodeIndex> = (0..broker_count as u32).map(NodeIndex).collect();
        let client_ids: Vec<NodeIndex> =
            (broker_count as u32..total as u32).map(NodeIndex).collect();

        // Wire the broker graph.
        let mut neighbor_sets: Vec<Vec<NodeIndex>> = vec![Vec::new(); broker_count];
        let mut parents: Vec<Option<NodeIndex>> = vec![None; broker_count];
        if broker_count > 1 {
            for i in 1..broker_count {
                let j = match cfg.architecture {
                    // Random tree keeps the peer graph acyclic.
                    Architecture::AcyclicPeer => rng.index(i),
                    // Balanced binary tree for the hierarchy.
                    _ => (i - 1) / 2,
                };
                neighbor_sets[i].push(broker_ids[j]);
                neighbor_sets[j].push(broker_ids[i]);
                parents[i] = Some(broker_ids[j]);
            }
        }

        let mut nodes = Vec::with_capacity(total);
        for i in 0..broker_count {
            let role = match cfg.architecture {
                Architecture::Centralized => Role::Central(CentralServer::new()),
                Architecture::AcyclicPeer => {
                    let mut b = Broker::new(
                        broker_ids[i],
                        BrokerTopology::Peer { neighbors: neighbor_sets[i].clone() },
                    );
                    if cfg.advertisements {
                        b = b.with_advertisements();
                    }
                    if let Some(shed) = &cfg.shedding {
                        b = b.with_shedding(shed.clone());
                    }
                    Role::Broker(Box::new(b))
                }
                Architecture::Hierarchical => {
                    let children: Vec<NodeIndex> = neighbor_sets[i]
                        .iter()
                        .copied()
                        .filter(|n| parents[i] != Some(*n))
                        .collect();
                    let mut b = Broker::new(
                        broker_ids[i],
                        BrokerTopology::Hierarchical { parent: parents[i], children },
                    );
                    if let Some(shed) = &cfg.shedding {
                        b = b.with_shedding(shed.clone());
                    }
                    Role::Broker(Box::new(b))
                }
            };
            nodes.push(PubSubNode { role });
        }
        for (k, &c) in client_ids.iter().enumerate() {
            let access = broker_ids[k % broker_count];
            nodes.push(PubSubNode { role: Role::Client(ClientApi::new(access)) });
            let _ = c;
        }

        let mut world = World::new(topology, cfg.seed, nodes);
        for &c in &client_ids {
            let access = match &world.node(c).role {
                Role::Client(cl) => cl.access,
                _ => unreachable!("client ids hold clients"),
            };
            world.inject(c, access, BrokerMsg::Attach);
        }
        PubSubNetwork {
            world,
            brokers: broker_ids,
            clients: client_ids,
            sub_seq: BTreeMap::new(),
            pub_seq: BTreeMap::new(),
        }
    }

    /// The broker node indices.
    pub fn brokers(&self) -> &[NodeIndex] {
        &self.brokers
    }

    /// The client node indices.
    pub fn clients(&self) -> &[NodeIndex] {
        &self.clients
    }

    /// Immutable view of a client's state.
    ///
    /// # Panics
    ///
    /// Panics if `client` is not a client node.
    pub fn client(&self, client: NodeIndex) -> &ClientApi {
        match &self.world.node(client).role {
            Role::Client(c) => c,
            _ => panic!("{client} is not a client"),
        }
    }

    fn client_mut(&mut self, client: NodeIndex) -> &mut ClientApi {
        match &mut self.world.node_mut(client).role {
            Role::Client(c) => c,
            _ => panic!("{client} is not a client"),
        }
    }

    /// Subscribes `client` with `filter`; returns the subscription id.
    pub fn subscribe(&mut self, client: NodeIndex, filter: Filter) -> SubId {
        let seq = self.sub_seq.entry(client).or_insert(0);
        *seq += 1;
        let id = ((client.0 as u64) << 32) | *seq;
        let sub = Subscription { id, filter };
        self.client_mut(client).subs.push(sub.clone());
        let access = self.client(client).access;
        self.world.inject(client, access, BrokerMsg::Subscribe(sub));
        id
    }

    /// Removes a subscription.
    pub fn unsubscribe(&mut self, client: NodeIndex, id: SubId) {
        self.client_mut(client).subs.retain(|s| s.id != id);
        let access = self.client(client).access;
        self.world.inject(client, access, BrokerMsg::Unsubscribe(id));
    }

    /// Publishes an advertisement from `client`.
    pub fn advertise(&mut self, client: NodeIndex, filter: Filter) -> u64 {
        let seq = self.sub_seq.entry(client).or_insert(0);
        *seq += 1;
        let id = ((client.0 as u64) << 32) | *seq;
        let access = self.client(client).access;
        self.world.inject(client, access, BrokerMsg::Advertise(Advertisement { id, filter }));
        id
    }

    /// Publishes `event` from `client` now.
    pub fn publish(&mut self, client: NodeIndex, event: Event) {
        let at = self.world.now();
        self.publish_at(at, client, event);
    }

    /// Publishes `event` from `client` at the given (future) time.
    pub fn publish_at(&mut self, at: SimTime, client: NodeIndex, mut event: Event) {
        let seq = self.pub_seq.entry(client).or_insert(0);
        *seq += 1;
        event.stamp(EventId { origin: client, seq: *seq }, at);
        let access = self.client(client).access;
        if at == self.world.now() {
            self.world.inject(client, access, BrokerMsg::Publish(event));
        } else {
            self.world.inject_at(at, client, access, BrokerMsg::Publish(event));
        }
    }

    /// Moves a mobile client: disconnect now, reconnect at `new_broker`
    /// after `offline_for`. While offline, a proxy at the old broker
    /// buffers matching events (Mobikit pattern).
    pub fn move_client(
        &mut self,
        client: NodeIndex,
        new_broker: NodeIndex,
        offline_for: SimDuration,
    ) {
        let old = self.client(client).access;
        self.world.inject(client, old, BrokerMsg::MoveOut);
        let reconnect_at = self.world.now() + offline_for;
        self.world.inject_at(
            reconnect_at,
            client,
            new_broker,
            BrokerMsg::MoveIn { old_broker: old },
        );
        self.client_mut(client).access = new_broker;
    }

    /// Advances the simulation.
    pub fn run_for(&mut self, d: SimDuration) {
        self.world.run_for(d);
    }

    /// Runs until the given time.
    pub fn run_until(&mut self, t: SimTime) {
        self.world.run_until(t);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The underlying world, for metrics and advanced control.
    pub fn world(&self) -> &World<PubSubNode> {
        &self.world
    }

    /// Mutable world access (failure injection etc.).
    pub fn world_mut(&mut self) -> &mut World<PubSubNode> {
        &mut self.world
    }

    /// Per-broker message loads (the C1 metric).
    pub fn broker_loads(&self) -> Vec<u64> {
        self.brokers
            .iter()
            .map(|&b| match &self.world.node(b).role {
                Role::Broker(br) => br.msgs_handled,
                Role::Central(c) => c.msgs_handled,
                Role::Client(_) => 0,
            })
            .collect()
    }

    /// Maximum per-broker message load.
    pub fn max_broker_load(&self) -> u64 {
        self.broker_loads().into_iter().max().unwrap_or(0)
    }

    /// Total events received across all clients.
    pub fn total_delivered(&self) -> u64 {
        self.world.metrics().counter("pubsub.delivered") as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settle(net: &mut PubSubNetwork) {
        net.run_for(SimDuration::from_secs(2));
    }

    fn build(arch: Architecture) -> PubSubNetwork {
        PubSubNetwork::build(PubSubConfig {
            architecture: arch,
            brokers: 4,
            clients_per_broker: 2,
            seed: 7,
            ..PubSubConfig::default()
        })
    }

    #[test]
    fn end_to_end_delivery_acyclic_peer() {
        let mut net = build(Architecture::AcyclicPeer);
        let clients = net.clients().to_vec();
        net.subscribe(clients[0], Filter::for_kind("k"));
        settle(&mut net);
        net.publish(*clients.last().unwrap(), Event::new("k").with_attr("x", 1i64));
        settle(&mut net);
        assert_eq!(net.client(clients[0]).received.len(), 1);
        assert_eq!(net.client(clients[0]).false_deliveries, 0);
        assert_eq!(net.client(clients[0]).duplicates, 0);
    }

    #[test]
    fn end_to_end_delivery_hierarchical() {
        let mut net = build(Architecture::Hierarchical);
        let clients = net.clients().to_vec();
        net.subscribe(clients[1], Filter::for_kind("k"));
        settle(&mut net);
        net.publish(clients[6], Event::new("k"));
        settle(&mut net);
        assert_eq!(net.client(clients[1]).received.len(), 1);
    }

    #[test]
    fn end_to_end_delivery_centralized() {
        let mut net = build(Architecture::Centralized);
        let clients = net.clients().to_vec();
        net.subscribe(clients[2], Filter::for_kind("k"));
        settle(&mut net);
        net.publish(clients[3], Event::new("k"));
        settle(&mut net);
        assert_eq!(net.client(clients[2]).received.len(), 1);
    }

    #[test]
    fn non_matching_events_not_delivered() {
        let mut net = build(Architecture::AcyclicPeer);
        let clients = net.clients().to_vec();
        net.subscribe(clients[0], Filter::for_kind("k").with_eq("user", "bob"));
        settle(&mut net);
        net.publish(clients[4], Event::new("k").with_attr("user", "anna"));
        net.publish(clients[4], Event::new("j").with_attr("user", "bob"));
        settle(&mut net);
        assert_eq!(net.client(clients[0]).received.len(), 0);
    }

    #[test]
    fn multiple_subscribers_each_get_one_copy() {
        let mut net = build(Architecture::AcyclicPeer);
        let clients = net.clients().to_vec();
        for &c in &clients[0..4] {
            net.subscribe(c, Filter::for_kind("k"));
        }
        settle(&mut net);
        net.publish(clients[7], Event::new("k"));
        settle(&mut net);
        for &c in &clients[0..4] {
            assert_eq!(net.client(c).received.len(), 1, "client {c}");
            assert_eq!(net.client(c).duplicates, 0);
        }
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut net = build(Architecture::AcyclicPeer);
        let clients = net.clients().to_vec();
        let id = net.subscribe(clients[0], Filter::for_kind("k"));
        settle(&mut net);
        net.unsubscribe(clients[0], id);
        settle(&mut net);
        net.publish(clients[5], Event::new("k"));
        settle(&mut net);
        assert_eq!(net.client(clients[0]).received.len(), 0);
    }

    #[test]
    fn delivery_latency_recorded() {
        let mut net = build(Architecture::AcyclicPeer);
        let clients = net.clients().to_vec();
        net.subscribe(clients[0], Filter::for_kind("k"));
        settle(&mut net);
        net.publish(clients[5], Event::new("k"));
        settle(&mut net);
        let s = net.world().metrics().summary("pubsub.delivery_ms");
        assert_eq!(s.count, 1);
        assert!(s.mean > 0.0);
    }

    #[test]
    fn centralized_load_concentrates() {
        // Same workload on both architectures: the central server handles
        // strictly more messages than the busiest peer broker.
        let run = |arch| {
            let mut net = build(arch);
            let clients = net.clients().to_vec();
            for &c in &clients {
                net.subscribe(c, Filter::for_kind("k"));
            }
            settle(&mut net);
            for &c in &clients {
                net.publish(c, Event::new("k"));
            }
            settle(&mut net);
            net.max_broker_load()
        };
        let central = run(Architecture::Centralized);
        let peer = run(Architecture::AcyclicPeer);
        assert!(central > peer, "central {central} <= peer {peer}");
    }

    #[test]
    fn covering_prunes_subscription_traffic() {
        let mut net = build(Architecture::AcyclicPeer);
        let clients = net.clients().to_vec();
        net.subscribe(clients[0], Filter::for_kind("k"));
        settle(&mut net);
        // Narrower subscriptions from the same access broker are covered.
        net.subscribe(clients[0], Filter::for_kind("k").with_eq("u", "a"));
        net.subscribe(clients[0], Filter::for_kind("k").with_eq("u", "b"));
        settle(&mut net);
        assert!(net.world().metrics().counter("pubsub.subs_pruned") > 0.0);
    }

    #[test]
    fn shedding_bounds_broker_ingress_under_burst() {
        let mut cfg = PubSubConfig {
            architecture: Architecture::AcyclicPeer,
            brokers: 2,
            clients_per_broker: 2,
            seed: 11,
            ..PubSubConfig::default()
        };
        cfg.shedding = Some(gloss_governor::ShedConfig {
            capacity: 16.0,
            high_watermark: 8.0,
            drain_per_sec: 50.0,
            priority_floor: 4.0,
            fair_window: SimDuration::from_secs(1),
            fair_share: 1000,
        });
        let mut net = PubSubNetwork::build(cfg);
        let clients = net.clients().to_vec();
        net.subscribe(clients[0], Filter::for_kind("k"));
        settle(&mut net);
        // A same-instant burst of low-priority events floods past the
        // watermark; part of it must be shed, and the network stays live.
        for i in 0..200u32 {
            net.publish(
                clients[3],
                Event::new("k").with_attr("prio", 1i64).with_attr("i", i as i64),
            );
        }
        settle(&mut net);
        let shed = net.world().metrics().counter("pubsub.shed");
        assert!(shed > 0.0, "burst should trip the shedder");
        let got = net.client(clients[0]).received.len();
        assert!(got < 200, "some of the burst must be dropped");
        // High-priority traffic still flows after the overload clears.
        net.publish(clients[3], Event::new("k").with_attr("prio", 9i64));
        settle(&mut net);
        assert!(net.client(clients[0]).received.len() > got);
    }

    #[test]
    fn advertisement_gating_reduces_sub_propagation() {
        let mut cfg = PubSubConfig {
            architecture: Architecture::AcyclicPeer,
            brokers: 6,
            clients_per_broker: 2,
            seed: 9,
            advertisements: true,
            ..PubSubConfig::default()
        };
        cfg.regions = vec!["scotland".into()];
        let mut net = PubSubNetwork::build(cfg);
        let clients = net.clients().to_vec();
        // Publisher advertises kind k; subscriber for kind z is gated.
        net.advertise(clients[0], Filter::for_kind("k"));
        settle(&mut net);
        net.subscribe(clients[1], Filter::for_kind("z"));
        settle(&mut net);
        assert!(net.world().metrics().counter("pubsub.subs_gated") > 0.0);
        // Subscription toward the advertised kind still works end-to-end.
        net.subscribe(clients[2], Filter::for_kind("k"));
        settle(&mut net);
        net.publish(clients[0], Event::new("k"));
        settle(&mut net);
        assert_eq!(net.client(clients[2]).received.len(), 1);
    }
}
