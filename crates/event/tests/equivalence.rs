//! PR 8 equivalence proofs: the counting [`FilterIndex`] and the indexed
//! [`Broker`] must be observably identical to the linear implementations
//! they replaced.
//!
//! Two layers:
//!
//! 1. **Match-set equivalence** — for random filters spanning all ten
//!    operators and mixed attribute types (including NaN floats, negative
//!    zero, empty-string patterns and cross-type constraints), the index
//!    returns exactly the ids a filter-by-filter scan returns, in the
//!    same order, before and after random removals.
//! 2. **Delivery equivalence** — replaying a random
//!    subscribe/unsubscribe/publish/detach/mobility script through a
//!    three-broker line of indexed [`Broker`]s and of [`LinearBroker`]s
//!    yields byte-identical per-client notification streams, and every
//!    filter the linear broker forwards on a link is covered by some
//!    filter the indexed broker forwards there (the covering-soundness
//!    invariant that makes the delivery claim hold in general).
//!
//! The brokers run without advertisement gating: the linear broker's
//! unsubscribe repair re-forwards even subscriptions that gating had
//! suppressed (it rescans the whole table), while the covering DAG
//! deliberately keeps gated subscriptions unforwarded — stricter, and
//! covered by unit tests instead.

use gloss_event::{
    AttrValue, Broker, BrokerMsg, BrokerTopology, Event, Filter, FilterIndex, LinearBroker, Op,
    Subscription,
};
use gloss_sim::{NodeIndex, Outbox, SimRng, SimTime};
use proptest::prelude::*;
use std::collections::{BTreeMap, VecDeque};

const ATTRS: [&str; 4] = ["x", "y", "s", "u"];
const STRINGS: [&str; 5] = ["", "st", "st andrews", "dundee", "ab"];
const OPS: [Op; 10] = [
    Op::Eq,
    Op::Ne,
    Op::Lt,
    Op::Le,
    Op::Gt,
    Op::Ge,
    Op::Prefix,
    Op::Suffix,
    Op::Contains,
    Op::Exists,
];

fn rand_value(rng: &mut SimRng) -> AttrValue {
    match rng.range(0, 9) {
        0 => AttrValue::Int(rng.range(0, 7) as i64 - 3),
        1 => AttrValue::Float(rng.range(0, 9) as f64 / 2.0 - 2.0),
        2 => AttrValue::Float(-0.0),
        3 => AttrValue::Float(f64::NAN),
        4 => AttrValue::Bool(rng.chance(0.5)),
        5 | 6 => AttrValue::Str(STRINGS[rng.index(STRINGS.len())].into()),
        _ => AttrValue::Int(rng.range(0, 3) as i64),
    }
}

fn rand_filter(rng: &mut SimRng) -> Filter {
    // A third of filters take a deliberately mergeable shape — same kind,
    // an open x-interval, usually a distinguishing Eq — so scripts
    // routinely drive the brokers' merge path and forward broker-minted
    // covers across hops (the foreign-merged-cover regression surface).
    if rng.chance(0.33) {
        let kind = ["a", "b"][rng.index(2)];
        let mut f = Filter::for_kind(kind).with_constraint("x", Op::Gt, rng.range(0, 7) as i64 - 3);
        if rng.chance(0.7) {
            f = f.with_eq("u", STRINGS[rng.index(STRINGS.len())]);
        }
        return f;
    }
    let mut f = match rng.range(0, 3) {
        0 => Filter::any(),
        1 => Filter::for_kind("a"),
        _ => Filter::for_kind("b"),
    };
    for _ in 0..rng.range(0, 4) {
        let attr = ATTRS[rng.index(ATTRS.len())];
        let op = OPS[rng.index(OPS.len())];
        f = f.with_constraint(attr, op, rand_value(rng));
    }
    f
}

fn rand_event(rng: &mut SimRng) -> Event {
    let kind = ["a", "b", "c"][rng.index(3)];
    let mut e = Event::new(kind);
    for _ in 0..rng.range(0, 4) {
        let attr = ATTRS[rng.index(ATTRS.len())];
        e = e.with_attr(attr, rand_value(rng));
    }
    e
}

proptest! {
    #[test]
    fn index_match_set_equals_linear_scan(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let mut subs: Vec<Subscription> = (0..rng.range(1, 61))
            .map(|id| Subscription { id, filter: rand_filter(&mut rng) })
            .collect();
        let mut index = FilterIndex::new();
        for s in &subs {
            index.insert(s.clone());
        }
        let scan = |subs: &[Subscription], e: &Event| -> Vec<u64> {
            subs.iter().filter(|s| s.filter.matches(e)).map(|s| s.id).collect()
        };
        for _ in 0..12 {
            let e = rand_event(&mut rng);
            prop_assert_eq!(index.matching_event(&e), scan(&subs, &e), "event {}", e.kind());
        }
        // Remove a random subset; the survivors must still match exactly.
        let keep = |_id: u64, rng: &mut SimRng| rng.chance(0.5);
        let mut i = 0;
        while i < subs.len() {
            if keep(subs[i].id, &mut rng) {
                i += 1;
            } else {
                index.remove(subs[i].id);
                subs.remove(i);
            }
        }
        for _ in 0..12 {
            let e = rand_event(&mut rng);
            prop_assert_eq!(index.matching_event(&e), scan(&subs, &e), "post-removal {}", e.kind());
        }
    }
}

/// The pieces of broker state the dual-world harness compares.
trait AnyBroker {
    fn dispatch(&mut self, from: NodeIndex, msg: BrokerMsg, out: &mut Outbox<BrokerMsg>);
    fn forwarded(&self, target: NodeIndex) -> Vec<Filter>;
}

impl AnyBroker for Broker {
    fn dispatch(&mut self, from: NodeIndex, msg: BrokerMsg, out: &mut Outbox<BrokerMsg>) {
        self.handle(SimTime::ZERO, from, msg, out);
    }
    fn forwarded(&self, target: NodeIndex) -> Vec<Filter> {
        self.forwarded_filters(target)
    }
}

impl AnyBroker for LinearBroker {
    fn dispatch(&mut self, from: NodeIndex, msg: BrokerMsg, out: &mut Outbox<BrokerMsg>) {
        self.handle(SimTime::ZERO, from, msg, out);
    }
    fn forwarded(&self, target: NodeIndex) -> Vec<Filter> {
        self.forwarded_filters(target)
    }
}

/// Number of brokers in the line; nodes 0..BROKERS are brokers, 10+
/// are clients.
const BROKERS: u32 = 3;

/// Topology of broker `i` in the 0..BROKERS line.
fn line(i: u32) -> BrokerTopology {
    let mut neighbors = Vec::new();
    if i > 0 {
        neighbors.push(NodeIndex(i - 1));
    }
    if i + 1 < BROKERS {
        neighbors.push(NodeIndex(i + 1));
    }
    BrokerTopology::Peer { neighbors }
}

/// One injected protocol message: (destination broker, from, message).
type ScriptStep = (u32, u32, BrokerMsg);

/// Injects one message and shuttles all resulting inter-broker traffic
/// until quiescent, recording notifications delivered to clients.
fn run_step<B: AnyBroker>(
    brokers: &mut [B],
    step: &ScriptStep,
    deliveries: &mut BTreeMap<u32, Vec<Event>>,
) {
    let mut q: VecDeque<ScriptStep> = VecDeque::from([step.clone()]);
    while let Some((to, from, msg)) = q.pop_front() {
        let mut out = Outbox::new();
        brokers[to as usize].dispatch(NodeIndex(from), msg, &mut out);
        for (t, m, _) in out.sends() {
            if t.0 < BROKERS {
                q.push_back((t.0, to, m.clone()));
            } else if let BrokerMsg::Notify(e) = m {
                deliveries.entry(t.0).or_default().push(e.clone());
            }
        }
    }
}

/// Generates a random but protocol-valid script: clients attach to a
/// broker line, then subscribe, unsubscribe, publish, detach/re-attach,
/// and roam between brokers (with buffered-proxy handoffs).
fn rand_script(rng: &mut SimRng) -> Vec<ScriptStep> {
    #[derive(Clone)]
    struct Client {
        node: u32,
        home: u32,
        attached: bool,
        /// `Some(old_home)` while moved out (proxy buffering at old_home).
        away: Option<u32>,
        next_sub: u64,
        live: Vec<u64>,
    }
    let n_clients = rng.range(2, 5) as u32;
    let mut clients: Vec<Client> = (0..n_clients)
        .map(|i| Client {
            node: 10 + i,
            home: rng.range(0, u64::from(BROKERS)) as u32,
            attached: false,
            away: None,
            next_sub: 0,
            live: Vec::new(),
        })
        .collect();
    let mut script: Vec<ScriptStep> = Vec::new();
    for c in &mut clients {
        script.push((c.home, c.node, BrokerMsg::Attach));
        c.attached = true;
    }
    for _ in 0..rng.range(20, 61) {
        let ci = rng.index(clients.len());
        let c = &mut clients[ci];
        match rng.range(0, 10) {
            // Subscribe (weighted): a fresh random filter.
            0..=2 => {
                if c.attached && c.away.is_none() {
                    let id = (u64::from(c.node) << 32) | c.next_sub;
                    c.next_sub += 1;
                    c.live.push(id);
                    let filter = rand_filter(rng);
                    script.push((
                        c.home,
                        c.node,
                        BrokerMsg::Subscribe(Subscription { id, filter }),
                    ));
                }
            }
            // Publish (weighted): anyone attached and present may publish.
            3..=6 => {
                if c.attached && c.away.is_none() {
                    script.push((c.home, c.node, BrokerMsg::Publish(rand_event(rng))));
                }
            }
            // Unsubscribe a random live subscription.
            7 => {
                if c.attached && c.away.is_none() && !c.live.is_empty() {
                    let id = c.live.swap_remove(rng.index(c.live.len()));
                    script.push((c.home, c.node, BrokerMsg::Unsubscribe(id)));
                }
            }
            // Roam: move out now; move in at a (possibly different)
            // broker later in the script, so intervening publishes hit
            // the proxy buffer.
            8 => match c.away {
                None if c.attached => {
                    script.push((c.home, c.node, BrokerMsg::MoveOut));
                    c.away = Some(c.home);
                }
                Some(old) => {
                    let new_home = rng.range(0, u64::from(BROKERS)) as u32;
                    script.push((
                        new_home,
                        c.node,
                        BrokerMsg::MoveIn { old_broker: NodeIndex(old) },
                    ));
                    c.home = new_home;
                    c.away = None;
                }
                None => {}
            },
            // Detach (drops all subscriptions) or re-attach.
            _ => {
                if c.away.is_none() {
                    if c.attached {
                        script.push((c.home, c.node, BrokerMsg::Detach));
                        c.attached = false;
                        c.live.clear();
                    } else {
                        script.push((c.home, c.node, BrokerMsg::Attach));
                        c.attached = true;
                    }
                }
            }
        }
    }
    // Bring roamers back so buffered events drain into the comparison.
    for c in &mut clients {
        if let Some(old) = c.away.take() {
            script.push((c.home, c.node, BrokerMsg::MoveIn { old_broker: NodeIndex(old) }));
        }
    }
    script
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn indexed_broker_delivers_byte_identical_to_linear(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let script = rand_script(&mut rng);

        let mut indexed: Vec<Broker> =
            (0..BROKERS).map(|i| Broker::new(NodeIndex(i), line(i))).collect();
        let mut linear: Vec<LinearBroker> =
            (0..BROKERS).map(|i| LinearBroker::new(NodeIndex(i), line(i))).collect();

        let mut got: BTreeMap<u32, Vec<Event>> = BTreeMap::new();
        let mut want: BTreeMap<u32, Vec<Event>> = BTreeMap::new();
        for step in &script {
            run_step(&mut indexed, step, &mut got);
            run_step(&mut linear, step, &mut want);

            // Covering soundness at every quiescent point: whatever the
            // linear broker forwards on a link is covered by something
            // the indexed broker forwards there, so no wanted event can
            // fail to cross.
            for i in 0..BROKERS {
                for j in 0..BROKERS {
                    let roots = indexed[i as usize].forwarded(NodeIndex(j));
                    for lf in linear[i as usize].forwarded(NodeIndex(j)) {
                        // `covers` is deliberately not reflexive for
                        // NaN-carrying (unsatisfiable) constraints, so
                        // accept the identical filter by rendering.
                        prop_assert!(
                            roots.iter().any(|r| r.covers(&lf) || r.to_string() == lf.to_string()),
                            "link {}->{}: linear forwards `{}` but no indexed root covers it",
                            i,
                            j,
                            lf
                        );
                    }
                }
            }
        }
        // Byte-identical notification streams, per client, in order.
        // Rendered comparison: `Event` equality is false for NaN attrs
        // (IEEE semantics), but identical bytes are what we claim.
        prop_assert_eq!(format!("{got:?}"), format!("{want:?}"));
    }
}

/// Deterministic multi-hop regression for the foreign-merged-cover bug:
/// the downstream broker (2) merges two client subscriptions into one
/// synthetic cover S, forwarded two hops (2 → 1 → 0). At the *middle*
/// broker S is a live subscription whose id happens to carry the
/// synthetic tag bit. Local churn there — a covered child draining, or a
/// merge that absorbs S as partner and then unwinds — must never retract
/// S (or drop it from the forward table) while it is still live, or
/// publications entering at broker 0 silently stop reaching the real
/// subscriber behind broker 2.
#[test]
fn foreign_merged_cover_survives_covered_child_churn() {
    let mut indexed: Vec<Broker> =
        (0..BROKERS).map(|i| Broker::new(NodeIndex(i), line(i))).collect();
    let mut linear: Vec<LinearBroker> =
        (0..BROKERS).map(|i| LinearBroker::new(NodeIndex(i), line(i))).collect();
    let mut got: BTreeMap<u32, Vec<Event>> = BTreeMap::new();
    let mut want: BTreeMap<u32, Vec<Event>> = BTreeMap::new();

    let sub_at = |broker: u32, client: u32, id: u64, filter: Filter| {
        (broker, client, BrokerMsg::Subscribe(Subscription { id, filter }))
    };
    let mut script: Vec<ScriptStep> = vec![
        (2, 12, BrokerMsg::Attach),
        (1, 11, BrokerMsg::Attach),
        (0, 10, BrokerMsg::Attach),
        // The real subscriber's first filter crosses both hops as itself.
        sub_at(
            2,
            12,
            1,
            Filter::for_kind("k").with_constraint("x", Op::Gt, 0i64).with_eq("u", "bob"),
        ),
    ];
    // Pad broker 1's table toward broker 0 with unrelated roots so the
    // synthetic cover arriving next falls outside the MERGE_SCAN window
    // and becomes a forwarded root itself instead of being re-merged.
    for i in 0..8u64 {
        script.push(sub_at(1, 11, 100 + i, Filter::for_kind(format!("z{i}"))));
    }
    // The second subscription overlaps the first without either covering
    // the other: broker 2 mints synthetic S = (k, x>0), forwards it
    // through broker 1 to broker 0 and retracts subscription 1.
    script.push(sub_at(
        2,
        12,
        2,
        Filter::for_kind("k").with_constraint("x", Op::Gt, 5i64).with_eq("u", "anna"),
    ));
    // Covered-child churn at the middle broker: a local sub covered by S
    // subscribes then unsubscribes, draining S's child list to empty.
    script.push(sub_at(
        1,
        11,
        3,
        Filter::for_kind("k").with_constraint("x", Op::Gt, 3i64).with_eq("u", "carol"),
    ));
    script.push((1, 11, BrokerMsg::Unsubscribe(3)));
    // The publication must still cross 0 → 1 → 2 to the real subscriber.
    let ev = Event::new("k").with_attr("x", 7i64).with_attr("u", "bob");
    script.push((0, 10, BrokerMsg::Publish(ev.clone())));
    // Merge-partner churn: a local sub broad enough to absorb S into a
    // new merged cover. When it unwinds, S must have been re-tracked as a
    // covered child so the replacement cover keeps standing in for it.
    script.push(sub_at(1, 11, 4, Filter::for_kind("k").with_constraint("x", Op::Gt, -1i64)));
    script.push((1, 11, BrokerMsg::Unsubscribe(4)));
    script.push((0, 10, BrokerMsg::Publish(ev)));

    for step in &script {
        run_step(&mut indexed, step, &mut got);
        run_step(&mut linear, step, &mut want);
    }
    assert_eq!(
        got.get(&12).map_or(0, Vec::len),
        2,
        "both publications must reach the downstream subscriber: {got:?}"
    );
    assert_eq!(format!("{got:?}"), format!("{want:?}"));
}
