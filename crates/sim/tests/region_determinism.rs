//! Cross-region determinism: a world over a 4-region topology produces
//! byte-identical traces, identical per-node schedules, identical engine
//! counters, and an identical settle time at region counts 1, 2, and 4 —
//! and at any wheel geometry. The schedule is a function of the seed, not
//! of how the event plane is sharded or bucketed.

use gloss_sim::{
    splitmix64, Input, Node, NodeIndex, Outbox, SimDuration, SimRng, SimTime, Topology, World,
};

/// A chattering protocol: periodic timers fan messages out to pseudo-random
/// peers; receivers relay with bounded hops and log every input.
#[derive(Debug)]
struct Chatter {
    id: u32,
    n: u32,
    decisions: u64,
    rounds: u32,
    log: Vec<String>,
}

impl Node for Chatter {
    type Msg = u64;

    fn handle(&mut self, now: SimTime, input: Input<u64>, out: &mut Outbox<u64>) {
        match input {
            Input::Start => {
                out.trace("start", format!("n{}", self.id));
                out.timer(SimDuration::from_millis(2 + (self.id as u64 % 5)), 0);
            }
            Input::Timer { tag } => {
                out.trace("tick", format!("n{} t{tag}", self.id));
                let r = splitmix64(&mut self.decisions);
                for i in 0..1 + (r % 3) {
                    let peer = ((r >> (8 * i)) % self.n as u64) as u32;
                    out.send(NodeIndex(peer), (r % 1009) * 4);
                }
                if self.rounds > 0 {
                    self.rounds -= 1;
                    out.timer(SimDuration::from_millis(4 + r % 9), tag + 1);
                }
            }
            Input::Msg { from, msg } => {
                self.log.push(format!("{now} {msg} {from}"));
                out.trace("recv", format!("n{} {msg} from {from}", self.id));
                out.count("chatter.msgs", 1.0);
                let hops = msg % 4;
                if hops < 2 {
                    let r = splitmix64(&mut self.decisions);
                    out.send(NodeIndex((r % self.n as u64) as u32), (msg & !3) + hops + 1);
                }
            }
        }
    }
}

type Outcome = (String, Vec<String>, f64, u64, u64, SimTime);

/// Runs the same seeded scenario (a 4-region topology with churn) at the
/// given region count and wheel geometry.
fn run(regions: usize, width: u64, buckets: usize) -> Outcome {
    const N: usize = 24;
    const SEED: u64 = 9107;
    let topology = Topology::random(N, &["scotland", "us-east", "brazil", "asia"], SEED);
    let nodes: Vec<Chatter> = (0..N)
        .map(|i| Chatter {
            id: i as u32,
            n: N as u32,
            decisions: 0xc0ffee ^ (i as u64) << 9,
            rounds: 6,
            log: Vec::new(),
        })
        .collect();
    let mut w = World::new(topology, SEED, nodes);
    w.set_region_count(regions);
    w.set_wheel_geometry(width, buckets);
    w.enable_tracing(1 << 20);
    w.set_loss(0.15);
    // Churn across the run, including nodes in different shards.
    let mut rng = SimRng::new(SEED).fork("churn-script");
    for k in 0..5u64 {
        let victim = NodeIndex(rng.index(N) as u32);
        let at = SimTime::from_millis(10 + 17 * k);
        w.crash_at(at, victim);
        w.recover_at(at + SimDuration::from_millis(25), victim);
    }
    // Mid-run harness injections (the window must retreat correctly).
    w.run_until(SimTime::from_millis(30));
    for _ in 0..6 {
        let a = NodeIndex(rng.index(N) as u32);
        let b = NodeIndex(rng.index(N) as u32);
        w.inject(a, b, 8);
    }
    let settle = w.run_to_quiescence(SimTime::from_secs(30));
    let logs: Vec<String> = w.nodes().map(|n| n.log.join("\n")).collect();
    let m = w.metrics();
    (
        w.tracer().render(),
        logs,
        m.counter("chatter.msgs"),
        m.counter("sim.messages_sent") as u64,
        m.counter("sim.messages_lost") as u64,
        settle,
    )
}

#[test]
fn region_counts_1_2_4_yield_byte_identical_traces() {
    let baseline = run(1, 1024, 256);
    let two = run(2, 1024, 256);
    let four = run(4, 1024, 256);
    assert_eq!(baseline.0, two.0, "trace differs at 2 regions");
    assert_eq!(baseline.0, four.0, "trace differs at 4 regions");
    assert_eq!(baseline, two, "outcome differs at 2 regions");
    assert_eq!(baseline, four, "outcome differs at 4 regions");
    assert!(!baseline.0.is_empty(), "trace actually recorded something");
}

#[test]
fn wheel_geometry_does_not_change_the_schedule() {
    let baseline = run(4, 1024, 256);
    for (width, buckets) in [(64, 32), (256, 64), (8192, 8), (1 << 20, 4)] {
        let other = run(4, width, buckets);
        assert_eq!(baseline, other, "outcome differs at width={width} buckets={buckets}");
    }
}

#[test]
fn worlds_actually_shard() {
    let topology = Topology::random(8, &["scotland", "us-east", "brazil", "asia"], 3);
    let nodes = (0..8)
        .map(|i| Chatter { id: i, n: 8, decisions: i as u64, rounds: 0, log: Vec::new() })
        .collect();
    let w: World<Chatter> = World::new(topology, 3, nodes);
    // Defaults to one region per distinct topology region name.
    assert_eq!(w.region_count(), 4);
    assert!(w.slice_micros() > 0);
}
