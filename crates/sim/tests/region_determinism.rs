//! Cross-region determinism: a world over a 4-region topology produces
//! byte-identical traces, identical per-node schedules, identical engine
//! counters, and an identical settle time at region counts 1, 2, and 4 —
//! at any wheel geometry, and at any worker thread count. The schedule is
//! a function of the seed, not of how the event plane is sharded,
//! bucketed, or threaded.

use gloss_sim::testkit::Chatter;
use gloss_sim::{NodeIndex, SimDuration, SimRng, SimTime, Topology, World};
use proptest::prelude::*;

type Outcome = (String, Vec<String>, f64, u64, u64, SimTime);

/// Runs the same seeded scenario (a 4-region topology with churn) at the
/// given region count and wheel geometry.
fn run(regions: usize, width: u64, buckets: usize) -> Outcome {
    run_threaded(regions, width, buckets, 1)
}

/// Like [`run`], additionally setting the worker thread count.
fn run_threaded(regions: usize, width: u64, buckets: usize, threads: usize) -> Outcome {
    const N: usize = 24;
    const SEED: u64 = 9107;
    let topology = Topology::random(N, &["scotland", "us-east", "brazil", "asia"], SEED);
    let nodes: Vec<Chatter> =
        (0..N).map(|i| Chatter::new(i as u32, N as u32, 0xc0ffee ^ (i as u64) << 9, 6)).collect();
    let mut w = World::new(topology, SEED, nodes);
    w.set_region_count(regions);
    w.set_wheel_geometry(width, buckets);
    w.set_threads(threads);
    w.enable_tracing(1 << 20);
    w.set_loss(0.15);
    // Churn across the run, including nodes in different shards.
    let mut rng = SimRng::new(SEED).fork("churn-script");
    for k in 0..5u64 {
        let victim = NodeIndex(rng.index(N) as u32);
        let at = SimTime::from_millis(10 + 17 * k);
        w.crash_at(at, victim);
        w.recover_at(at + SimDuration::from_millis(25), victim);
    }
    // Mid-run harness injections (the window must retreat correctly).
    w.run_until(SimTime::from_millis(30));
    for _ in 0..6 {
        let a = NodeIndex(rng.index(N) as u32);
        let b = NodeIndex(rng.index(N) as u32);
        w.inject(a, b, 8);
    }
    let settle = w.run_to_quiescence(SimTime::from_secs(30));
    let logs: Vec<String> = w.nodes().map(|n| n.log.join("\n")).collect();
    let m = w.metrics();
    (
        w.tracer().render(),
        logs,
        m.counter("chatter.msgs"),
        m.counter("sim.messages_sent") as u64,
        m.counter("sim.messages_lost") as u64,
        settle,
    )
}

#[test]
fn region_counts_1_2_4_yield_byte_identical_traces() {
    let baseline = run(1, 1024, 256);
    let two = run(2, 1024, 256);
    let four = run(4, 1024, 256);
    assert_eq!(baseline.0, two.0, "trace differs at 2 regions");
    assert_eq!(baseline.0, four.0, "trace differs at 4 regions");
    assert_eq!(baseline, two, "outcome differs at 2 regions");
    assert_eq!(baseline, four, "outcome differs at 4 regions");
    assert!(!baseline.0.is_empty(), "trace actually recorded something");
}

#[test]
fn wheel_geometry_does_not_change_the_schedule() {
    let baseline = run(4, 1024, 256);
    for (width, buckets) in [(64, 32), (256, 64), (8192, 8), (1 << 20, 4)] {
        let other = run(4, width, buckets);
        assert_eq!(baseline, other, "outcome differs at width={width} buckets={buckets}");
    }
}

#[test]
fn thread_counts_1_2_4_yield_byte_identical_traces() {
    let baseline = run_threaded(4, 1024, 256, 1);
    let two = run_threaded(4, 1024, 256, 2);
    let four = run_threaded(4, 1024, 256, 4);
    assert_eq!(baseline.0, two.0, "trace differs at 2 threads");
    assert_eq!(baseline.0, four.0, "trace differs at 4 threads");
    assert_eq!(baseline, two, "outcome differs at 2 threads");
    assert_eq!(baseline, four, "outcome differs at 4 threads");
    assert!(!baseline.0.is_empty(), "trace actually recorded something");
}

// ---------------------------------------------------------------------------
// Threaded parity as a property (same harness style as engine_equivalence):
// random topologies, loss rates, crash/recover schedules, and mid-run
// injections must produce byte-identical traces, per-node schedules,
// counters, and settle times at worker thread counts 1, 2, and 4.
// ---------------------------------------------------------------------------

const REGION_POOL: &[&str] =
    &["scotland", "england", "europe", "us-east", "us-west", "brazil", "australia", "asia"];

#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    nodes: usize,
    region_names: usize,
    loss_pct: u64,
    injects: u64,
    crashes: u64,
    rounds: u32,
}

fn scripted_run(s: &Scenario, threads: usize) -> Outcome {
    let regions: Vec<&str> = REGION_POOL[..s.region_names].to_vec();
    let topology = Topology::random(s.nodes, &regions, s.seed);
    let nodes: Vec<Chatter> = (0..s.nodes)
        .map(|i| Chatter::new(i as u32, s.nodes as u32, s.seed ^ (i as u64) << 13, s.rounds))
        .collect();
    let mut w = World::new(topology, s.seed, nodes);
    w.set_threads(threads);
    w.enable_tracing(1 << 20);
    w.set_loss(s.loss_pct as f64 / 100.0);
    let mut rng = SimRng::new(s.seed).fork("parity-script");
    for _ in 0..s.crashes {
        let victim = NodeIndex(rng.index(s.nodes) as u32);
        let at = SimTime::from_millis(5 + rng.range(0, 120));
        w.crash_at(at, victim);
        w.recover_at(at + SimDuration::from_millis(10 + rng.range(0, 60)), victim);
    }
    for _ in 0..s.injects {
        let a = NodeIndex(rng.index(s.nodes) as u32);
        let b = NodeIndex(rng.index(s.nodes) as u32);
        w.inject(a, b, rng.range(0, 80) * 8);
    }
    // Run in phases with mid-run harness activity: segments must resume
    // correctly after the lockstep window retreats.
    w.run_until(SimTime::from_millis(40));
    for _ in 0..s.injects / 2 {
        let a = NodeIndex(rng.index(s.nodes) as u32);
        let b = NodeIndex(rng.index(s.nodes) as u32);
        w.inject(a, b, rng.range(0, 60) * 8);
    }
    w.run_until(SimTime::from_millis(400));
    let settle = w.run_to_quiescence(SimTime::from_secs(30));
    let logs: Vec<String> = w.nodes().map(|n| n.log.join("\n")).collect();
    let m = w.metrics();
    (
        w.tracer().render(),
        logs,
        m.counter("chatter.msgs"),
        m.counter("sim.messages_sent") as u64,
        m.counter("sim.messages_lost") as u64,
        settle,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn threaded_runs_match_sequential(
        seed in 0u64..1_000_000,
        nodes in 4usize..28,
        region_names in 2usize..7,
        loss_pct in 0u64..3, // scaled below to 0%, 35%, 70%
        injects in 0u64..10,
        crashes in 0u64..5,
        rounds in 1u32..8,
    ) {
        let s = Scenario {
            seed,
            nodes,
            region_names,
            loss_pct: loss_pct * 35,
            injects,
            crashes,
            rounds,
        };
        let sequential = scripted_run(&s, 1);
        for threads in [2usize, 4] {
            let threaded = scripted_run(&s, threads);
            prop_assert_eq!(&sequential.0, &threaded.0, "trace diverged at {} threads: {:?}", threads, &s);
            prop_assert_eq!(&sequential.1, &threaded.1, "per-node schedules diverged at {} threads: {:?}", threads, &s);
            prop_assert_eq!(&sequential, &threaded, "outcome diverged at {} threads: {:?}", threads, &s);
        }
    }
}

#[test]
fn worlds_actually_shard() {
    let topology = Topology::random(8, &["scotland", "us-east", "brazil", "asia"], 3);
    let nodes = (0..8).map(|i| Chatter::new(i, 8, i as u64, 0)).collect();
    let w: World<Chatter> = World::new(topology, 3, nodes);
    // Defaults to one region per distinct topology region name.
    assert_eq!(w.region_count(), 4);
    assert!(w.slice_micros() > 0);
}
