//! Property test: the bucketed, region-sharded scheduler is
//! schedule-preserving.
//!
//! `SeedWorld` below transcribes the seed scheduler's shape — one global
//! binary heap popped in ascending key order — on top of the engine's
//! canonical semantics (per-link latency streams, FIFO clamping, batched
//! same-instant delivery, crash purging). Random topologies, loss rates,
//! timers, injections, and crash/recover schedules must produce an
//! identical delivery order (per-node input logs), an identical trace,
//! identical engine counters, and an identical `run_to_quiescence` settle
//! time from both schedulers — at every region count and bucket geometry.

use gloss_sim::{
    link_stream_seed, splitmix64, splitmix_unit, FnvHashMap, Input, Node, NodeIndex, Outbox,
    SimDuration, SimRng, SimTime, Topology, Tracer, World,
};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

// ---------------------------------------------------------------------------
// The deterministic protocol driven through both schedulers.
// ---------------------------------------------------------------------------

/// Messages carry `value * 8 + hops`; nodes stop relaying after 3 hops.
#[derive(Debug, Clone)]
struct TNode {
    id: u32,
    n: u32,
    /// Private decision stream (node-local, scheduler-independent).
    decisions: u64,
    /// Timer re-arms left.
    rearms: u32,
    /// Everything this node saw, in order (the per-node schedule).
    log: Vec<String>,
}

impl TNode {
    fn new(id: u32, n: u32) -> Self {
        TNode { id, n, decisions: 0x5eed ^ (id as u64) << 17, rearms: 4, log: Vec::new() }
    }

    fn roll(&mut self) -> u64 {
        splitmix64(&mut self.decisions)
    }
}

impl Node for TNode {
    type Msg = u64;

    fn handle(&mut self, now: SimTime, input: Input<u64>, out: &mut Outbox<u64>) {
        match input {
            Input::Start => {
                self.log.push(format!("{now} start"));
                out.trace("start", format!("n{}", self.id));
                out.timer(SimDuration::from_millis(5 + (self.id as u64 % 13)), 1);
            }
            Input::Timer { tag } => {
                self.log.push(format!("{now} timer {tag}"));
                out.trace("timer", format!("n{} tag{tag}", self.id));
                // Send to one or two pseudo-random peers.
                let r = self.roll();
                let a = (r % self.n as u64) as u32;
                out.send(NodeIndex(a), (r % 97) * 8);
                if r.is_multiple_of(3) {
                    let b = ((r >> 16) % self.n as u64) as u32;
                    out.send_after(
                        NodeIndex(b),
                        ((r >> 8) % 89) * 8,
                        SimDuration::from_micros(r % 1500),
                    );
                }
                if self.rearms > 0 {
                    self.rearms -= 1;
                    out.timer(SimDuration::from_millis(3 + r % 17), tag + 1);
                }
            }
            Input::Msg { from, msg } => {
                self.log.push(format!("{now} msg {msg} from {from}"));
                out.trace("msg", format!("n{} got {msg} from {from}", self.id));
                out.count("t.msgs", 1.0);
                let hops = msg % 8;
                if hops < 3 {
                    let r = self.roll();
                    // Sometimes reply, sometimes relay; same-activation
                    // fan-out over one link exercises latency sharing.
                    out.send(from, (msg & !7) + hops + 1);
                    if r.is_multiple_of(4) {
                        let c = (r % self.n as u64) as u32;
                        out.send(NodeIndex(c), (msg & !7) + hops + 1);
                        out.send(NodeIndex(c), ((r >> 20) % 83) * 8 + hops + 1);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SeedWorld: one global heap, canonical key order, same link semantics.
// ---------------------------------------------------------------------------

const CLASS_CTRL: u8 = 0;
const CLASS_TIMER: u8 = 1;
const CLASS_LINK: u8 = 2;
const CLASS_HARNESS: u8 = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: SimTime,
    class: u8,
    a: u64,
    b: u64,
}

#[derive(Debug)]
enum Kind {
    Deliver { from: NodeIndex, to: NodeIndex, msg: u64 },
    Timer { node: NodeIndex, tag: u64 },
    Crash { node: NodeIndex },
    Recover { node: NodeIndex },
}

#[derive(Debug)]
struct HeapEntry {
    key: Key,
    kind: Kind,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

struct Link {
    last_at: u64,
    nominal: u64,
    jittered: u64,
    last_apply: u64,
    rng: u64,
    seq: u64,
}

/// A transcription of the seed scheduler: one global `BinaryHeap`, popped
/// strictly in ascending canonical key order.
struct SeedWorld {
    topology: Topology,
    nodes: Vec<TNode>,
    alive: Vec<bool>,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    links: Vec<FnvHashMap<u32, Link>>,
    timer_seq: Vec<u64>,
    harness_seq: u64,
    apply_seq: u64,
    seed: u64,
    now: SimTime,
    rng: SimRng,
    loss: f64,
    pub tracer: Tracer,
    started: bool,
    pub sent: u64,
    pub delivered: u64,
    pub lost: u64,
    pub dropped_dead: u64,
    pub msgs_counter: f64,
}

impl SeedWorld {
    fn new(topology: Topology, seed: u64, nodes: Vec<TNode>) -> Self {
        let n = nodes.len();
        SeedWorld {
            topology,
            nodes,
            alive: vec![true; n],
            heap: BinaryHeap::new(),
            links: (0..n).map(|_| FnvHashMap::default()).collect(),
            timer_seq: vec![0; n],
            harness_seq: 0,
            apply_seq: 0,
            seed,
            now: SimTime::ZERO,
            rng: SimRng::new(seed).fork("world"),
            loss: 0.0,
            tracer: Tracer::enabled(1 << 20),
            started: false,
            sent: 0,
            delivered: 0,
            lost: 0,
            dropped_dead: 0,
            msgs_counter: 0.0,
        }
    }

    fn set_loss(&mut self, p: f64) {
        self.loss = p.clamp(0.0, 1.0);
    }

    fn inject(&mut self, from: NodeIndex, to: NodeIndex, msg: u64) {
        let latency = self.topology.sample_latency(from, to, &mut self.rng);
        let at = self.now + latency;
        self.harness_seq += 1;
        let key = Key { at, class: CLASS_HARNESS, a: self.harness_seq, b: 0 };
        self.heap.push(Reverse(HeapEntry { key, kind: Kind::Deliver { from, to, msg } }));
    }

    fn inject_at(&mut self, at: SimTime, from: NodeIndex, to: NodeIndex, msg: u64) {
        self.harness_seq += 1;
        let key = Key { at, class: CLASS_HARNESS, a: self.harness_seq, b: 0 };
        self.heap.push(Reverse(HeapEntry { key, kind: Kind::Deliver { from, to, msg } }));
    }

    fn crash_at(&mut self, at: SimTime, node: NodeIndex) {
        self.harness_seq += 1;
        let key = Key { at, class: CLASS_CTRL, a: self.harness_seq, b: 0 };
        self.heap.push(Reverse(HeapEntry { key, kind: Kind::Crash { node } }));
    }

    fn recover_at(&mut self, at: SimTime, node: NodeIndex) {
        self.harness_seq += 1;
        let key = Key { at, class: CLASS_CTRL, a: self.harness_seq, b: 0 };
        self.heap.push(Reverse(HeapEntry { key, kind: Kind::Recover { node } }));
    }

    fn crash(&mut self, node: NodeIndex) {
        self.alive[node.as_usize()] = false;
        self.links[node.as_usize()].clear();
        for senders in &mut self.links {
            senders.remove(&node.0);
        }
    }

    fn recover(&mut self, node: NodeIndex) {
        if !self.alive[node.as_usize()] {
            self.alive[node.as_usize()] = true;
            self.activate_one(node, Input::Start);
        }
    }

    fn start_all(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            if self.alive[i] {
                self.activate_one(NodeIndex(i as u32), Input::Start);
            }
        }
    }

    fn activate_one(&mut self, index: NodeIndex, input: Input<u64>) {
        let mut out = Outbox::new();
        self.nodes[index.as_usize()].handle(self.now, input, &mut out);
        self.apply(index, out);
    }

    /// Delivers a batch through the default per-message fallback, applying
    /// all effects as one activation (this is what groups one flush's
    /// sends per link).
    fn activate_batch(&mut self, to: NodeIndex, batch: Vec<(NodeIndex, u64)>) {
        let mut out = Outbox::new();
        for (from, msg) in batch {
            self.nodes[to.as_usize()].handle(self.now, Input::Msg { from, msg }, &mut out);
        }
        self.apply(to, out);
    }

    fn apply(&mut self, from: NodeIndex, mut out: Outbox<u64>) {
        self.apply_seq += 1;
        for (to, msg, extra) in out.take_sends() {
            self.send(from, to, msg, extra);
        }
        for (delay, tag) in out.take_timers() {
            let seq = &mut self.timer_seq[from.as_usize()];
            *seq += 1;
            let key = Key { at: self.now + delay, class: CLASS_TIMER, a: from.0 as u64, b: *seq };
            self.heap.push(Reverse(HeapEntry { key, kind: Kind::Timer { node: from, tag } }));
        }
        for (name, by) in out.counts() {
            if name == "t.msgs" {
                self.msgs_counter += by;
            }
        }
        for (kind, detail) in out.traces() {
            self.tracer.record(self.now, from, kind, detail.clone());
        }
    }

    fn send(&mut self, from: NodeIndex, to: NodeIndex, msg: u64, extra: SimDuration) {
        let jitter = self.topology.latency_model().jitter;
        let sender = from.as_usize();
        if !self.links[sender].contains_key(&to.0) {
            let nominal = self.topology.nominal_latency(from, to).as_micros();
            self.links[sender].insert(
                to.0,
                Link {
                    last_at: 0,
                    nominal,
                    jittered: nominal,
                    last_apply: 0,
                    rng: link_stream_seed(self.seed, from, to),
                    seq: 0,
                },
            );
        }
        let ls = self.links[sender].get_mut(&to.0).expect("inserted");
        if ls.last_apply != self.apply_seq {
            ls.last_apply = self.apply_seq;
            ls.jittered = if to == from || jitter <= 0.0 {
                ls.nominal
            } else {
                let factor = 1.0 - jitter + 2.0 * jitter * splitmix_unit(&mut ls.rng);
                (ls.nominal as f64 * factor).round() as u64
            };
        }
        if self.loss > 0.0 && to != from && splitmix_unit(&mut ls.rng) < self.loss {
            self.lost += 1;
            return;
        }
        let mut at = self.now.as_micros() + ls.jittered + extra.as_micros();
        if at < ls.last_at {
            at = ls.last_at;
        }
        ls.last_at = at;
        ls.seq += 1;
        let key = Key {
            at: SimTime::from_micros(at),
            class: CLASS_LINK,
            a: ((to.0 as u64) << 32) | from.0 as u64,
            b: ls.seq,
        };
        self.sent += 1;
        self.heap.push(Reverse(HeapEntry { key, kind: Kind::Deliver { from, to, msg } }));
    }

    fn step(&mut self) -> bool {
        self.start_all();
        let Some(Reverse(entry)) = self.heap.pop() else {
            return false;
        };
        self.now = entry.key.at;
        match entry.kind {
            Kind::Crash { node } => self.crash(node),
            Kind::Recover { node } => self.recover(node),
            Kind::Timer { node, tag } => {
                if self.alive[node.as_usize()] {
                    self.activate_one(node, Input::Timer { tag });
                }
            }
            Kind::Deliver { from, to, msg } => {
                let mut batch = vec![(from, msg)];
                // Only link deliveries batch (mirrors the engine).
                while let Some(Reverse(next)) = self.heap.peek() {
                    let k = next.key;
                    if k.at != entry.key.at || k.class != CLASS_LINK || (k.a >> 32) as u32 != to.0 {
                        break;
                    }
                    let Some(Reverse(HeapEntry { kind: Kind::Deliver { from, msg, .. }, .. })) =
                        self.heap.pop()
                    else {
                        unreachable!("peeked a link delivery");
                    };
                    batch.push((from, msg));
                }
                if self.alive[to.as_usize()] {
                    self.delivered += batch.len() as u64;
                    self.activate_batch(to, batch);
                } else {
                    self.dropped_dead += batch.len() as u64;
                }
            }
        }
        true
    }

    fn run_until(&mut self, t: SimTime) {
        self.start_all();
        while let Some(Reverse(e)) = self.heap.peek() {
            if e.key.at > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
    }

    fn run_to_quiescence(&mut self, limit: SimTime) -> SimTime {
        self.start_all();
        let mut first = true;
        loop {
            if self.heap.peek().is_none() {
                if self.now > limit {
                    self.now = limit;
                    return limit;
                }
                return self.now;
            };
            if !first && self.heap.peek().expect("checked").0.key.at > limit {
                break;
            }
            first = false;
            self.step();
        }
        self.now = limit;
        limit
    }
}

// ---------------------------------------------------------------------------
// The property.
// ---------------------------------------------------------------------------

const REGION_POOL: &[&str] =
    &["scotland", "england", "europe", "us-east", "us-west", "brazil", "australia", "asia"];

#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    nodes: usize,
    region_names: usize,
    loss_pct: u64,
    injects: u64,
    crashes: u64,
    region_count: usize,
    bucket_width: u64,
    bucket_count: usize,
}

/// (trace render, per-node logs, engine counters, settle time).
type Outcome = (String, Vec<String>, (u64, u64, u64, u64, f64), SimTime);

fn scripted_harness(s: &Scenario) -> Outcome {
    let regions: Vec<&str> = REGION_POOL[..s.region_names].to_vec();
    let topology = Topology::random(s.nodes, &regions, s.seed);
    let nodes: Vec<TNode> = (0..s.nodes).map(|i| TNode::new(i as u32, s.nodes as u32)).collect();
    let mut w = World::new(topology, s.seed, nodes);
    w.set_region_count(s.region_count);
    w.set_wheel_geometry(s.bucket_width, s.bucket_count);
    w.enable_tracing(1 << 20);
    w.set_loss(s.loss_pct as f64 / 100.0);
    drive(&mut Driver::New(&mut w), s);
    let settle = w.run_to_quiescence(SimTime::from_secs(120));
    let logs = w.nodes().map(|n| n.log.join("\n")).collect();
    let m = w.metrics();
    (
        w.tracer().render(),
        logs,
        (
            m.counter("sim.messages_sent") as u64,
            m.counter("sim.messages_delivered") as u64,
            m.counter("sim.messages_lost") as u64,
            m.counter("sim.messages_dropped_dead") as u64,
            m.counter("t.msgs"),
        ),
        settle,
    )
}

fn scripted_reference(s: &Scenario) -> Outcome {
    let regions: Vec<&str> = REGION_POOL[..s.region_names].to_vec();
    let topology = Topology::random(s.nodes, &regions, s.seed);
    let nodes: Vec<TNode> = (0..s.nodes).map(|i| TNode::new(i as u32, s.nodes as u32)).collect();
    let mut w = SeedWorld::new(topology, s.seed, nodes);
    w.set_loss(s.loss_pct as f64 / 100.0);
    drive(&mut Driver::Seed(&mut w), s);
    let settle = w.run_to_quiescence(SimTime::from_secs(120));
    let logs = w.nodes.iter().map(|n| n.log.join("\n")).collect();
    (w.tracer.render(), logs, (w.sent, w.delivered, w.lost, w.dropped_dead, w.msgs_counter), settle)
}

/// One harness script issued identically to both schedulers.
enum Driver<'a> {
    New(&'a mut World<TNode>),
    Seed(&'a mut SeedWorld),
}

impl Driver<'_> {
    fn inject(&mut self, from: NodeIndex, to: NodeIndex, msg: u64) {
        match self {
            Driver::New(w) => w.inject(from, to, msg),
            Driver::Seed(w) => w.inject(from, to, msg),
        }
    }
    fn inject_at(&mut self, at: SimTime, from: NodeIndex, to: NodeIndex, msg: u64) {
        match self {
            Driver::New(w) => w.inject_at(at, from, to, msg),
            Driver::Seed(w) => w.inject_at(at, from, to, msg),
        }
    }
    fn crash_at(&mut self, at: SimTime, node: NodeIndex) {
        match self {
            Driver::New(w) => w.crash_at(at, node),
            Driver::Seed(w) => w.crash_at(at, node),
        }
    }
    fn recover_at(&mut self, at: SimTime, node: NodeIndex) {
        match self {
            Driver::New(w) => w.recover_at(at, node),
            Driver::Seed(w) => w.recover_at(at, node),
        }
    }
    fn run_until(&mut self, t: SimTime) {
        match self {
            Driver::New(w) => w.run_until(t),
            Driver::Seed(w) => w.run_until(t),
        }
    }
}

fn drive(d: &mut Driver<'_>, s: &Scenario) {
    let n = s.nodes as u64;
    let mut r = s.seed ^ 0xfeed_beef;
    for _ in 0..s.injects {
        let x = splitmix64(&mut r);
        d.inject(
            NodeIndex((x % n) as u32),
            NodeIndex(((x >> 16) % n) as u32),
            ((x >> 32) % 71) * 8,
        );
    }
    // Crash/recover schedule.
    for _ in 0..s.crashes {
        let x = splitmix64(&mut r);
        let victim = NodeIndex((x % n) as u32);
        let at = SimTime::from_millis(5 + x % 200);
        d.crash_at(at, victim);
        if x.is_multiple_of(2) {
            d.recover_at(at + SimDuration::from_millis(10 + (x >> 8) % 300), victim);
        }
    }
    // Run in phases with mid-run harness activity: this exercises the
    // lockstep window retreating after a speculative advance.
    d.run_until(SimTime::from_millis(40));
    for _ in 0..s.injects / 2 {
        let x = splitmix64(&mut r);
        d.inject(
            NodeIndex((x % n) as u32),
            NodeIndex(((x >> 16) % n) as u32),
            ((x >> 24) % 61) * 8,
        );
    }
    // Same-instant harness deliveries to one node (batching edge).
    let at = SimTime::from_millis(55);
    d.inject_at(at, NodeIndex(0), NodeIndex((splitmix64(&mut r) % n) as u32), 16);
    d.inject_at(at, NodeIndex(1 % s.nodes as u32), NodeIndex(0), 24);
    d.inject_at(at, NodeIndex(2 % s.nodes as u32), NodeIndex(0), 32);
    d.run_until(SimTime::from_millis(300));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_scheduler_matches_seed_heap(
        seed in 0u64..1_000_000,
        nodes in 2usize..14,
        region_names in 1usize..6,
        loss_pct in 0u64..3, // scaled below to 0%, 40%, 80%
        injects in 0u64..8,
        crashes in 0u64..4,
        region_count in 1usize..5,
        bucket_shift in 6u64..14, // 64 µs .. 8192 µs
        bucket_count in 2usize..64,
    ) {
        let s = Scenario {
            seed,
            nodes,
            region_names,
            loss_pct: loss_pct * 40, // 0%, 40%, 80%
            injects,
            crashes,
            region_count,
            bucket_width: 1 << bucket_shift,
            bucket_count,
        };
        let (trace_a, logs_a, counters_a, settle_a) = scripted_harness(&s);
        let (trace_b, logs_b, counters_b, settle_b) = scripted_reference(&s);
        prop_assert_eq!(&logs_a, &logs_b, "per-node schedules diverged: {:?}", &s);
        prop_assert_eq!(&trace_a, &trace_b, "traces diverged: {:?}", &s);
        prop_assert_eq!(counters_a, counters_b, "counters diverged: {:?}", &s);
        prop_assert_eq!(settle_a, settle_b, "settle time diverged: {:?}", &s);
    }
}
