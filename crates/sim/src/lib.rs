//! Deterministic discrete-event simulation substrate for the Gloss
//! reproduction of *Active Architecture for Pervasive Contextual Services*
//! (MPAC 2003).
//!
//! The paper assumes a wide-area deployment over heterogeneous nodes. This
//! crate provides the synthetic equivalent: a seeded discrete-event
//! simulator with a geography-derived latency model, node failure
//! injection, and measurement utilities. Every protocol in the workspace
//! (pub/sub brokers, overlay routing, storage, deployment) is written as a
//! sans-IO state machine driven by [`World`], which owns time and message
//! delivery.
//!
//! The event plane is built for 1k–4k-node workloads (see the
//! [engine docs](engine) for the full architecture):
//!
//! - nodes shard into **regions** (one per topology region name by
//!   default), each owning a **bucketed calendar queue** (timer-wheel +
//!   overflow heap) instead of one global binary heap;
//! - cross-region messages cross a **boundary exchange** flushed at
//!   lockstep time-slice boundaries;
//! - regions drain **concurrently on scoped worker threads** when
//!   `GLOSS_SIM_THREADS` (or [`World::set_threads`](engine::World::set_threads))
//!   asks for more than one — the default of 1 keeps the sequential path;
//! - per-link state (FNV-keyed, purged on crash) caches geographic
//!   latency and carries an order-independent jitter/loss stream;
//! - same-instant arrivals at one node are handed over as a **batch**
//!   ([`Node::on_batch`]), amortising per-event dispatch above the engine.
//!
//! Determinism: a fixed seed yields an identical event trace — regardless
//! of region count, bucket width, or thread count. Events are processed in
//! canonical key order (a pure function of link/timer/harness sequence
//! numbers, not of scheduler internals), and all randomness flows from
//! [`SimRng`] forks or per-link splitmix64 streams. The
//! `engine_equivalence` integration test checks the sharded scheduler
//! against a single-heap transcription; the `region_determinism` test
//! checks byte-identical traces across region counts and worker thread
//! counts.
//!
//! # Example
//!
//! ```
//! use gloss_sim::{World, Node, Input, Outbox, Topology, SimTime, NodeIndex};
//!
//! /// A node that acknowledges every `Ping` with a `Pong`.
//! struct Echo { pongs: u32 }
//! #[derive(Debug, Clone)]
//! enum Msg { Ping, Pong }
//!
//! impl Node for Echo {
//!     type Msg = Msg;
//!     fn handle(&mut self, _now: SimTime, input: Input<Msg>, out: &mut Outbox<Msg>) {
//!         match input {
//!             Input::Msg { from, msg: Msg::Ping } => out.send(from, Msg::Pong),
//!             Input::Msg { msg: Msg::Pong, .. } => self.pongs += 1,
//!             _ => {}
//!         }
//!     }
//! }
//!
//! let topology = Topology::random(2, &["lab"], 7);
//! let mut world = World::new(topology, 7, vec![Echo { pongs: 0 }, Echo { pongs: 0 }]);
//! world.inject(NodeIndex(0), NodeIndex(1), Msg::Ping);
//! world.run_until(SimTime::from_secs(1));
//! assert_eq!(world.node(NodeIndex(0)).pongs, 1);
//! ```

pub mod byzantine;
pub mod engine;
pub mod failure;
pub mod hash;
pub mod metrics;
pub mod rng;
pub mod testkit;
pub mod time;
pub mod topology;
pub mod trace;

pub use byzantine::{ByzBehavior, ByzantineActor, FaultClass};
pub use engine::{link_stream_seed, Batch, Input, Node, Outbox, World};
pub use failure::{ChurnEvent, ChurnKind, ChurnModel};
pub use hash::{fnv1a, splitmix64, splitmix_unit, FnvBuildHasher, FnvHashMap, FnvHasher};
pub use metrics::{CounterId, Histogram, MetricsRegistry, Summary};
pub use rng::{SimRng, Zipf};
pub use time::{SimDuration, SimTime};
pub use topology::{GeoPoint, LatencyModel, NodeIndex, NodeInfo, Topology};
pub use trace::{TraceEvent, Tracer};
