//! A fast, non-cryptographic hasher for short-key hot-path maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of
//! nanoseconds per short string; the simulator's inner loops (fact
//! indexes, event-kind dispatch) hash trusted, low-cardinality keys
//! where FNV-1a is both sufficient and several times cheaper.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, 64-bit.
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

/// `BuildHasher` for [`FnvHasher`].
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// FNV-1a of a byte string in one call — the fingerprint the matching
/// core's alpha indexes bucket fact subjects by.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FnvHasher::default();
    h.write(bytes);
    h.finish()
}

/// A `HashMap` keyed with FNV-1a.
pub type FnvHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

/// One step of the splitmix64 sequence: advances `state` and returns the
/// next output.
///
/// The engine gives every network link its own splitmix64 stream for
/// jitter and loss sampling: the stream a link draws from depends only on
/// the world seed and the link's endpoints, never on how activity on other
/// links interleaves — the property that makes the sharded scheduler's
/// traces region-count invariant. Public so scheduler-equivalence tests
/// can transcribe the sampling exactly.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform `f64` in `[0, 1)` drawn from a splitmix64 stream.
pub fn splitmix_unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works_and_distinguishes_keys() {
        let mut m: FnvHashMap<String, u32> = FnvHashMap::default();
        m.insert("alpha".into(), 1);
        m.insert("beta".into(), 2);
        assert_eq!(m.get("alpha"), Some(&1));
        assert_eq!(m.get("beta"), Some(&2));
        assert_eq!(m.get("gamma"), None);
    }

    #[test]
    fn splitmix_streams_are_deterministic_and_distinct() {
        let mut a = 7u64;
        let mut b = 7u64;
        let mut c = 8u64;
        let sa: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let sb: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        let sc: Vec<u64> = (0..8).map(|_| splitmix64(&mut c)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn splitmix_unit_in_range() {
        let mut s = 1234u64;
        for _ in 0..1000 {
            let u = splitmix_unit(&mut s);
            assert!((0.0..1.0).contains(&u), "unit sample {u}");
        }
    }

    #[test]
    fn hashes_differ_for_different_inputs() {
        let hash = |s: &str| {
            let mut h = FnvHasher::default();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_ne!(hash("a"), hash("b"));
        assert_ne!(hash("ab"), hash("ba"));
    }
}
