//! A fast, non-cryptographic hasher for short-key hot-path maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of
//! nanoseconds per short string; the simulator's inner loops (fact
//! indexes, event-kind dispatch) hash trusted, low-cardinality keys
//! where FNV-1a is both sufficient and several times cheaper.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, 64-bit.
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

/// `BuildHasher` for [`FnvHasher`].
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A `HashMap` keyed with FNV-1a.
pub type FnvHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works_and_distinguishes_keys() {
        let mut m: FnvHashMap<String, u32> = FnvHashMap::default();
        m.insert("alpha".into(), 1);
        m.insert("beta".into(), 2);
        assert_eq!(m.get("alpha"), Some(&1));
        assert_eq!(m.get("beta"), Some(&2));
        assert_eq!(m.get("gamma"), None);
    }

    #[test]
    fn hashes_differ_for_different_inputs() {
        let hash = |s: &str| {
            let mut h = FnvHasher::default();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_ne!(hash("a"), hash("b"));
        assert_ne!(hash("ab"), hash("ba"));
    }
}
