//! Churn generation: schedules of node crashes, recoveries, and graceful
//! withdrawals.
//!
//! The paper (§4.4) distinguishes nodes that "disappear gracefully, in which
//! case they will publish events warning of their imminent withdrawal" from
//! those that vanish "without warning". [`ChurnModel`] produces both kinds;
//! the world executes crashes/recoveries directly, while graceful leaves are
//! surfaced to the protocol layer so it can publish withdrawal events first.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::NodeIndex;

/// What happens to a node at a churn instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// Abrupt failure with no warning.
    Crash,
    /// The node returns to service.
    Recover,
    /// The node announces imminent withdrawal, then (shortly after) leaves.
    GracefulLeave,
}

/// One scheduled churn instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When it happens.
    pub at: SimTime,
    /// The node affected.
    pub node: NodeIndex,
    /// What happens.
    pub kind: ChurnKind,
}

/// Exponential up/down churn: nodes stay up for ~`mtbf`, down for ~`mttr`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnModel {
    /// Mean time between failures (mean up-time).
    pub mtbf: SimDuration,
    /// Mean time to recovery (mean down-time).
    pub mttr: SimDuration,
    /// Fraction of departures that are graceful (announced) rather than
    /// abrupt crashes.
    pub graceful_fraction: f64,
}

impl ChurnModel {
    /// A model with the given mean up and down times and no graceful leaves.
    pub fn new(mtbf: SimDuration, mttr: SimDuration) -> Self {
        ChurnModel { mtbf, mttr, graceful_fraction: 0.0 }
    }

    /// Sets the fraction of graceful departures.
    pub fn with_graceful_fraction(mut self, f: f64) -> Self {
        self.graceful_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Generates a time-sorted churn schedule for `nodes` up to `horizon`.
    ///
    /// Each node independently alternates up/down phases with exponentially
    /// distributed durations. Every departure is either a `Crash` or a
    /// `GracefulLeave`; each is followed by a `Recover` (if within horizon).
    pub fn generate(
        &self,
        nodes: &[NodeIndex],
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> Vec<ChurnEvent> {
        let mut events = Vec::new();
        for &node in nodes {
            let mut rng = rng.fork_indexed("churn", node.0 as u64);
            let mut t = SimTime::ZERO;
            loop {
                t += rng.exp_duration(self.mtbf);
                if t >= horizon {
                    break;
                }
                let kind = if rng.chance(self.graceful_fraction) {
                    ChurnKind::GracefulLeave
                } else {
                    ChurnKind::Crash
                };
                events.push(ChurnEvent { at: t, node, kind });
                t += rng.exp_duration(self.mttr);
                if t >= horizon {
                    break;
                }
                events.push(ChurnEvent { at: t, node, kind: ChurnKind::Recover });
            }
        }
        events.sort_by_key(|e| (e.at, e.node));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeIndex> {
        (0..n).map(NodeIndex).collect()
    }

    #[test]
    fn schedule_is_sorted_and_alternating() {
        let model = ChurnModel::new(SimDuration::from_secs(100), SimDuration::from_secs(10));
        let mut rng = SimRng::new(1);
        let events = model.generate(&nodes(5), SimTime::from_secs(3_600), &mut rng);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // Per node: departures and recoveries strictly alternate.
        for n in nodes(5) {
            let seq: Vec<ChurnKind> =
                events.iter().filter(|e| e.node == n).map(|e| e.kind).collect();
            for pair in seq.windows(2) {
                match pair[0] {
                    ChurnKind::Recover => {
                        assert_ne!(pair[1], ChurnKind::Recover);
                    }
                    _ => assert_eq!(pair[1], ChurnKind::Recover),
                }
            }
        }
    }

    #[test]
    fn graceful_fraction_respected_at_extremes() {
        let mut rng = SimRng::new(2);
        let all_graceful = ChurnModel::new(SimDuration::from_secs(50), SimDuration::from_secs(5))
            .with_graceful_fraction(1.0)
            .generate(&nodes(10), SimTime::from_secs(1_000), &mut rng);
        assert!(all_graceful.iter().all(|e| e.kind != ChurnKind::Crash));
        let none_graceful = ChurnModel::new(SimDuration::from_secs(50), SimDuration::from_secs(5))
            .generate(&nodes(10), SimTime::from_secs(1_000), &mut rng);
        assert!(none_graceful.iter().all(|e| e.kind != ChurnKind::GracefulLeave));
    }

    #[test]
    fn deterministic_given_seed() {
        let model = ChurnModel::new(SimDuration::from_secs(30), SimDuration::from_secs(3));
        let a = model.generate(&nodes(4), SimTime::from_secs(500), &mut SimRng::new(9));
        let b = model.generate(&nodes(4), SimTime::from_secs(500), &mut SimRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn no_events_past_horizon() {
        let model = ChurnModel::new(SimDuration::from_secs(10), SimDuration::from_secs(1));
        let horizon = SimTime::from_secs(100);
        let events = model.generate(&nodes(3), horizon, &mut SimRng::new(3));
        assert!(events.iter().all(|e| e.at < horizon));
    }

    #[test]
    fn longer_mtbf_means_fewer_failures() {
        let flaky = ChurnModel::new(SimDuration::from_secs(10), SimDuration::from_secs(1));
        let stable = ChurnModel::new(SimDuration::from_secs(1_000), SimDuration::from_secs(1));
        let h = SimTime::from_secs(2_000);
        let f = flaky.generate(&nodes(8), h, &mut SimRng::new(4)).len();
        let s = stable.generate(&nodes(8), h, &mut SimRng::new(4)).len();
        assert!(f > s, "flaky {f} stable {s}");
    }
}
