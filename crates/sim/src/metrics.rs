//! Counters and histograms for experiment measurement.
//!
//! Nodes record observations through [`crate::Outbox`]; harnesses read them
//! back through [`MetricsRegistry`] and render tables for EXPERIMENTS.md.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;

/// A set of recorded samples with percentile queries.
///
/// Quantile queries sort the samples once into a cached view that is
/// invalidated by [`record`](Histogram::record)/[`merge`](Histogram::merge);
/// harnesses that poll [`summary`](Histogram::summary) per slice pay the
/// sort only when new samples arrived, not per call. (The seed version
/// cloned and re-sorted the full sample vector on every call — quadratic
/// under per-slice polling.)
///
/// # Example
///
/// ```
/// use gloss_sim::Histogram;
/// let mut h = Histogram::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     h.record(v);
/// }
/// assert_eq!(h.summary().count, 4);
/// assert!((h.summary().mean - 2.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    /// Memoised ascending sample view + summary, cleared by the `&mut`
    /// mutation paths (`OnceLock` keeps the type `Sync`: queries stay
    /// `&self` and shareable across threads).
    cache: OnceLock<(Vec<f64>, Summary)>,
}

/// Summary statistics of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum (0 when empty).
    pub max: f64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample. Non-finite values are ignored.
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
            self.cache.take();
        }
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if !other.samples.is_empty() {
            self.samples.extend_from_slice(&other.samples);
            self.cache.take();
        }
    }

    /// The ascending sample view + summary, (re)built if samples arrived
    /// since the last query.
    fn cached(&self) -> &(Vec<f64>, Summary) {
        self.cache.get_or_init(|| {
            let mut sorted = self.samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
            let count = sorted.len();
            let mean = sorted.iter().sum::<f64>() / count as f64;
            let at = |q: f64| sorted[((q * (count - 1) as f64).round() as usize).min(count - 1)];
            let summary = Summary {
                count,
                mean,
                min: sorted[0],
                p50: at(0.5),
                p90: at(0.9),
                p99: at(0.99),
                max: sorted[count - 1],
            };
            (sorted, summary)
        })
    }

    /// The value at quantile `q` in `[0, 1]` (nearest-rank).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let (sorted, _) = self.cached();
        let rank = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank]
    }

    /// Computes summary statistics.
    ///
    /// All statistics (including the mean, summed over the ascending
    /// view) are functions of the sample *multiset*, so summaries are
    /// identical regardless of recording order — which is what lets the
    /// threaded simulator merge shard observations region-by-region.
    pub fn summary(&self) -> Summary {
        if self.samples.is_empty() {
            return Summary::default();
        }
        self.cached().1
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// A handle to a pre-registered hot counter: incrementing through the
/// handle is an array add, with no per-event name lookup or allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Named counters and histograms for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    /// Hot counters addressed by [`CounterId`]; the simulator's inner loop
    /// increments these once or more per message.
    fast: Vec<(String, f64)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or finds) a hot counter and returns its handle.
    /// Registration is idempotent per name.
    pub fn register_counter(&mut self, name: &str) -> CounterId {
        if let Some(pos) = self.fast.iter().position(|(n, _)| n == name) {
            return CounterId(pos);
        }
        // Fold in any value accumulated before registration.
        let seeded = self.counters.remove(name).unwrap_or(0.0);
        self.fast.push((name.to_string(), seeded));
        CounterId(self.fast.len() - 1)
    }

    /// Adds `by` to a pre-registered hot counter.
    pub fn add(&mut self, id: CounterId, by: f64) {
        self.fast[id.0].1 += by;
    }

    /// Adds `by` to the named counter (creating it at zero).
    pub fn inc(&mut self, name: &str, by: f64) {
        if let Some(slot) = self.fast.iter_mut().find(|(n, _)| n == name) {
            slot.1 += by;
        } else if let Some(v) = self.counters.get_mut(name) {
            *v += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Reads a counter; missing counters read as zero.
    pub fn counter(&self, name: &str) -> f64 {
        if let Some((_, v)) = self.fast.iter().find(|(n, _)| n == name) {
            return *v;
        }
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// Records a sample in the named histogram (creating it if needed).
    pub fn observe(&mut self, name: &str, value: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            self.histograms.entry(name.to_string()).or_default().record(value);
        }
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Summary of the named histogram (default summary when absent).
    pub fn summary(&self, name: &str) -> Summary {
        self.histograms.get(name).map(|h| h.summary()).unwrap_or_default()
    }

    /// All counter names, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        let mut names: Vec<&str> = self
            .counters
            .keys()
            .map(String::as_str)
            .chain(self.fast.iter().map(|(n, _)| n.as_str()))
            .collect();
        names.sort_unstable();
        names.into_iter()
    }

    /// All histogram names, sorted.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(|s| s.as_str())
    }

    /// Merges another registry into this one.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.inc(k, *v);
        }
        for (k, v) in &other.fast {
            self.inc(k, *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Renders all metrics as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut counters: BTreeMap<&str, f64> =
            self.counters.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        for (k, v) in &self.fast {
            *counters.entry(k.as_str()).or_insert(0.0) += v;
        }
        for (name, v) in counters {
            out.push_str(&format!("{name:<40} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("{name:<40} {}\n", h.summary()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_summary_is_zero() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn percentiles_on_known_data() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 51.0).abs() <= 1.0, "p50 {}", s.p50);
        assert!((s.p90 - 90.0).abs() <= 1.0, "p90 {}", s.p90);
        assert!((s.p99 - 99.0).abs() <= 1.0, "p99 {}", s.p99);
    }

    #[test]
    fn non_finite_samples_ignored() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(1.0);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn repeated_summaries_are_identical_and_track_invalidation() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 9.0, 3.0, 7.0] {
            h.record(v);
        }
        // Polling without new samples returns the exact same summary
        // (served from the cached sorted view).
        let first = h.summary();
        for _ in 0..100 {
            assert_eq!(h.summary(), first);
            assert_eq!(h.quantile(0.5), first.p50);
        }
        // Interleaved records invalidate the cache: every summary must
        // match a freshly-built histogram over the same samples.
        for v in [2.0, 8.0, 0.5, 4.0] {
            h.record(v);
            let mut fresh = Histogram::new();
            for &s in h.samples() {
                fresh.record(s);
            }
            assert_eq!(h.summary(), fresh.summary());
            assert_eq!(h.quantile(0.9), fresh.quantile(0.9));
        }
        // Merge invalidates too.
        let mut other = Histogram::new();
        other.record(100.0);
        h.merge(&other);
        assert_eq!(h.summary().max, 100.0);
    }

    #[test]
    fn summary_is_recording_order_independent() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let vals = [0.1, 2.7, 1e-3, 55.0, 3.3, 0.2, 8.8];
        for &v in &vals {
            a.record(v);
        }
        for &v in vals.iter().rev() {
            b.record(v);
        }
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Histogram::new();
        a.record(1.0);
        let mut b = Histogram::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.summary().mean - 2.0).abs() < 1e-9);
    }

    #[test]
    fn registry_counters() {
        let mut r = MetricsRegistry::new();
        r.inc("x", 2.0);
        r.inc("x", 3.0);
        assert_eq!(r.counter("x"), 5.0);
        assert_eq!(r.counter("missing"), 0.0);
    }

    #[test]
    fn registered_counters_share_the_namespace() {
        let mut r = MetricsRegistry::new();
        // Values accumulated before registration carry over.
        r.inc("hot", 2.0);
        let id = r.register_counter("hot");
        r.add(id, 3.0);
        // And the slow path keeps hitting the same cell afterwards.
        r.inc("hot", 1.0);
        assert_eq!(r.counter("hot"), 6.0);
        // Registration is idempotent.
        assert_eq!(r.register_counter("hot"), id);
        assert!(r.counter_names().any(|n| n == "hot"));
        assert!(r.render().contains("hot"));
    }

    #[test]
    fn registry_merge() {
        let mut a = MetricsRegistry::new();
        a.inc("c", 1.0);
        a.observe("h", 1.0);
        let mut b = MetricsRegistry::new();
        b.inc("c", 2.0);
        b.observe("h", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3.0);
        assert_eq!(a.summary("h").count, 2);
    }

    #[test]
    fn render_contains_names() {
        let mut r = MetricsRegistry::new();
        r.inc("alpha", 1.0);
        r.observe("beta", 2.0);
        let s = r.render();
        assert!(s.contains("alpha"));
        assert!(s.contains("beta"));
    }
}
