//! Simulated time: instants and durations with microsecond resolution.
//!
//! [`SimTime`] is an instant measured from the start of a simulation run;
//! [`SimDuration`] is a span between instants. Both are thin newtypes over
//! `u64` microseconds ([C-NEWTYPE]), so arithmetic is exact and ordering is
//! total — essential for a deterministic event queue.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, in microseconds since the run started.
///
/// # Example
///
/// ```
/// use gloss_sim::{SimTime, SimDuration};
/// let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(t.as_micros(), 2_500_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Example
///
/// ```
/// use gloss_sim::SimDuration;
/// assert_eq!(SimDuration::from_millis(3) * 4, SimDuration::from_millis(12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any the simulator will reach.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the start of the run.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the start of the run.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the start of the run.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the start of the run.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the start of the run, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e6).round() as u64)
    }

    /// The duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a float factor, clamping negatives to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us >= 1_000_000 {
            write!(f, "{:.3}s", us as f64 / 1e6)
        } else if us >= 1_000 {
            write!(f, "{:.3}ms", us as f64 / 1e3)
        } else {
            write!(f, "{us}us")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(42).as_micros(), 42);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn instant_arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(250);
        assert_eq!(t.as_millis(), 1_250);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(250));
        // Subtraction saturates rather than underflowing.
        assert_eq!(SimTime::ZERO - SimTime::from_secs(1), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d + d, SimDuration::from_millis(20));
        assert_eq!(d - SimDuration::from_millis(4), SimDuration::from_millis(6));
        assert_eq!(d - SimDuration::from_millis(40), SimDuration::ZERO);
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimDuration::from_millis(10).mul_f64(2.5).as_millis(), 25);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(3);
        assert_eq!(late.since(early), SimDuration::from_secs(2));
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_micros(7_500).to_string(), "7.500ms");
        assert_eq!(SimDuration::from_millis(2_500).to_string(), "2.500s");
        assert_eq!(SimTime::from_millis(1).to_string(), "t+1.000ms");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [SimTime::from_secs(3), SimTime::ZERO, SimTime::from_millis(10)];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs(3));
    }
}
