//! Seeded randomness with deterministic forking.
//!
//! All randomness in a simulation flows from one root [`SimRng`]. Components
//! obtain independent streams with [`SimRng::fork`], keyed by a label, so
//! adding a new consumer of randomness does not perturb existing streams —
//! a requirement for reproducible experiments.

use crate::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random number generator for simulations.
///
/// # Example
///
/// ```
/// use gloss_sim::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.range(0, 1000), b.range(0, 1000));
/// // Forks with the same label replay the same stream…
/// let mut fa = a.fork("overlay");
/// let mut fb = b.fork("overlay");
/// assert_eq!(fa.range(0, 1000), fb.range(0, 1000));
/// // …and forks with different labels are independent streams.
/// let mut fc = a.fork("store");
/// let overlay: Vec<u64> = (0..8).map(|_| fa.range(0, 1 << 30)).collect();
/// let store: Vec<u64> = (0..8).map(|_| fc.range(0, 1 << 30)).collect();
/// assert_ne!(overlay, store);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

/// FNV-1a 64-bit hash, used to derive fork seeds from labels.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

impl SimRng {
    /// Creates a generator from a root seed.
    pub fn new(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed), seed }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator keyed by `label`.
    ///
    /// Forking with the same label from generators with the same seed yields
    /// identical streams; distinct labels yield (statistically) independent
    /// streams.
    pub fn fork(&self, label: &str) -> SimRng {
        SimRng::new(self.seed ^ fnv1a(label.as_bytes()))
    }

    /// Derives an independent generator keyed by a label and an index, for
    /// per-node streams.
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        SimRng::new(self.seed ^ fnv1a(label.as_bytes()) ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// A uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// A uniform `usize` index in `[0, len)`, for slice indexing.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.inner.gen_range(0..len)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn float_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// A sample from the exponential distribution with the given mean.
    ///
    /// Used for inter-arrival times and failure scheduling.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.unit();
        -mean * (1.0 - u).ln()
    }

    /// An exponentially distributed duration with the given mean.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exponential(mean.as_secs_f64()))
    }

    /// A normally distributed sample (Box–Muller), with `mean` and `std_dev`.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.unit().max(1e-12);
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// Returns `None` when `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.index(items.len());
            Some(&items[i])
        }
    }

    /// Shuffles `items` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// A random 128-bit value, for identifier generation.
    pub fn u128(&mut self) -> u128 {
        ((self.inner.gen::<u64>() as u128) << 64) | self.inner.gen::<u64>() as u128
    }
}

/// A Zipf-distributed sampler over ranks `0..n`.
///
/// Access patterns to contextual data are highly skewed (popular places,
/// popular users); the storage experiments (C3, C5) use Zipf workloads.
///
/// # Example
///
/// ```
/// use gloss_sim::{SimRng, Zipf};
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = SimRng::new(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over zero ranks");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        Zipf { cdf: weights }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has no ranks (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(99);
        let mut b = SimRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.range(0, 1_000_000), b.range(0, 1_000_000));
        }
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let root = SimRng::new(5);
        let mut f1 = root.fork("alpha");
        let mut f2 = root.fork("alpha");
        let mut g = root.fork("beta");
        let s1: Vec<u64> = (0..10).map(|_| f1.range(0, 1 << 30)).collect();
        let s2: Vec<u64> = (0..10).map(|_| f2.range(0, 1 << 30)).collect();
        let s3: Vec<u64> = (0..10).map(|_| g.range(0, 1 << 30)).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn indexed_forks_differ_per_index() {
        let root = SimRng::new(5);
        let mut a = root.fork_indexed("node", 0);
        let mut b = root.fork_indexed("node", 1);
        let sa: Vec<u64> = (0..8).map(|_| a.range(0, 1 << 20)).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.range(0, 1 << 20)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::new(2);
        let n = 20_000;
        let mean = 5.0;
        let total: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let sample_mean = total / n as f64;
        assert!((sample_mean - mean).abs() < 0.2, "sample mean {sample_mean}");
    }

    #[test]
    fn normal_mean_is_plausible() {
        let mut rng = SimRng::new(3);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.normal(10.0, 2.0)).sum();
        let sample_mean = total / n as f64;
        assert!((sample_mean - 10.0).abs() < 0.1, "sample mean {sample_mean}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SimRng::new(4);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(rng.choose(&items).unwrap()));
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, orig);
        assert_ne!(v, orig, "50 elements should not shuffle to identity");
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let zipf = Zipf::new(1000, 1.0);
        let mut rng = SimRng::new(6);
        let mut low = 0;
        let n = 10_000;
        for _ in 0..n {
            if zipf.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // With s=1.0 over 1000 ranks, the top 10 ranks carry ~39% of mass.
        assert!(low > n / 4, "only {low} of {n} samples in top ranks");
    }

    #[test]
    fn zipf_sample_in_range() {
        let zipf = Zipf::new(3, 2.0);
        let mut rng = SimRng::new(7);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn exp_duration_roundtrip() {
        let mut rng = SimRng::new(8);
        let d = rng.exp_duration(SimDuration::from_secs(10));
        // Just sanity: non-negative and finite.
        assert!(d.as_secs_f64() >= 0.0);
    }
}
