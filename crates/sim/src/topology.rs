//! Physical topology: nodes with geography, regions, capacities, and a
//! latency model derived from great-circle distance.
//!
//! The paper's infrastructure spans "embedded sensors, mobile devices,
//! servers and the networks that link them" across the wide area. We model
//! a set of physical nodes placed on the globe, grouped into named regions,
//! with pairwise message latency = base cost + propagation proportional to
//! distance + multiplicative jitter.

use crate::rng::SimRng;
use crate::time::SimDuration;
use std::fmt;

/// Index of a physical node in a [`Topology`].
///
/// This identifies a *machine* in the simulation; overlay identifiers and
/// event-layer client identities are separate concepts layered above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeIndex(pub u32);

impl fmt::Display for NodeIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl NodeIndex {
    /// The index as a `usize`, for vector indexing.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// A point on the globe, in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point from latitude and longitude in degrees.
    pub fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    ///
    /// # Example
    ///
    /// ```
    /// use gloss_sim::GeoPoint;
    /// let st_andrews = GeoPoint::new(56.3398, -2.7967);
    /// let glasgow = GeoPoint::new(55.8617, -4.2583);
    /// let d = st_andrews.distance_km(glasgow);
    /// assert!(d > 95.0 && d < 115.0);
    /// ```
    pub fn distance_km(self, other: GeoPoint) -> f64 {
        const EARTH_RADIUS_KM: f64 = 6371.0;
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat, self.lon)
    }
}

/// Static description of one physical node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInfo {
    /// The node's index in the topology.
    pub index: NodeIndex,
    /// Where the node is.
    pub geo: GeoPoint,
    /// Administrative/geographic region name (used by placement constraints).
    pub region: String,
    /// Relative compute capacity (1.0 = baseline server).
    pub cpu: f64,
    /// Storage capacity in bytes available to the storage layer.
    pub storage: u64,
}

/// Latency model: `base + per_km * distance`, times `1 ± jitter`.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Fixed per-message cost (protocol stacks, queueing).
    pub base: SimDuration,
    /// Propagation cost per kilometre of great-circle distance.
    pub per_km_micros: f64,
    /// Multiplicative jitter fraction in `[0, 1)`; each delivery is scaled
    /// by a uniform factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Latency for a node sending to itself (loopback).
    pub local: SimDuration,
}

impl Default for LatencyModel {
    /// A wide-area default: 1 ms base, ~5 µs/km (light in fibre ≈ 5 µs/km),
    /// 10% jitter, 50 µs loopback.
    fn default() -> Self {
        LatencyModel {
            base: SimDuration::from_millis(1),
            per_km_micros: 5.0,
            jitter: 0.1,
            local: SimDuration::from_micros(50),
        }
    }
}

impl LatencyModel {
    /// A LAN-like model for localised experiments.
    pub fn lan() -> Self {
        LatencyModel {
            base: SimDuration::from_micros(200),
            per_km_micros: 0.0,
            jitter: 0.05,
            local: SimDuration::from_micros(20),
        }
    }

    /// Latency of one message from `a` to `b`, sampling jitter from `rng`.
    pub fn sample(&self, a: &NodeInfo, b: &NodeInfo, rng: &mut SimRng) -> SimDuration {
        if a.index == b.index {
            return self.local;
        }
        let km = a.geo.distance_km(b.geo);
        let nominal = self.base.as_secs_f64() + km * self.per_km_micros / 1e6;
        let factor = if self.jitter > 0.0 {
            rng.float_range(1.0 - self.jitter, 1.0 + self.jitter)
        } else {
            1.0
        };
        SimDuration::from_secs_f64(nominal * factor)
    }

    /// Nominal (jitter-free) latency from `a` to `b`.
    pub fn nominal(&self, a: &NodeInfo, b: &NodeInfo) -> SimDuration {
        if a.index == b.index {
            return self.local;
        }
        let km = a.geo.distance_km(b.geo);
        SimDuration::from_secs_f64(self.base.as_secs_f64() + km * self.per_km_micros / 1e6)
    }
}

/// The set of physical nodes and the latency model between them.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeInfo>,
    latency: LatencyModel,
}

/// Well-known region centres used by the random topology generators.
const REGION_CENTRES: &[(&str, f64, f64)] = &[
    ("scotland", 56.3, -3.0),
    ("england", 52.5, -1.5),
    ("europe", 48.8, 2.3),
    ("us-east", 40.7, -74.0),
    ("us-west", 37.7, -122.4),
    ("brazil", -22.9, -43.2),
    ("australia", -33.9, 151.2),
    ("asia", 35.7, 139.7),
];

impl Topology {
    /// Builds a topology from explicit node descriptions.
    ///
    /// # Panics
    ///
    /// Panics if node indices are not `0..n` in order.
    pub fn from_nodes(nodes: Vec<NodeInfo>, latency: LatencyModel) -> Self {
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.index.as_usize(), i, "node indices must be dense and ordered");
        }
        Topology { nodes, latency }
    }

    /// Generates `n` nodes scattered around the given region names.
    ///
    /// Unknown region names are placed at pseudo-random centres. Nodes get
    /// capacities drawn from a narrow distribution around the baseline.
    pub fn random(n: usize, regions: &[&str], seed: u64) -> Self {
        let mut rng = SimRng::new(seed).fork("topology");
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let region = regions[i % regions.len().max(1)];
            let centre = REGION_CENTRES
                .iter()
                .find(|(name, _, _)| *name == region)
                .map(|&(_, lat, lon)| GeoPoint::new(lat, lon))
                .unwrap_or_else(|| {
                    GeoPoint::new(rng.float_range(-60.0, 60.0), rng.float_range(-180.0, 180.0))
                });
            let geo = GeoPoint::new(
                centre.lat + rng.float_range(-1.5, 1.5),
                centre.lon + rng.float_range(-1.5, 1.5),
            );
            nodes.push(NodeInfo {
                index: NodeIndex(i as u32),
                geo,
                region: region.to_string(),
                cpu: rng.float_range(0.5, 2.0),
                storage: rng.range(64, 256) * 1024 * 1024,
            });
        }
        Topology { nodes, latency: LatencyModel::default() }
    }

    /// Generates a single-region LAN of `n` identical nodes.
    pub fn lan(n: usize, seed: u64) -> Self {
        let mut t = Topology::random(n, &["scotland"], seed);
        t.latency = LatencyModel::lan();
        t
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node(&self, index: NodeIndex) -> &NodeInfo {
        &self.nodes[index.as_usize()]
    }

    /// Iterates over all nodes.
    pub fn iter(&self) -> impl Iterator<Item = &NodeInfo> {
        self.nodes.iter()
    }

    /// All node indices.
    pub fn indices(&self) -> impl Iterator<Item = NodeIndex> + '_ {
        (0..self.nodes.len() as u32).map(NodeIndex)
    }

    /// Nodes in a given region.
    pub fn in_region<'a>(&'a self, region: &'a str) -> impl Iterator<Item = &'a NodeInfo> {
        self.nodes.iter().filter(move |n| n.region == region)
    }

    /// The latency model.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Replaces the latency model.
    pub fn set_latency_model(&mut self, latency: LatencyModel) {
        self.latency = latency;
    }

    /// Samples the latency of one message from `a` to `b`.
    pub fn sample_latency(&self, a: NodeIndex, b: NodeIndex, rng: &mut SimRng) -> SimDuration {
        self.latency.sample(self.node(a), self.node(b), rng)
    }

    /// Jitter-free latency from `a` to `b`.
    pub fn nominal_latency(&self, a: NodeIndex, b: NodeIndex) -> SimDuration {
        self.latency.nominal(self.node(a), self.node(b))
    }

    /// The geographically nearest node to `point`.
    ///
    /// Returns `None` on an empty topology.
    pub fn nearest(&self, point: GeoPoint) -> Option<NodeIndex> {
        self.nodes
            .iter()
            .min_by(|a, b| {
                a.geo
                    .distance_km(point)
                    .partial_cmp(&b.geo.distance_km(point))
                    .expect("distances are finite")
            })
            .map(|n| n.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(i: u32, lat: f64, lon: f64) -> NodeInfo {
        NodeInfo {
            index: NodeIndex(i),
            geo: GeoPoint::new(lat, lon),
            region: "scotland".into(),
            cpu: 1.0,
            storage: 1 << 20,
        }
    }

    #[test]
    fn haversine_zero_distance() {
        let p = GeoPoint::new(10.0, 20.0);
        assert!(p.distance_km(p) < 1e-9);
    }

    #[test]
    fn haversine_known_distance() {
        // London to New York is roughly 5570 km.
        let london = GeoPoint::new(51.5074, -0.1278);
        let nyc = GeoPoint::new(40.7128, -74.0060);
        let d = london.distance_km(nyc);
        assert!((d - 5570.0).abs() < 60.0, "distance {d}");
    }

    #[test]
    fn latency_scales_with_distance() {
        let m = LatencyModel { jitter: 0.0, ..LatencyModel::default() };
        let a = info(0, 56.0, -3.0);
        let near = info(1, 56.1, -3.0);
        let far = info(2, -33.9, 151.2);
        assert!(m.nominal(&a, &far) > m.nominal(&a, &near));
        assert_eq!(m.nominal(&a, &a), m.local);
    }

    #[test]
    fn latency_jitter_bounds() {
        let m = LatencyModel::default();
        let a = info(0, 56.0, -3.0);
        let b = info(1, 40.7, -74.0);
        let nominal = m.nominal(&a, &b).as_secs_f64();
        let mut rng = SimRng::new(3);
        for _ in 0..200 {
            let s = m.sample(&a, &b, &mut rng).as_secs_f64();
            assert!(s >= nominal * 0.89 && s <= nominal * 1.11, "sample {s} nominal {nominal}");
        }
    }

    #[test]
    fn random_topology_properties() {
        let t = Topology::random(20, &["scotland", "australia"], 1);
        assert_eq!(t.len(), 20);
        assert_eq!(t.in_region("scotland").count(), 10);
        assert_eq!(t.in_region("australia").count(), 10);
        // Scotland nodes should be near the Scotland centre.
        for n in t.in_region("scotland") {
            assert!(n.geo.distance_km(GeoPoint::new(56.3, -3.0)) < 300.0);
        }
    }

    #[test]
    fn random_topology_is_deterministic() {
        let t1 = Topology::random(10, &["europe"], 42);
        let t2 = Topology::random(10, &["europe"], 42);
        for (a, b) in t1.iter().zip(t2.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn nearest_finds_closest() {
        let t = Topology::random(30, &["scotland", "brazil"], 2);
        let idx = t.nearest(GeoPoint::new(-22.9, -43.2)).unwrap();
        assert_eq!(t.node(idx).region, "brazil");
        assert!(Topology::from_nodes(vec![], LatencyModel::default())
            .nearest(GeoPoint::new(0.0, 0.0))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn from_nodes_validates_indices() {
        let _ = Topology::from_nodes(vec![info(1, 0.0, 0.0)], LatencyModel::default());
    }

    #[test]
    fn lan_topology_has_flat_latency() {
        let t = Topology::lan(4, 9);
        let l01 = t.nominal_latency(NodeIndex(0), NodeIndex(1));
        let l02 = t.nominal_latency(NodeIndex(0), NodeIndex(2));
        assert_eq!(l01, l02);
    }
}
