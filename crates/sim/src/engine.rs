//! The discrete-event engine: a [`World`] drives a set of sans-IO [`Node`]
//! state machines, owning time, message latency, loss, and failures.
//!
//! Nodes never perform IO or read clocks; they receive [`Input`]s and write
//! sends, timers, and measurements into an [`Outbox`]. This makes every
//! protocol in the workspace unit-testable without a simulator and keeps
//! whole-system runs deterministic.
//!
//! # Scheduler architecture
//!
//! The event plane is sharded and bucketed for 1k–4k-node workloads:
//!
//! - **Regions.** Nodes partition into regions (derived from the topology's
//!   region names); each region owns its own calendar queue. Cross-region
//!   sends travel through a per-region *boundary exchange* that is flushed
//!   when the world advances to the next lockstep time slice. The slice
//!   width is a conservative lookahead (the latency model's cross-node
//!   floor), so a message sent in one slice can never be due inside the
//!   same slice — the seam that later lets regions run on threads.
//! - **Calendar queues.** Each region's queue is a timer-wheel of
//!   fixed-width buckets over the near future plus an overflow heap for
//!   far-future entries (long timers), replacing one global `BinaryHeap`.
//!   Pushes and pops into the wheel are O(1) amortised.
//! - **Canonical event keys.** Every entry carries an [`EvKey`] that is a
//!   pure function of *what* the event is (link + per-link sequence, node +
//!   per-node timer sequence, harness call order) rather than of global
//!   push order. Processing events in key order therefore yields the same
//!   schedule at any region count and any bucket width: same seed, same
//!   trace. The `engine_equivalence` integration test checks this against
//!   a single-heap transcription of the seed scheduler.
//! - **Per-link state.** A flat FNV map per sender caches the jitter-free
//!   latency of each link (the haversine distance is computed once, not per
//!   message), carries the link's deterministic jitter/loss stream, and
//!   enforces FIFO ordering (links model TCP/web-service connections).
//!   Link state is purged when either endpoint crashes, so churn-heavy
//!   runs do not grow memory without bound.
//! - **Batched delivery.** Messages sent over one link by one activation
//!   share a sampled latency and land at the same instant; all messages
//!   arriving at one node at the same instant are handed over as a single
//!   [`Node::on_batch`] call (default: per-message fallback), letting
//!   broker fan-out and matchlet dispatch amortise per-event overhead.

use crate::hash::{splitmix64, splitmix_unit, FnvHashMap};
use crate::metrics::{CounterId, MetricsRegistry};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeIndex, Topology};
use crate::trace::Tracer;
use std::borrow::Cow;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// An input delivered to a node by the engine.
#[derive(Debug, Clone)]
pub enum Input<M> {
    /// The node is starting (at world start, or after recovering from a
    /// crash). Crash recovery delivers `Start` again; nodes must treat it
    /// as a cold boot and reschedule their timers.
    Start,
    /// A message from another node (or injected externally).
    Msg {
        /// The sending node.
        from: NodeIndex,
        /// The message payload.
        msg: M,
    },
    /// A timer previously requested via [`Outbox::timer`] has fired.
    ///
    /// Timers cannot be cancelled; nodes should ignore stale tags.
    Timer {
        /// The tag passed to [`Outbox::timer`].
        tag: u64,
    },
}

/// Collects the effects of one node activation: sends, timers, trace and
/// metric observations.
///
/// Metric and trace names are `Cow<'static, str>`: the common case — a
/// string literal — is recorded without allocating, keeping per-event
/// accounting off the allocator in the simulator's hot loop.
#[derive(Debug)]
pub struct Outbox<M> {
    pub(crate) sends: Vec<(NodeIndex, M, SimDuration)>,
    pub(crate) timers: Vec<(SimDuration, u64)>,
    pub(crate) counts: Vec<(Cow<'static, str>, f64)>,
    pub(crate) observations: Vec<(Cow<'static, str>, f64)>,
    pub(crate) traces: Vec<(Cow<'static, str>, String)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox {
            sends: Vec::new(),
            timers: Vec::new(),
            counts: Vec::new(),
            observations: Vec::new(),
            traces: Vec::new(),
        }
    }
}

impl<M> Outbox<M> {
    /// Creates an empty outbox. Mostly useful in unit tests that drive a
    /// state machine without a [`World`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Sends `msg` to `to`; the engine adds network latency.
    pub fn send(&mut self, to: NodeIndex, msg: M) {
        self.sends.push((to, msg, SimDuration::ZERO));
    }

    /// Sends `msg` to `to` after an extra local processing delay, on top of
    /// network latency.
    pub fn send_after(&mut self, to: NodeIndex, msg: M, delay: SimDuration) {
        self.sends.push((to, msg, delay));
    }

    /// Requests a timer that fires after `delay` with the given `tag`.
    pub fn timer(&mut self, delay: SimDuration, tag: u64) {
        self.timers.push((delay, tag));
    }

    /// Increments the named world counter by `by`.
    pub fn count(&mut self, name: impl Into<Cow<'static, str>>, by: f64) {
        self.counts.push((name.into(), by));
    }

    /// Records a sample in the named world histogram.
    pub fn observe(&mut self, name: impl Into<Cow<'static, str>>, value: f64) {
        self.observations.push((name.into(), value));
    }

    /// Records a trace event (kept only when the world's tracer is enabled).
    pub fn trace(&mut self, kind: impl Into<Cow<'static, str>>, detail: impl Into<String>) {
        self.traces.push((kind.into(), detail.into()));
    }

    /// The messages queued so far, for tests that drive state machines
    /// directly: `(destination, message, extra delay)`.
    pub fn sends(&self) -> &[(NodeIndex, M, SimDuration)] {
        &self.sends
    }

    /// The timers requested so far: `(delay, tag)`.
    pub fn timers(&self) -> &[(SimDuration, u64)] {
        &self.timers
    }

    /// The counter increments recorded so far.
    pub fn counts(&self) -> &[(Cow<'static, str>, f64)] {
        &self.counts
    }

    /// The histogram observations recorded so far.
    pub fn observations(&self) -> &[(Cow<'static, str>, f64)] {
        &self.observations
    }

    /// The trace events recorded so far.
    pub fn traces(&self) -> &[(Cow<'static, str>, String)] {
        &self.traces
    }

    /// Removes and returns all queued sends.
    pub fn take_sends(&mut self) -> Vec<(NodeIndex, M, SimDuration)> {
        std::mem::take(&mut self.sends)
    }

    /// Removes and returns all queued timers.
    pub fn take_timers(&mut self) -> Vec<(SimDuration, u64)> {
        std::mem::take(&mut self.timers)
    }

    /// Moves every effect into `dest`, converting each message with `f`.
    ///
    /// This lets a node embed an inner state machine with its own message
    /// type (e.g. the storage layer wrapping the overlay): the inner
    /// machine writes to its own outbox, which is then transferred into
    /// the enclosing node's outbox.
    pub fn transfer_into<T>(self, dest: &mut Outbox<T>, f: impl Fn(M) -> T) {
        for (to, msg, delay) in self.sends {
            dest.sends.push((to, f(msg), delay));
        }
        dest.timers.extend(self.timers);
        dest.counts.extend(self.counts);
        dest.observations.extend(self.observations);
        dest.traces.extend(self.traces);
    }
}

/// All messages arriving at one node at one instant, drained in canonical
/// delivery order (per-link FIFO order is preserved).
///
/// Handed to [`Node::on_batch`]; any messages left undrained when the
/// handler returns are discarded.
#[derive(Debug)]
pub struct Batch<'a, M> {
    inner: std::vec::Drain<'a, (NodeIndex, M)>,
}

impl<M> Iterator for Batch<'_, M> {
    type Item = (NodeIndex, M);

    fn next(&mut self) -> Option<(NodeIndex, M)> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<M> ExactSizeIterator for Batch<'_, M> {}

/// A sans-IO node state machine driven by a [`World`].
pub trait Node {
    /// The message type exchanged between nodes of this world.
    type Msg;

    /// Handles one input, writing any effects to `out`.
    fn handle(&mut self, now: SimTime, input: Input<Self::Msg>, out: &mut Outbox<Self::Msg>);

    /// Handles every message arriving at this node at the same instant.
    ///
    /// The engine groups same-instant deliveries (e.g. a broker's fan-out
    /// flushed over one connection) into one call so implementations can
    /// amortise per-event overhead. The default forwards each message to
    /// [`handle`](Node::handle), so state machines that don't care about
    /// batching need not implement it.
    fn on_batch(
        &mut self,
        now: SimTime,
        batch: &mut Batch<'_, Self::Msg>,
        out: &mut Outbox<Self::Msg>,
    ) {
        for (from, msg) in batch {
            self.handle(now, Input::Msg { from, msg }, out);
        }
    }
}

/// Event classes, ordered at equal timestamps: control (crash/recover)
/// first, then timers, then link deliveries, then harness injections.
const CLASS_CTRL: u8 = 0;
const CLASS_TIMER: u8 = 1;
const CLASS_LINK: u8 = 2;
const CLASS_HARNESS: u8 = 3;

/// Canonical event key: a total order over pending events that is a pure
/// function of what the event *is*, not of scheduler internals.
///
/// - control events: `a` = harness call sequence;
/// - timers: `a` = node, `b` = that node's timer sequence;
/// - link deliveries: `a` = `(to << 32) | from` (destination-major, so
///   same-instant deliveries to one node are contiguous and batch), `b` =
///   the link's message sequence;
/// - harness injections: `a` = harness call sequence.
///
/// Because each component is derived from deterministic per-node /
/// per-link / per-harness-call counters, the induced order — and therefore
/// the trace — is identical at any region count and bucket width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EvKey {
    at: SimTime,
    class: u8,
    a: u64,
    b: u64,
}

#[derive(Debug)]
enum EntryKind<M> {
    Deliver { from: NodeIndex, to: NodeIndex, msg: M },
    Timer { node: NodeIndex, tag: u64 },
}

#[derive(Debug)]
struct Entry<M> {
    key: EvKey,
    kind: EntryKind<M>,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A crash or recovery scheduled by the harness. Held outside the region
/// queues: control events change global state (aliveness, link purges), so
/// they act as barriers between lockstep slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CtrlEntry {
    key: EvKey,
    node: NodeIndex,
    recover: bool,
}

/// A calendar queue: a timer-wheel of `width`-microsecond buckets covering
/// the near future, an `active` heap ordering the current bucket, and an
/// overflow heap for entries beyond the wheel horizon (long timers).
///
/// Pop order is exactly ascending [`EvKey`] order: the wheel partitions by
/// time, the active heap orders within the current bucket, and same-`at`
/// entries always land in the same bucket.
#[derive(Debug)]
struct CalendarQueue<M> {
    /// The current bucket's entries, sorted descending by key (pop from
    /// the end); a sorted vec beats a heap here because one bucket holds
    /// few entries and stragglers are rare.
    active: Vec<Entry<M>>,
    buckets: Vec<Vec<Entry<M>>>,
    /// log2 of the bucket width in µs (widths round up to a power of two
    /// so the per-push bucket math is a shift, not a division).
    shift: u32,
    /// `buckets.len() - 1`; the count is a power of two.
    mask: usize,
    /// Start time (µs) of the bucket at `cursor`; a multiple of the width.
    wheel_start: u64,
    cursor: usize,
    in_buckets: usize,
    overflow: BinaryHeap<Reverse<Entry<M>>>,
    len: usize,
}

impl<M> CalendarQueue<M> {
    fn new(width: u64, buckets: usize) -> Self {
        let shift = width.max(1).next_power_of_two().trailing_zeros();
        let buckets = buckets.max(2).next_power_of_two();
        CalendarQueue {
            active: Vec::new(),
            buckets: (0..buckets).map(|_| Vec::new()).collect(),
            shift,
            mask: buckets - 1,
            wheel_start: 0,
            cursor: 0,
            in_buckets: 0,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    #[inline]
    fn width(&self) -> u64 {
        1 << self.shift
    }

    fn len(&self) -> usize {
        self.len
    }

    fn horizon(&self) -> u64 {
        self.wheel_start.saturating_add(self.width() * self.buckets.len() as u64)
    }

    fn push(&mut self, e: Entry<M>) {
        let t = e.key.at.as_micros();
        self.len += 1;
        if t < self.wheel_start + self.width() {
            self.insert_active(e);
        } else if t < self.horizon() {
            let idx = (t >> self.shift) as usize & self.mask;
            self.buckets[idx].push(e);
            self.in_buckets += 1;
        } else {
            self.overflow.push(Reverse(e));
        }
    }

    /// Inserts a straggler into the sorted active vec (descending order).
    fn insert_active(&mut self, e: Entry<M>) {
        let pos = self.active.partition_point(|x| x.key > e.key);
        self.active.insert(pos, e);
    }

    /// Advances the wheel until the queue's minimum entry (if any) sits on
    /// top of `active`.
    fn settle(&mut self) {
        while self.active.is_empty() && self.len > 0 {
            if self.in_buckets == 0 {
                // Nothing in the wheel: jump straight to the earliest
                // overflow entry instead of sweeping empty buckets.
                let t = self.overflow.peek().expect("len > 0").0.key.at.as_micros();
                self.wheel_start = t & !(self.width() - 1);
            } else {
                self.wheel_start += self.width();
            }
            self.cursor = (self.wheel_start >> self.shift) as usize & self.mask;
            self.refill_from_overflow();
            // Drain in place: bucket capacity persists across wheel laps.
            let (buckets, active) = (&mut self.buckets, &mut self.active);
            let spilled = &mut buckets[self.cursor];
            self.in_buckets -= spilled.len();
            active.append(spilled);
            active.sort_unstable_by_key(|e| Reverse(e.key));
        }
    }

    /// Moves overflow entries that the advancing horizon now covers into
    /// their wheel bucket (or straight into `active`).
    fn refill_from_overflow(&mut self) {
        let horizon = self.horizon();
        while let Some(Reverse(e)) = self.overflow.peek() {
            if e.key.at.as_micros() >= horizon {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked");
            let t = e.key.at.as_micros();
            if t < self.wheel_start + self.width() {
                self.insert_active(e);
            } else {
                let idx = (t >> self.shift) as usize & self.mask;
                self.buckets[idx].push(e);
                self.in_buckets += 1;
            }
        }
    }

    fn peek(&mut self) -> Option<&Entry<M>> {
        self.settle();
        self.active.last()
    }

    fn pop(&mut self) -> Option<Entry<M>> {
        self.settle();
        let e = self.active.pop()?;
        self.len -= 1;
        Some(e)
    }
}

/// Per-link connection state: FIFO ordering, the cached jitter-free
/// latency, and the link's private jitter/loss randomness stream.
///
/// Keyed by destination in a per-sender FNV map, and purged when either
/// endpoint crashes (connections reset; memory is reclaimed).
#[derive(Debug, Clone, Copy)]
struct LinkState {
    /// Scheduled delivery time (µs) of the last message on this link.
    last_at: u64,
    /// Cached jitter-free latency (µs); the haversine runs once per link.
    nominal: u64,
    /// The latency (µs) sampled for the current activation's flush.
    jittered: u64,
    /// Activation id that sampled `jittered`; messages flushed by one
    /// activation over one link share a latency (one TCP segment train).
    last_apply: u64,
    /// splitmix64 state: an order-independent per-link randomness stream.
    rng: u64,
    /// Messages scheduled on this link (canonical tie-break component).
    seq: u64,
}

/// The per-link randomness stream seed: a pure function of the world seed
/// and the link endpoints, so a link draws the same jitter/loss sequence
/// regardless of how activity on other links interleaves. Public so
/// scheduler-equivalence tests can transcribe the engine's sampling.
pub fn link_stream_seed(world_seed: u64, from: NodeIndex, to: NodeIndex) -> u64 {
    let pack = ((from.0 as u64) << 32) | to.0 as u64;
    let mut s = world_seed ^ pack.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(&mut s)
}

/// Pre-registered hot-counter handles (array adds, not map lookups).
#[derive(Debug, Clone, Copy)]
struct EngineCounters {
    sent: CounterId,
    delivered: CounterId,
    dropped_dead: CounterId,
    lost: CounterId,
    bad_destination: CounterId,
    batches: CounterId,
    batched: CounterId,
}

#[derive(Debug, Clone, Copy)]
enum NextSrc {
    Ctrl,
    Region(usize),
}

/// The simulation driver: a topology, one state machine per node, and
/// per-region bucketed event queues merged in canonical key order.
///
/// See the [crate docs](crate) for a complete example and the
/// [module docs](self) for the scheduler architecture.
#[derive(Debug)]
pub struct World<N: Node> {
    topology: Topology,
    nodes: Vec<N>,
    alive: Vec<bool>,
    /// Region (shard) of each node, derived from topology region names.
    region_of: Vec<u32>,
    regions: Vec<CalendarQueue<N::Msg>>,
    /// Crash/recover events (global barriers).
    ctrl: BinaryHeap<Reverse<CtrlEntry>>,
    /// Cached head key per region (kept in sync by push/pop); the
    /// per-event merge scans this flat array instead of peeking queues.
    heads: Vec<Option<EvKey>>,
    /// Boundary exchange: cross-region messages buffered per destination
    /// region, flushed when the world advances to the next time slice.
    exchange: Vec<Vec<Entry<N::Msg>>>,
    exchange_len: usize,
    /// Lockstep slice width (µs): a conservative lookahead no larger than
    /// the minimum cross-node latency, so cross-region messages are never
    /// due inside the slice that sent them.
    slice_width: u64,
    /// End (µs, exclusive) of the slice currently being processed.
    window_end: u64,
    /// Whether the latency model permits a safe multi-region lookahead.
    can_shard: bool,
    /// Cached latency-model jitter fraction.
    jitter: f64,
    /// Per-sender link state, purged on crash.
    links: Vec<FnvHashMap<u32, LinkState>>,
    /// Per-node timer sequence numbers (canonical tie-break component).
    timer_seq: Vec<u64>,
    /// Orders harness calls (injects, crashes, recoveries).
    harness_seq: u64,
    /// Activation counter; groups one activation's sends per link.
    apply_seq: u64,
    seed: u64,
    now: SimTime,
    rng: SimRng,
    loss: f64,
    metrics: MetricsRegistry,
    ids: EngineCounters,
    tracer: Tracer,
    started: bool,
    /// Reusable same-instant delivery buffer.
    batch: Vec<(NodeIndex, N::Msg)>,
    /// Canonical key of the entry currently being processed (trace merge).
    cur_key: EvKey,
    /// Trace records buffered during a bulk slice drain, merged back into
    /// canonical key order at the slice boundary.
    trace_buf: Vec<(EvKey, NodeIndex, Cow<'static, str>, String)>,
    /// Whether traces are being buffered (bulk drain with tracing on).
    bulk_tracing: bool,
    /// Reusable activation outbox (capacity persists across activations).
    scratch: Outbox<N::Msg>,
    bucket_width: u64,
    bucket_count: usize,
}

/// Default wheel geometry: 256 buckets of 1024 µs cover ~262 ms of near
/// future; longer timers take the overflow heap. Buckets are coarse on
/// purpose: the wheel advance (one bucket at a time) must stay cheap on
/// sparse stretches, and the sorted active vec holding one bucket's
/// entries stays small either way.
const DEFAULT_BUCKET_WIDTH: u64 = 1024;
const DEFAULT_BUCKET_COUNT: usize = 256;

impl<N: Node> World<N> {
    /// Creates a world over `topology` with one state machine per node.
    ///
    /// Nodes are sharded into one region per distinct topology region name
    /// (use [`set_region_count`](Self::set_region_count) to override).
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size.
    pub fn new(topology: Topology, seed: u64, nodes: Vec<N>) -> Self {
        assert_eq!(topology.len(), nodes.len(), "one state machine per topology node");
        let alive = vec![true; nodes.len()];
        let n = nodes.len();
        let (slice_width, can_shard) = lookahead(&topology);
        let jitter = topology.latency_model().jitter;
        let mut metrics = MetricsRegistry::new();
        let ids = EngineCounters {
            sent: metrics.register_counter("sim.messages_sent"),
            delivered: metrics.register_counter("sim.messages_delivered"),
            dropped_dead: metrics.register_counter("sim.messages_dropped_dead"),
            lost: metrics.register_counter("sim.messages_lost"),
            bad_destination: metrics.register_counter("sim.bad_destination"),
            batches: metrics.register_counter("sim.batches"),
            batched: metrics.register_counter("sim.batched_messages"),
        };
        let mut world = World {
            topology,
            alive,
            nodes,
            region_of: vec![0; n],
            regions: Vec::new(),
            ctrl: BinaryHeap::new(),
            heads: Vec::new(),
            exchange: Vec::new(),
            exchange_len: 0,
            slice_width,
            window_end: slice_width,
            can_shard,
            jitter,
            links: (0..n).map(|_| FnvHashMap::default()).collect(),
            timer_seq: vec![0; n],
            harness_seq: 0,
            apply_seq: 0,
            seed,
            now: SimTime::ZERO,
            rng: SimRng::new(seed).fork("world"),
            loss: 0.0,
            metrics,
            ids,
            tracer: Tracer::disabled(),
            started: false,
            batch: Vec::new(),
            cur_key: EvKey { at: SimTime::ZERO, class: 0, a: 0, b: 0 },
            trace_buf: Vec::new(),
            bulk_tracing: false,
            scratch: Outbox::new(),
            bucket_width: DEFAULT_BUCKET_WIDTH,
            bucket_count: DEFAULT_BUCKET_COUNT,
        };
        world.partition(usize::MAX);
        world
    }

    /// (Re)partitions nodes into at most `want` regions and rebuilds the
    /// empty region queues.
    fn partition(&mut self, want: usize) {
        debug_assert_eq!(self.pending_regions(), 0, "repartition requires empty queues");
        let mut names: Vec<&str> = self.topology.iter().map(|i| i.region.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        let limit = if self.can_shard { names.len() } else { 1 };
        let count = want.clamp(1, limit.max(1));
        let shard: BTreeMap<&str, u32> =
            names.iter().enumerate().map(|(i, n)| (*n, (i % count) as u32)).collect();
        for (i, info) in self.topology.iter().enumerate() {
            self.region_of[i] = shard[info.region.as_str()];
        }
        self.regions =
            (0..count).map(|_| CalendarQueue::new(self.bucket_width, self.bucket_count)).collect();
        self.heads = vec![None; count];
        self.exchange = (0..count).map(|_| Vec::new()).collect();
        self.exchange_len = 0;
    }

    fn pending_regions(&self) -> usize {
        self.regions.iter().map(CalendarQueue::len).sum::<usize>() + self.exchange_len
    }

    /// Sets the number of region shards (clamped to the number of distinct
    /// topology region names). The schedule is region-count invariant:
    /// traces are byte-identical at any setting.
    ///
    /// # Panics
    ///
    /// Panics if the world has started or events are pending.
    pub fn set_region_count(&mut self, count: usize) {
        assert!(!self.started && self.pending() == 0, "set_region_count before starting the world");
        self.partition(count.max(1));
    }

    /// Sets the calendar-queue geometry (bucket width in µs, bucket
    /// count). The schedule is bucket-width invariant: traces are
    /// byte-identical at any setting.
    ///
    /// # Panics
    ///
    /// Panics if the world has started or events are pending.
    pub fn set_wheel_geometry(&mut self, width_micros: u64, buckets: usize) {
        assert!(
            !self.started && self.pending() == 0,
            "set_wheel_geometry before starting the world"
        );
        self.bucket_width = width_micros.max(1);
        self.bucket_count = buckets.max(2);
        let count = self.regions.len();
        self.regions =
            (0..count).map(|_| CalendarQueue::new(self.bucket_width, self.bucket_count)).collect();
        self.heads = vec![None; count];
    }

    /// Number of region shards.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The region shard a node belongs to.
    pub fn region_of(&self, node: NodeIndex) -> usize {
        self.region_of[node.as_usize()] as usize
    }

    /// The lockstep slice width in microseconds (the cross-region
    /// lookahead; the seam for future threaded execution).
    pub fn slice_micros(&self) -> u64 {
        self.slice_width
    }

    /// Live per-link connection-state entries (bounded by churn purging;
    /// see the link-state leak regression test).
    pub fn link_state_count(&self) -> usize {
        self.links.iter().map(FnvHashMap::len).sum()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The physical topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to a node's state machine.
    pub fn node(&self, index: NodeIndex) -> &N {
        &self.nodes[index.as_usize()]
    }

    /// Mutable access to a node's state machine (for test setup and for
    /// client APIs layered above the world).
    pub fn node_mut(&mut self, index: NodeIndex) -> &mut N {
        &mut self.nodes[index.as_usize()]
    }

    /// Iterates over all node state machines.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// Whether `node` is currently alive.
    pub fn is_alive(&self, node: NodeIndex) -> bool {
        self.alive[node.as_usize()]
    }

    /// Sets the independent per-message loss probability (ignores loopback).
    pub fn set_loss(&mut self, p: f64) {
        self.loss = p.clamp(0.0, 1.0);
    }

    /// Enables trace collection (with a maximum retained event count).
    pub fn enable_tracing(&mut self, cap: usize) {
        self.tracer = Tracer::enabled(cap);
    }

    /// The collected trace.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// World-level metrics (message counts plus anything nodes observed).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the metrics registry, for harness-level records.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// A deterministic RNG fork for harness-level decisions.
    pub fn fork_rng(&self, label: &str) -> SimRng {
        self.rng.fork(label)
    }

    /// Delivers `Start` to every alive node at the current time. Called
    /// implicitly by the run methods if not called explicitly.
    pub fn start_all(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            if self.alive[i] {
                self.activate(NodeIndex(i as u32), Input::Start);
            }
        }
    }

    /// Pushes into a region queue, keeping the head cache in sync.
    fn region_push(&mut self, region: usize, entry: Entry<N::Msg>) {
        if self.heads[region].is_none_or(|h| entry.key < h) {
            self.heads[region] = Some(entry.key);
        }
        self.regions[region].push(entry);
    }

    fn refresh_head(&mut self, region: usize) {
        self.heads[region] = self.regions[region].peek().map(|x| x.key);
    }

    fn push_harness_deliver(&mut self, at: SimTime, from: NodeIndex, to: NodeIndex, msg: N::Msg) {
        self.harness_seq += 1;
        let key = EvKey { at, class: CLASS_HARNESS, a: self.harness_seq, b: 0 };
        let region = self.region_of[to.as_usize()] as usize;
        // Harness injections go straight into the destination queue: they
        // happen between run calls, never inside a slice.
        self.region_push(region, Entry { key, kind: EntryKind::Deliver { from, to, msg } });
    }

    /// Injects a message from `from` to `to`, subject to normal latency.
    pub fn inject(&mut self, from: NodeIndex, to: NodeIndex, msg: N::Msg) {
        let latency = self.topology.sample_latency(from, to, &mut self.rng);
        let at = self.now + latency;
        self.push_harness_deliver(at, from, to, msg);
    }

    /// Schedules a message to arrive at `to` at the absolute time `at`.
    ///
    /// Used by workload generators that precompute event streams.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn inject_at(&mut self, at: SimTime, from: NodeIndex, to: NodeIndex, msg: N::Msg) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.push_harness_deliver(at, from, to, msg);
    }

    /// Schedules a crash of `node` at time `at`. In-flight messages already
    /// addressed to it are dropped on delivery; its timers are discarded.
    pub fn crash_at(&mut self, at: SimTime, node: NodeIndex) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.harness_seq += 1;
        let key = EvKey { at, class: CLASS_CTRL, a: self.harness_seq, b: 0 };
        self.ctrl.push(Reverse(CtrlEntry { key, node, recover: false }));
    }

    /// Schedules a recovery of `node` at time `at`; the node receives
    /// [`Input::Start`] when it recovers.
    pub fn recover_at(&mut self, at: SimTime, node: NodeIndex) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.harness_seq += 1;
        let key = EvKey { at, class: CLASS_CTRL, a: self.harness_seq, b: 0 };
        self.ctrl.push(Reverse(CtrlEntry { key, node, recover: true }));
    }

    /// Crashes `node` immediately, resetting its link connection state
    /// (both outbound and inbound entries are reclaimed).
    pub fn crash(&mut self, node: NodeIndex) {
        self.alive[node.as_usize()] = false;
        self.metrics.inc("sim.crashes", 1.0);
        self.links[node.as_usize()].clear();
        for senders in &mut self.links {
            senders.remove(&node.0);
        }
    }

    /// Recovers `node` immediately, delivering [`Input::Start`].
    pub fn recover(&mut self, node: NodeIndex) {
        if !self.alive[node.as_usize()] {
            self.alive[node.as_usize()] = true;
            self.metrics.inc("sim.recoveries", 1.0);
            self.activate(node, Input::Start);
        }
    }

    fn activate(&mut self, index: NodeIndex, input: Input<N::Msg>) {
        self.apply_seq += 1;
        let now = self.now;
        let (nodes, scratch) = (&mut self.nodes, &mut self.scratch);
        nodes[index.as_usize()].handle(now, input, scratch);
        self.apply_effects(index);
    }

    fn activate_batch(&mut self, to: NodeIndex) {
        self.apply_seq += 1;
        let now = self.now;
        let (nodes, scratch, buf) = (&mut self.nodes, &mut self.scratch, &mut self.batch);
        let mut batch = Batch { inner: buf.drain(..) };
        nodes[to.as_usize()].on_batch(now, &mut batch, scratch);
        drop(batch);
        self.apply_effects(to);
    }

    /// Drains the scratch outbox of one activation into the schedule,
    /// preserving the outbox's capacity for the next activation.
    fn apply_effects(&mut self, from: NodeIndex) {
        if !self.scratch.sends.is_empty() {
            let mut sends = std::mem::take(&mut self.scratch.sends);
            for (to, msg, extra) in sends.drain(..) {
                self.dispatch_send(from, to, msg, extra);
            }
            self.scratch.sends = sends;
        }
        if !self.scratch.timers.is_empty() {
            let mut timers = std::mem::take(&mut self.scratch.timers);
            for (delay, tag) in timers.drain(..) {
                self.push_timer(from, delay, tag);
            }
            self.scratch.timers = timers;
        }
        if !self.scratch.counts.is_empty() {
            for (name, by) in self.scratch.counts.drain(..) {
                self.metrics.inc(&name, by);
            }
        }
        if !self.scratch.observations.is_empty() {
            for (name, value) in self.scratch.observations.drain(..) {
                self.metrics.observe(&name, value);
            }
        }
        if !self.scratch.traces.is_empty() {
            if self.bulk_tracing {
                for (kind, detail) in self.scratch.traces.drain(..) {
                    self.trace_buf.push((self.cur_key, from, kind, detail));
                }
            } else {
                for (kind, detail) in self.scratch.traces.drain(..) {
                    self.tracer.record(self.now, from, &kind, detail);
                }
            }
        }
    }

    /// Merges slice-buffered traces back into canonical key order (regions
    /// drain one after another inside a slice, but the recorded trace must
    /// be independent of the region count).
    fn flush_trace_buf(&mut self) {
        if self.trace_buf.is_empty() {
            return;
        }
        let mut buf = std::mem::take(&mut self.trace_buf);
        buf.sort_by_key(|r| r.0);
        for (key, node, kind, detail) in buf.drain(..) {
            self.tracer.record(key.at, node, &kind, detail);
        }
        self.trace_buf = buf;
    }

    fn push_timer(&mut self, node: NodeIndex, delay: SimDuration, tag: u64) {
        let seq = &mut self.timer_seq[node.as_usize()];
        *seq += 1;
        let key = EvKey { at: self.now + delay, class: CLASS_TIMER, a: node.0 as u64, b: *seq };
        let region = self.region_of[node.as_usize()] as usize;
        self.region_push(region, Entry { key, kind: EntryKind::Timer { node, tag } });
    }

    fn dispatch_send(&mut self, from: NodeIndex, to: NodeIndex, msg: N::Msg, extra: SimDuration) {
        if to.as_usize() >= self.nodes.len() {
            self.metrics.add(self.ids.bad_destination, 1.0);
            return;
        }
        let sender = from.as_usize();
        let jitter = self.jitter;
        let (links, topology, seed) = (&mut self.links, &self.topology, self.seed);
        let ls = links[sender].entry(to.0).or_insert_with(|| {
            let nominal = topology.nominal_latency(from, to).as_micros();
            LinkState {
                last_at: 0,
                nominal,
                jittered: nominal,
                last_apply: 0,
                rng: link_stream_seed(seed, from, to),
                seq: 0,
            }
        });
        if ls.last_apply != self.apply_seq {
            // First message of this activation on this link: sample the
            // connection's latency once; the rest of the flush shares it.
            ls.last_apply = self.apply_seq;
            ls.jittered = if to == from || jitter <= 0.0 {
                ls.nominal
            } else {
                let factor = 1.0 - jitter + 2.0 * jitter * splitmix_unit(&mut ls.rng);
                (ls.nominal as f64 * factor).round() as u64
            };
        }
        if self.loss > 0.0 && to != from && splitmix_unit(&mut ls.rng) < self.loss {
            self.metrics.add(self.ids.lost, 1.0);
            return;
        }
        // Per-link FIFO: links are connection-oriented (the architecture's
        // web-service interfaces run over TCP); equal times are allowed
        // and preserve send order via the link sequence number.
        let mut at = self.now.as_micros() + ls.jittered + extra.as_micros();
        if at < ls.last_at {
            at = ls.last_at;
        }
        ls.last_at = at;
        ls.seq += 1;
        let key = EvKey {
            at: SimTime::from_micros(at),
            class: CLASS_LINK,
            a: ((to.0 as u64) << 32) | from.0 as u64,
            b: ls.seq,
        };
        self.metrics.add(self.ids.sent, 1.0);
        let entry = Entry { key, kind: EntryKind::Deliver { from, to, msg } };
        let (rf, rt) = (self.region_of[sender] as usize, self.region_of[to.as_usize()] as usize);
        if rf == rt || self.window_end == u64::MAX {
            // Same region — or the degenerate unbounded window, where the
            // exchange's slice-boundary flush cannot order it correctly.
            self.region_push(rt, entry);
        } else {
            debug_assert!(
                at >= self.window_end,
                "cross-region message due inside its own slice: at={at} window_end={} now={}",
                self.window_end,
                self.now.as_micros()
            );
            self.exchange[rt].push(entry);
            self.exchange_len += 1;
        }
    }

    /// Flushes the boundary exchange into the destination region queues
    /// (the slice-boundary handover; with threaded regions this is the
    /// only synchronisation point).
    fn flush_exchange(&mut self) {
        for r in 0..self.exchange.len() {
            // Pop order within the buffer is irrelevant: the queue orders
            // by key.
            while let Some(e) = self.exchange[r].pop() {
                self.region_push(r, e);
            }
        }
        self.exchange_len = 0;
    }

    /// Whether the lockstep window currently covers time `t` (µs).
    fn window_contains(&self, t: u64) -> bool {
        t < self.window_end
            && (self.window_end == u64::MAX || t >= self.window_end - self.slice_width)
    }

    /// Moves the window to the slice containing time `t` (µs). This jumps
    /// forward over empty slices, and also back: a run can stop
    /// mid-stretch and harness activity (injects between run calls) may
    /// then schedule work before the speculatively advanced window.
    /// Exchange entries are always due at or after the window that
    /// buffered them, so retreating is safe.
    fn move_window(&mut self, t: u64) {
        let aligned = (t / self.slice_width).saturating_add(1).saturating_mul(self.slice_width);
        // Alignment overflow (pathological far-future event): fall back to
        // one unbounded window.
        self.window_end = if aligned <= t { u64::MAX } else { aligned };
    }

    /// The minimal pending key over the control heap and all region heads.
    fn scan_min(&self) -> Option<(EvKey, NextSrc)> {
        let mut best: Option<(EvKey, NextSrc)> = self.ctrl.peek().map(|r| (r.0.key, NextSrc::Ctrl));
        for (r, head) in self.heads.iter().enumerate() {
            if let Some(k) = head {
                if best.is_none_or(|(bk, _)| *k < bk) {
                    best = Some((*k, NextSrc::Region(r)));
                }
            }
        }
        best
    }

    /// Positions the scheduler on the next canonical event: flushes the
    /// exchange and moves the lockstep window as needed, then returns the
    /// minimal key over the control heap and all region queues.
    fn position_next(&mut self) -> Option<(EvKey, NextSrc)> {
        loop {
            let Some((k, src)) = self.scan_min() else {
                if self.exchange_len > 0 {
                    self.flush_exchange();
                    continue;
                }
                return None;
            };
            if self.window_contains(k.at.as_micros()) {
                return Some((k, src));
            }
            if self.exchange_len > 0 {
                self.flush_exchange();
                continue;
            }
            self.move_window(k.at.as_micros());
        }
    }

    /// Processes the next queued event — a crash/recovery, a timer, or a
    /// same-instant delivery batch. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        self.start_all();
        let Some((key, src)) = self.position_next() else {
            return false;
        };
        self.step_at(key, src);
        true
    }

    /// Processes the event `position_next` selected.
    fn step_at(&mut self, key: EvKey, src: NextSrc) {
        debug_assert!(key.at >= self.now, "time went backwards");
        match src {
            NextSrc::Ctrl => {
                self.now = key.at;
                let Reverse(ctrl) = self.ctrl.pop().expect("peeked");
                if ctrl.recover {
                    self.recover(ctrl.node);
                } else {
                    self.crash(ctrl.node);
                }
            }
            NextSrc::Region(r) => self.process_entry(r),
        }
    }

    /// Drains region `r` up to and including `stop_at`, stopping early at
    /// a control barrier. The head cache is synced once at the end, not
    /// per pop.
    fn drain_region(&mut self, r: usize, stop_at: SimTime, barrier: Option<EvKey>) {
        while let Some(head) = self.regions[r].peek().map(|e| e.key) {
            if head.at > stop_at || barrier.is_some_and(|b| head > b) {
                break;
            }
            self.process_entry_unsynced(r);
        }
        self.refresh_head(r);
    }

    /// Pops and handles the head entry of region `r` — a timer or a
    /// same-instant delivery batch. Sets `now` to the entry's time (within
    /// a bulk slice drain, `now` is monotone per region, not globally).
    fn process_entry(&mut self, r: usize) {
        self.process_entry_unsynced(r);
        self.refresh_head(r);
    }

    /// Like [`process_entry`](Self::process_entry) but leaves the head
    /// cache stale (bulk drains sync it once per segment).
    fn process_entry_unsynced(&mut self, r: usize) {
        let entry = self.regions[r].pop().expect("peeked");
        let key = entry.key;
        self.now = key.at;
        self.cur_key = key;
        match entry.kind {
            EntryKind::Timer { node, tag } => {
                if self.alive[node.as_usize()] {
                    self.activate(node, Input::Timer { tag });
                }
            }
            EntryKind::Deliver { from, to, msg } => {
                debug_assert!(self.batch.is_empty());
                self.batch.push((from, msg));
                // Gather the rest of the same-instant batch for `to`.
                // Only link deliveries batch: their destination-major keys
                // make same-instant arrivals at one node contiguous in the
                // global key order (harness injections are keyed by call
                // order and deliver singly).
                while let Some(next) = self.regions[r].peek() {
                    let h = next.key;
                    if h.at != key.at || h.class != CLASS_LINK || (h.a >> 32) as u32 != to.0 {
                        break;
                    }
                    let popped = self.regions[r].pop().expect("peeked");
                    let EntryKind::Deliver { from, msg, .. } = popped.kind else {
                        unreachable!("class-checked Deliver above");
                    };
                    self.batch.push((from, msg));
                }
                let n = self.batch.len() as f64;
                if self.alive[to.as_usize()] {
                    self.metrics.add(self.ids.delivered, n);
                    if self.batch.len() > 1 {
                        self.metrics.add(self.ids.batches, 1.0);
                        self.metrics.add(self.ids.batched, n);
                    }
                    self.activate_batch(to);
                } else {
                    self.metrics.add(self.ids.dropped_dead, n);
                    self.batch.clear();
                }
            }
        }
    }

    /// Runs until the queue is empty or simulated time reaches `t`.
    /// Afterwards `now() == t` unless the queue emptied earlier.
    ///
    /// Runs slice by slice: each region drains its own queue for the
    /// current lockstep window (regions are causally independent within a
    /// window, so per-node schedules are exactly the canonical ones),
    /// crash/recover events act as barriers inside the window, and the
    /// boundary exchange is flushed between windows. With tracing on,
    /// trace records are merged back into canonical key order at each
    /// boundary, so the trace is byte-identical at any region count.
    pub fn run_until(&mut self, t: SimTime) {
        self.start_all();
        let tracing = self.tracer.is_enabled();
        loop {
            let min = self.scan_min();
            // The visible minimum is only authoritative when it lies in
            // the current window: the exchange may hold earlier entries
            // otherwise, so flush before trusting (or breaking on) it.
            let in_window = min.is_some_and(|(k, _)| self.window_contains(k.at.as_micros()));
            if !in_window && self.exchange_len > 0 {
                self.flush_exchange();
                continue;
            }
            let Some((k, _)) = min else {
                break;
            };
            if k.at > t {
                break;
            }
            if !in_window {
                self.move_window(k.at.as_micros());
                continue;
            }
            // Drain this window region by region, pausing at control
            // barriers (which touch global state: aliveness, link purges).
            self.bulk_tracing = tracing;
            loop {
                let barrier = self.ctrl.peek().map(|c| c.0.key);
                let stop_at = if self.window_end == u64::MAX {
                    t
                } else {
                    t.min(SimTime::from_micros(self.window_end - 1))
                };
                for r in 0..self.regions.len() {
                    self.drain_region(r, stop_at, barrier);
                }
                match barrier {
                    Some(b) if b.at <= t && self.window_contains(b.at.as_micros()) => {
                        self.bulk_tracing = false;
                        self.flush_trace_buf();
                        let Reverse(ctrl) = self.ctrl.pop().expect("peeked");
                        self.now = b.at;
                        if ctrl.recover {
                            self.recover(ctrl.node);
                        } else {
                            self.crash(ctrl.node);
                        }
                        self.bulk_tracing = tracing;
                    }
                    _ => break,
                }
            }
            self.bulk_tracing = false;
            self.flush_trace_buf();
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Runs for an additional duration `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let target = self.now + d;
        self.run_until(target);
    }

    /// Runs until no events remain or `limit` is reached; returns the time
    /// at which the system went quiescent (or `limit`).
    pub fn run_to_quiescence(&mut self, limit: SimTime) -> SimTime {
        self.start_all();
        let mut first = true;
        loop {
            let Some((key, src)) = self.position_next() else {
                // Mirrors the seed scheduler: the returned settle time
                // (and `now`) never exceed the limit, even when the final
                // processed event lay beyond it.
                if self.now > limit {
                    self.now = limit;
                    return limit;
                }
                return self.now;
            };
            // Mirrors the seed scheduler: the first pending event is
            // processed even when it lies beyond the limit.
            if !first && key.at > limit {
                break;
            }
            first = false;
            self.step_at(key, src);
        }
        self.now = limit;
        limit
    }

    /// Number of entries waiting across all queues (control events, region
    /// queues, and the boundary exchange).
    pub fn pending(&self) -> usize {
        self.ctrl.len() + self.pending_regions()
    }
}

/// Computes the lockstep slice width from the latency model: the minimum
/// cross-node latency (base minus full jitter), floored. The jittered
/// latency of any message is at least this floor (`round(nominal * f)` with
/// `nominal >= base` and `f >= 1 - jitter`), so a slice of exactly the
/// floor guarantees no cross-region message is due inside its own slice.
/// Returns `(width, can_shard)`; models without a positive latency floor
/// cannot shard safely and run as a single region.
fn lookahead(topology: &Topology) -> (u64, bool) {
    let lm = topology.latency_model();
    let floor = (lm.base.as_micros() as f64 * (1.0 - lm.jitter)).floor() as u64;
    if floor < 2 {
        (1, false)
    } else {
        (floor, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    /// Counts pings; replies with pongs; optionally re-arms a periodic timer.
    #[derive(Debug, Default)]
    struct TestNode {
        started: u32,
        pings: u32,
        pongs: u32,
        timer_fires: u32,
        periodic: bool,
        batch_sizes: Vec<usize>,
    }

    #[derive(Debug, Clone)]
    enum M {
        Ping,
        Pong,
        Burst(u32),
    }

    impl Node for TestNode {
        type Msg = M;
        fn handle(&mut self, _now: SimTime, input: Input<M>, out: &mut Outbox<M>) {
            match input {
                Input::Start => {
                    self.started += 1;
                    if self.periodic {
                        out.timer(SimDuration::from_millis(100), 1);
                    }
                }
                Input::Msg { from, msg: M::Ping } => {
                    self.pings += 1;
                    out.send(from, M::Pong);
                    out.count("pings", 1.0);
                }
                Input::Msg { msg: M::Pong, .. } => self.pongs += 1,
                Input::Msg { from, msg: M::Burst(n) } => {
                    for _ in 0..n {
                        out.send(from, M::Pong);
                    }
                }
                Input::Timer { tag: 1 } => {
                    self.timer_fires += 1;
                    out.timer(SimDuration::from_millis(100), 1);
                }
                Input::Timer { .. } => {}
            }
        }

        fn on_batch(&mut self, now: SimTime, batch: &mut Batch<'_, M>, out: &mut Outbox<M>) {
            self.batch_sizes.push(batch.len());
            for (from, msg) in batch {
                self.handle(now, Input::Msg { from, msg }, out);
            }
        }
    }

    fn world(n: usize) -> World<TestNode> {
        let t = Topology::lan(n, 11);
        let nodes = (0..n).map(|_| TestNode::default()).collect();
        World::new(t, 11, nodes)
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut w = world(2);
        w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node(NodeIndex(1)).pings, 1);
        assert_eq!(w.node(NodeIndex(0)).pongs, 1);
        assert_eq!(w.metrics().counter("pings"), 1.0);
    }

    #[test]
    fn start_is_delivered_once() {
        let mut w = world(3);
        w.run_until(SimTime::from_millis(1));
        w.run_until(SimTime::from_millis(2));
        for n in w.nodes() {
            assert_eq!(n.started, 1);
        }
    }

    #[test]
    fn periodic_timer_fires_repeatedly() {
        let t = Topology::lan(1, 1);
        let mut w = World::new(t, 1, vec![TestNode { periodic: true, ..Default::default() }]);
        w.run_until(SimTime::from_millis(1050));
        assert_eq!(w.node(NodeIndex(0)).timer_fires, 10);
    }

    #[test]
    fn crash_drops_messages_and_timers() {
        let mut w = world(2);
        w.crash(NodeIndex(1));
        w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node(NodeIndex(1)).pings, 0);
        assert_eq!(w.metrics().counter("sim.messages_dropped_dead"), 1.0);
    }

    #[test]
    fn recover_delivers_start_again() {
        let mut w = world(2);
        w.run_until(SimTime::from_millis(1));
        w.crash(NodeIndex(1));
        w.recover(NodeIndex(1));
        assert_eq!(w.node(NodeIndex(1)).started, 2);
    }

    #[test]
    fn scheduled_crash_and_recover() {
        let mut w = world(2);
        w.crash_at(SimTime::from_millis(10), NodeIndex(1));
        w.recover_at(SimTime::from_millis(20), NodeIndex(1));
        // Ping lands in the dead window and is dropped.
        w.inject_at(SimTime::from_millis(15), NodeIndex(0), NodeIndex(1), M::Ping);
        // This one lands after recovery.
        w.inject_at(SimTime::from_millis(25), NodeIndex(0), NodeIndex(1), M::Ping);
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node(NodeIndex(1)).pings, 1);
    }

    #[test]
    fn loss_drops_fraction_of_messages() {
        let mut w = world(2);
        w.set_loss(1.0);
        for _ in 0..10 {
            w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
        }
        w.run_until(SimTime::from_secs(1));
        // Injections bypass loss (they model external arrivals), but the
        // pong replies are all lost.
        assert_eq!(w.node(NodeIndex(1)).pings, 10);
        assert_eq!(w.node(NodeIndex(0)).pongs, 0);
        assert_eq!(w.metrics().counter("sim.messages_lost"), 10.0);
    }

    #[test]
    fn run_to_quiescence_returns_settle_time() {
        let mut w = world(2);
        w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
        let settled = w.run_to_quiescence(SimTime::from_secs(5));
        assert!(settled < SimTime::from_secs(5));
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed: u64| {
            let mut w = world(2);
            // Note: world() uses fixed topology seed; vary message count by seed.
            for _ in 0..(seed % 5 + 1) {
                w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
            }
            w.run_until(SimTime::from_secs(1));
            (w.node(NodeIndex(0)).pongs, w.metrics().counter("sim.messages_sent"))
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn time_advances_to_run_target() {
        let mut w = world(1);
        w.run_until(SimTime::from_secs(9));
        assert_eq!(w.now(), SimTime::from_secs(9));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn inject_at_past_panics() {
        let mut w = world(1);
        w.run_until(SimTime::from_secs(1));
        w.inject_at(SimTime::from_millis(1), NodeIndex(0), NodeIndex(0), M::Ping);
    }

    #[test]
    fn crash_purges_link_state_both_directions() {
        // Regression: the seed engine kept per-link FIFO entries forever,
        // so long churn runs grew memory without bound.
        let mut w = world(3);
        w.inject(NodeIndex(0), NodeIndex(1), M::Ping); // 1 replies to 0
        w.inject(NodeIndex(1), NodeIndex(2), M::Ping); // 2 replies to 1
        w.inject(NodeIndex(2), NodeIndex(0), M::Ping); // 0 replies to 2
        w.run_until(SimTime::from_secs(1));
        // Replies created links 1->0, 2->1, 0->2.
        assert_eq!(w.link_state_count(), 3);
        w.crash(NodeIndex(1));
        // Both 1's outbound state and every inbound entry to 1 are gone.
        assert_eq!(w.link_state_count(), 1);
        w.crash(NodeIndex(0));
        w.crash(NodeIndex(2));
        assert_eq!(w.link_state_count(), 0);
    }

    #[test]
    fn same_activation_fanout_arrives_as_one_batch() {
        // A burst of sends from one activation over one link shares a
        // latency sample, lands at one instant, and is handed over as one
        // on_batch call.
        let mut w = world(2);
        w.inject(NodeIndex(1), NodeIndex(0), M::Burst(5));
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node(NodeIndex(1)).pongs, 5);
        assert!(
            w.node(NodeIndex(1)).batch_sizes.contains(&5),
            "burst replies batch: {:?}",
            w.node(NodeIndex(1)).batch_sizes
        );
        assert_eq!(w.metrics().counter("sim.batched_messages"), 5.0);
    }

    #[test]
    fn region_count_and_wheel_geometry_do_not_change_outcomes() {
        let run = |regions: usize, width: u64, buckets: usize| {
            let t = Topology::random(8, &["scotland", "us-east", "asia", "brazil"], 5);
            let nodes = (0..8).map(|_| TestNode::default()).collect();
            let mut w = World::new(t, 5, nodes);
            w.set_region_count(regions);
            w.set_wheel_geometry(width, buckets);
            for i in 0..8u32 {
                w.inject(NodeIndex(i), NodeIndex((i + 1) % 8), M::Ping);
            }
            w.run_until(SimTime::from_secs(2));
            let pongs: Vec<u32> = w.nodes().map(|n| n.pongs).collect();
            (pongs, w.metrics().counter("sim.messages_sent"), w.now())
        };
        let baseline = run(1, DEFAULT_BUCKET_WIDTH, DEFAULT_BUCKET_COUNT);
        assert_eq!(baseline, run(2, DEFAULT_BUCKET_WIDTH, DEFAULT_BUCKET_COUNT));
        assert_eq!(baseline, run(4, 64, 32));
        assert_eq!(baseline, run(4, 10_000, 8));
    }

    #[test]
    fn multi_region_world_shards_by_topology_region() {
        let t = Topology::random(8, &["scotland", "us-east"], 5);
        let nodes = (0..8).map(|_| TestNode::default()).collect::<Vec<_>>();
        let w = World::new(t, 5, nodes);
        assert_eq!(w.region_count(), 2);
        assert_ne!(w.region_of(NodeIndex(0)), w.region_of(NodeIndex(1)));
        assert!(w.slice_micros() > 0);
    }
}
