//! The discrete-event engine: a [`World`] drives a set of sans-IO [`Node`]
//! state machines, owning time, message latency, loss, and failures.
//!
//! Nodes never perform IO or read clocks; they receive [`Input`]s and write
//! sends, timers, and measurements into an [`Outbox`]. This makes every
//! protocol in the workspace unit-testable without a simulator and keeps
//! whole-system runs deterministic.

use crate::metrics::MetricsRegistry;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeIndex, Topology};
use crate::trace::Tracer;
use std::borrow::Cow;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// An input delivered to a node by the engine.
#[derive(Debug, Clone)]
pub enum Input<M> {
    /// The node is starting (at world start, or after recovering from a
    /// crash). Crash recovery delivers `Start` again; nodes must treat it
    /// as a cold boot and reschedule their timers.
    Start,
    /// A message from another node (or injected externally).
    Msg {
        /// The sending node.
        from: NodeIndex,
        /// The message payload.
        msg: M,
    },
    /// A timer previously requested via [`Outbox::timer`] has fired.
    ///
    /// Timers cannot be cancelled; nodes should ignore stale tags.
    Timer {
        /// The tag passed to [`Outbox::timer`].
        tag: u64,
    },
}

/// Collects the effects of one node activation: sends, timers, trace and
/// metric observations.
///
/// Metric and trace names are `Cow<'static, str>`: the common case — a
/// string literal — is recorded without allocating, keeping per-event
/// accounting off the allocator in the simulator's hot loop.
#[derive(Debug)]
pub struct Outbox<M> {
    pub(crate) sends: Vec<(NodeIndex, M, SimDuration)>,
    pub(crate) timers: Vec<(SimDuration, u64)>,
    pub(crate) counts: Vec<(Cow<'static, str>, f64)>,
    pub(crate) observations: Vec<(Cow<'static, str>, f64)>,
    pub(crate) traces: Vec<(Cow<'static, str>, String)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox {
            sends: Vec::new(),
            timers: Vec::new(),
            counts: Vec::new(),
            observations: Vec::new(),
            traces: Vec::new(),
        }
    }
}

impl<M> Outbox<M> {
    /// Creates an empty outbox. Mostly useful in unit tests that drive a
    /// state machine without a [`World`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Sends `msg` to `to`; the engine adds network latency.
    pub fn send(&mut self, to: NodeIndex, msg: M) {
        self.sends.push((to, msg, SimDuration::ZERO));
    }

    /// Sends `msg` to `to` after an extra local processing delay, on top of
    /// network latency.
    pub fn send_after(&mut self, to: NodeIndex, msg: M, delay: SimDuration) {
        self.sends.push((to, msg, delay));
    }

    /// Requests a timer that fires after `delay` with the given `tag`.
    pub fn timer(&mut self, delay: SimDuration, tag: u64) {
        self.timers.push((delay, tag));
    }

    /// Increments the named world counter by `by`.
    pub fn count(&mut self, name: impl Into<Cow<'static, str>>, by: f64) {
        self.counts.push((name.into(), by));
    }

    /// Records a sample in the named world histogram.
    pub fn observe(&mut self, name: impl Into<Cow<'static, str>>, value: f64) {
        self.observations.push((name.into(), value));
    }

    /// Records a trace event (kept only when the world's tracer is enabled).
    pub fn trace(&mut self, kind: impl Into<Cow<'static, str>>, detail: impl Into<String>) {
        self.traces.push((kind.into(), detail.into()));
    }

    /// The messages queued so far, for tests that drive state machines
    /// directly: `(destination, message, extra delay)`.
    pub fn sends(&self) -> &[(NodeIndex, M, SimDuration)] {
        &self.sends
    }

    /// The timers requested so far: `(delay, tag)`.
    pub fn timers(&self) -> &[(SimDuration, u64)] {
        &self.timers
    }

    /// Removes and returns all queued sends.
    pub fn take_sends(&mut self) -> Vec<(NodeIndex, M, SimDuration)> {
        std::mem::take(&mut self.sends)
    }

    /// Moves every effect into `dest`, converting each message with `f`.
    ///
    /// This lets a node embed an inner state machine with its own message
    /// type (e.g. the storage layer wrapping the overlay): the inner
    /// machine writes to its own outbox, which is then transferred into
    /// the enclosing node's outbox.
    pub fn transfer_into<T>(self, dest: &mut Outbox<T>, f: impl Fn(M) -> T) {
        for (to, msg, delay) in self.sends {
            dest.sends.push((to, f(msg), delay));
        }
        dest.timers.extend(self.timers);
        dest.counts.extend(self.counts);
        dest.observations.extend(self.observations);
        dest.traces.extend(self.traces);
    }
}

/// A sans-IO node state machine driven by a [`World`].
pub trait Node {
    /// The message type exchanged between nodes of this world.
    type Msg;

    /// Handles one input, writing any effects to `out`.
    fn handle(&mut self, now: SimTime, input: Input<Self::Msg>, out: &mut Outbox<Self::Msg>);
}

#[derive(Debug)]
enum EntryKind<M> {
    Deliver { from: NodeIndex, to: NodeIndex, msg: M },
    Timer { node: NodeIndex, tag: u64 },
    Crash { node: NodeIndex },
    Recover { node: NodeIndex },
}

#[derive(Debug)]
struct Entry<M> {
    at: SimTime,
    seq: u64,
    kind: EntryKind<M>,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulation driver: a topology, one state machine per node, and a
/// time-ordered event queue.
///
/// See the [crate docs](crate) for a complete example.
#[derive(Debug)]
pub struct World<N: Node> {
    topology: Topology,
    nodes: Vec<N>,
    alive: Vec<bool>,
    queue: BinaryHeap<Reverse<Entry<N::Msg>>>,
    seq: u64,
    now: SimTime,
    rng: SimRng,
    loss: f64,
    metrics: MetricsRegistry,
    tracer: Tracer,
    started: bool,
    /// Per-link FIFO ordering: links model TCP/web-service connections, so
    /// two messages from A to B never reorder. Maps (from, to) to the last
    /// scheduled delivery time on that link.
    fifo: BTreeMap<(u32, u32), SimTime>,
}

impl<N: Node> World<N> {
    /// Creates a world over `topology` with one state machine per node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size.
    pub fn new(topology: Topology, seed: u64, nodes: Vec<N>) -> Self {
        assert_eq!(topology.len(), nodes.len(), "one state machine per topology node");
        let alive = vec![true; nodes.len()];
        World {
            topology,
            alive,
            nodes,
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            rng: SimRng::new(seed).fork("world"),
            loss: 0.0,
            metrics: MetricsRegistry::new(),
            tracer: Tracer::disabled(),
            started: false,
            fifo: BTreeMap::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The physical topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to a node's state machine.
    pub fn node(&self, index: NodeIndex) -> &N {
        &self.nodes[index.as_usize()]
    }

    /// Mutable access to a node's state machine (for test setup and for
    /// client APIs layered above the world).
    pub fn node_mut(&mut self, index: NodeIndex) -> &mut N {
        &mut self.nodes[index.as_usize()]
    }

    /// Iterates over all node state machines.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// Whether `node` is currently alive.
    pub fn is_alive(&self, node: NodeIndex) -> bool {
        self.alive[node.as_usize()]
    }

    /// Sets the independent per-message loss probability (ignores loopback).
    pub fn set_loss(&mut self, p: f64) {
        self.loss = p.clamp(0.0, 1.0);
    }

    /// Enables trace collection (with a maximum retained event count).
    pub fn enable_tracing(&mut self, cap: usize) {
        self.tracer = Tracer::enabled(cap);
    }

    /// The collected trace.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// World-level metrics (message counts plus anything nodes observed).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the metrics registry, for harness-level records.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// A deterministic RNG fork for harness-level decisions.
    pub fn fork_rng(&self, label: &str) -> SimRng {
        self.rng.fork(label)
    }

    fn push(&mut self, at: SimTime, kind: EntryKind<N::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Entry { at, seq, kind }));
    }

    /// Delivers `Start` to every alive node at the current time. Called
    /// implicitly by the run methods if not called explicitly.
    pub fn start_all(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            if self.alive[i] {
                self.activate(NodeIndex(i as u32), Input::Start);
            }
        }
    }

    /// Injects a message from `from` to `to`, subject to normal latency.
    pub fn inject(&mut self, from: NodeIndex, to: NodeIndex, msg: N::Msg) {
        let latency = self.topology.sample_latency(from, to, &mut self.rng);
        let at = self.now + latency;
        self.push(at, EntryKind::Deliver { from, to, msg });
    }

    /// Schedules a message to arrive at `to` at the absolute time `at`.
    ///
    /// Used by workload generators that precompute event streams.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn inject_at(&mut self, at: SimTime, from: NodeIndex, to: NodeIndex, msg: N::Msg) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.push(at, EntryKind::Deliver { from, to, msg });
    }

    /// Schedules a crash of `node` at time `at`. In-flight messages already
    /// addressed to it are dropped on delivery; its timers are discarded.
    pub fn crash_at(&mut self, at: SimTime, node: NodeIndex) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.push(at, EntryKind::Crash { node });
    }

    /// Schedules a recovery of `node` at time `at`; the node receives
    /// [`Input::Start`] when it recovers.
    pub fn recover_at(&mut self, at: SimTime, node: NodeIndex) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.push(at, EntryKind::Recover { node });
    }

    /// Crashes `node` immediately.
    pub fn crash(&mut self, node: NodeIndex) {
        self.alive[node.as_usize()] = false;
        self.metrics.inc("sim.crashes", 1.0);
    }

    /// Recovers `node` immediately, delivering [`Input::Start`].
    pub fn recover(&mut self, node: NodeIndex) {
        if !self.alive[node.as_usize()] {
            self.alive[node.as_usize()] = true;
            self.metrics.inc("sim.recoveries", 1.0);
            self.activate(node, Input::Start);
        }
    }

    fn activate(&mut self, index: NodeIndex, input: Input<N::Msg>) {
        let mut out = Outbox::new();
        let now = self.now;
        self.nodes[index.as_usize()].handle(now, input, &mut out);
        self.apply(index, out);
    }

    fn apply(&mut self, from: NodeIndex, out: Outbox<N::Msg>) {
        for (to, msg, extra) in out.sends {
            if to.as_usize() >= self.nodes.len() {
                self.metrics.inc("sim.bad_destination", 1.0);
                continue;
            }
            if self.loss > 0.0 && to != from && self.rng.chance(self.loss) {
                self.metrics.inc("sim.messages_lost", 1.0);
                continue;
            }
            let latency = self.topology.sample_latency(from, to, &mut self.rng);
            let mut at = self.now + latency + extra;
            // Enforce per-link FIFO: links are connection-oriented (the
            // architecture's web-service interfaces run over TCP).
            let key = (from.0, to.0);
            if let Some(&last) = self.fifo.get(&key) {
                if at <= last {
                    at = last + SimDuration::from_micros(1);
                }
            }
            self.fifo.insert(key, at);
            self.metrics.inc("sim.messages_sent", 1.0);
            self.push(at, EntryKind::Deliver { from, to, msg });
        }
        for (delay, tag) in out.timers {
            self.push(self.now + delay, EntryKind::Timer { node: from, tag });
        }
        for (name, by) in out.counts {
            self.metrics.inc(&name, by);
        }
        for (name, value) in out.observations {
            self.metrics.observe(&name, value);
        }
        for (kind, detail) in out.traces {
            self.tracer.record(self.now, from, &kind, detail);
        }
    }

    /// Processes the next queued entry, if any. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_all();
        let Some(Reverse(entry)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(entry.at >= self.now, "time went backwards");
        self.now = entry.at;
        match entry.kind {
            EntryKind::Deliver { from, to, msg } => {
                if self.alive[to.as_usize()] {
                    self.metrics.inc("sim.messages_delivered", 1.0);
                    self.activate(to, Input::Msg { from, msg });
                } else {
                    self.metrics.inc("sim.messages_dropped_dead", 1.0);
                }
            }
            EntryKind::Timer { node, tag } => {
                if self.alive[node.as_usize()] {
                    self.activate(node, Input::Timer { tag });
                }
            }
            EntryKind::Crash { node } => self.crash(node),
            EntryKind::Recover { node } => self.recover(node),
        }
        true
    }

    /// Runs until the queue is empty or simulated time reaches `t`.
    /// Afterwards `now() == t` unless the queue emptied earlier.
    pub fn run_until(&mut self, t: SimTime) {
        self.start_all();
        while let Some(Reverse(entry)) = self.queue.peek() {
            if entry.at > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Runs for an additional duration `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let target = self.now + d;
        self.run_until(target);
    }

    /// Runs until no events remain or `limit` is reached; returns the time
    /// at which the system went quiescent (or `limit`).
    pub fn run_to_quiescence(&mut self, limit: SimTime) -> SimTime {
        self.start_all();
        while self.now <= limit {
            if !self.step() {
                return self.now;
            }
            if let Some(Reverse(e)) = self.queue.peek() {
                if e.at > limit {
                    break;
                }
            }
        }
        self.now = limit;
        limit
    }

    /// Number of entries waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    /// Counts pings; replies with pongs; optionally re-arms a periodic timer.
    #[derive(Debug, Default)]
    struct TestNode {
        started: u32,
        pings: u32,
        pongs: u32,
        timer_fires: u32,
        periodic: bool,
    }

    #[derive(Debug, Clone)]
    enum M {
        Ping,
        Pong,
    }

    impl Node for TestNode {
        type Msg = M;
        fn handle(&mut self, _now: SimTime, input: Input<M>, out: &mut Outbox<M>) {
            match input {
                Input::Start => {
                    self.started += 1;
                    if self.periodic {
                        out.timer(SimDuration::from_millis(100), 1);
                    }
                }
                Input::Msg { from, msg: M::Ping } => {
                    self.pings += 1;
                    out.send(from, M::Pong);
                    out.count("pings", 1.0);
                }
                Input::Msg { msg: M::Pong, .. } => self.pongs += 1,
                Input::Timer { tag: 1 } => {
                    self.timer_fires += 1;
                    out.timer(SimDuration::from_millis(100), 1);
                }
                Input::Timer { .. } => {}
            }
        }
    }

    fn world(n: usize) -> World<TestNode> {
        let t = Topology::lan(n, 11);
        let nodes = (0..n).map(|_| TestNode::default()).collect();
        World::new(t, 11, nodes)
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut w = world(2);
        w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node(NodeIndex(1)).pings, 1);
        assert_eq!(w.node(NodeIndex(0)).pongs, 1);
        assert_eq!(w.metrics().counter("pings"), 1.0);
    }

    #[test]
    fn start_is_delivered_once() {
        let mut w = world(3);
        w.run_until(SimTime::from_millis(1));
        w.run_until(SimTime::from_millis(2));
        for n in w.nodes() {
            assert_eq!(n.started, 1);
        }
    }

    #[test]
    fn periodic_timer_fires_repeatedly() {
        let t = Topology::lan(1, 1);
        let mut w = World::new(t, 1, vec![TestNode { periodic: true, ..Default::default() }]);
        w.run_until(SimTime::from_millis(1050));
        assert_eq!(w.node(NodeIndex(0)).timer_fires, 10);
    }

    #[test]
    fn crash_drops_messages_and_timers() {
        let mut w = world(2);
        w.crash(NodeIndex(1));
        w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node(NodeIndex(1)).pings, 0);
        assert_eq!(w.metrics().counter("sim.messages_dropped_dead"), 1.0);
    }

    #[test]
    fn recover_delivers_start_again() {
        let mut w = world(2);
        w.run_until(SimTime::from_millis(1));
        w.crash(NodeIndex(1));
        w.recover(NodeIndex(1));
        assert_eq!(w.node(NodeIndex(1)).started, 2);
    }

    #[test]
    fn scheduled_crash_and_recover() {
        let mut w = world(2);
        w.crash_at(SimTime::from_millis(10), NodeIndex(1));
        w.recover_at(SimTime::from_millis(20), NodeIndex(1));
        // Ping lands in the dead window and is dropped.
        w.inject_at(SimTime::from_millis(15), NodeIndex(0), NodeIndex(1), M::Ping);
        // This one lands after recovery.
        w.inject_at(SimTime::from_millis(25), NodeIndex(0), NodeIndex(1), M::Ping);
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node(NodeIndex(1)).pings, 1);
    }

    #[test]
    fn loss_drops_fraction_of_messages() {
        let mut w = world(2);
        w.set_loss(1.0);
        for _ in 0..10 {
            w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
        }
        w.run_until(SimTime::from_secs(1));
        // Injections bypass loss (they model external arrivals), but the
        // pong replies are all lost.
        assert_eq!(w.node(NodeIndex(1)).pings, 10);
        assert_eq!(w.node(NodeIndex(0)).pongs, 0);
        assert_eq!(w.metrics().counter("sim.messages_lost"), 10.0);
    }

    #[test]
    fn run_to_quiescence_returns_settle_time() {
        let mut w = world(2);
        w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
        let settled = w.run_to_quiescence(SimTime::from_secs(5));
        assert!(settled < SimTime::from_secs(5));
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed: u64| {
            let mut w = world(2);
            // Note: world() uses fixed topology seed; vary message count by seed.
            for _ in 0..(seed % 5 + 1) {
                w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
            }
            w.run_until(SimTime::from_secs(1));
            (w.node(NodeIndex(0)).pongs, w.metrics().counter("sim.messages_sent"))
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn time_advances_to_run_target() {
        let mut w = world(1);
        w.run_until(SimTime::from_secs(9));
        assert_eq!(w.now(), SimTime::from_secs(9));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn inject_at_past_panics() {
        let mut w = world(1);
        w.run_until(SimTime::from_secs(1));
        w.inject_at(SimTime::from_millis(1), NodeIndex(0), NodeIndex(0), M::Ping);
    }
}
