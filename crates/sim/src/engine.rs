//! The discrete-event engine: a [`World`] drives a set of sans-IO [`Node`]
//! state machines, owning time, message latency, loss, and failures.
//!
//! Nodes never perform IO or read clocks; they receive [`Input`]s and write
//! sends, timers, and measurements into an [`Outbox`]. This makes every
//! protocol in the workspace unit-testable without a simulator and keeps
//! whole-system runs deterministic.
//!
//! # Scheduler architecture
//!
//! The event plane is sharded, bucketed, and (optionally) threaded for
//! 1k–4k-node workloads:
//!
//! - **Regions.** Nodes partition into regions (derived from the topology's
//!   region names); each region is a [`Shard`] owning its own calendar
//!   queue, its nodes' state machines, their per-link connection state, and
//!   buffers for every side effect (sends, counters, traces). Cross-region
//!   sends travel through per-region *outgoing* buffers that are flushed
//!   when the world advances to the next lockstep time slice. The slice
//!   width is a conservative lookahead (the latency model's cross-region
//!   floor), so a message sent in one slice can never be due inside the
//!   same slice.
//! - **Worker threads.** Because a shard owns everything its drain mutates,
//!   `run_until` can hand disjoint `&mut Shard` borrows to scoped worker
//!   threads and drain all regions of a slice concurrently
//!   (`GLOSS_SIM_THREADS` / [`World::set_threads`]; default 1 keeps the
//!   sequential path). Workers synchronise at slice barriers with a spin
//!   barrier, exchange cross-region messages through per-shard mailboxes,
//!   and the slice leader advances the lockstep window. Counters and trace
//!   records accumulate shard-locally and merge back in canonical shard /
//!   key order at segment boundaries, so the schedule, the trace, and all
//!   counters are **byte-identical at any thread count**.
//! - **Calendar queues.** Each shard's queue is a timer-wheel of
//!   fixed-width buckets over the near future plus an overflow heap for
//!   far-future entries (long timers), replacing one global `BinaryHeap`.
//!   Pushes and pops into the wheel are O(1) amortised.
//! - **Canonical event keys.** Every entry carries an [`EvKey`] that is a
//!   pure function of *what* the event is (link + per-link sequence, node +
//!   per-node timer sequence, harness call order) rather than of global
//!   push order. Processing events in key order therefore yields the same
//!   schedule at any region count, bucket width, or thread count: same
//!   seed, same trace. The `engine_equivalence` integration test checks
//!   this against a single-heap transcription of the seed scheduler; the
//!   `region_determinism` test checks byte-identical traces across region
//!   counts and thread counts.
//! - **Per-link state.** A flat FNV map per sender caches the jitter-free
//!   latency of each link (the haversine distance is computed once, not per
//!   message), carries the link's deterministic jitter/loss stream, and
//!   enforces FIFO ordering (links model TCP/web-service connections).
//!   Link state is purged when either endpoint crashes, so churn-heavy
//!   runs do not grow memory without bound.
//! - **Batched delivery.** Messages sent over one link by one activation
//!   share a sampled latency and land at the same instant; all messages
//!   arriving at one node at the same instant are handed over as a single
//!   [`Node::on_batch`] call (default: per-message fallback), letting
//!   broker fan-out and matchlet dispatch amortise per-event overhead.

use crate::hash::{splitmix64, splitmix_unit, FnvHashMap};
use crate::metrics::{CounterId, MetricsRegistry};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::{GeoPoint, NodeIndex, Topology};
use crate::trace::Tracer;
use std::borrow::Cow;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// An input delivered to a node by the engine.
#[derive(Debug, Clone)]
pub enum Input<M> {
    /// The node is starting (at world start, or after recovering from a
    /// crash). Crash recovery delivers `Start` again; nodes must treat it
    /// as a cold boot and reschedule their timers.
    Start,
    /// A message from another node (or injected externally).
    Msg {
        /// The sending node.
        from: NodeIndex,
        /// The message payload.
        msg: M,
    },
    /// A timer previously requested via [`Outbox::timer`] has fired.
    ///
    /// Timers cannot be cancelled; nodes should ignore stale tags.
    Timer {
        /// The tag passed to [`Outbox::timer`].
        tag: u64,
    },
}

/// Collects the effects of one node activation: sends, timers, trace and
/// metric observations.
///
/// Metric and trace names are `Cow<'static, str>`: the common case — a
/// string literal — is recorded without allocating, keeping per-event
/// accounting off the allocator in the simulator's hot loop.
#[derive(Debug)]
pub struct Outbox<M> {
    pub(crate) sends: Vec<(NodeIndex, M, SimDuration)>,
    pub(crate) timers: Vec<(SimDuration, u64)>,
    pub(crate) counts: Vec<(Cow<'static, str>, f64)>,
    pub(crate) observations: Vec<(Cow<'static, str>, f64)>,
    pub(crate) traces: Vec<(Cow<'static, str>, String)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox {
            sends: Vec::new(),
            timers: Vec::new(),
            counts: Vec::new(),
            observations: Vec::new(),
            traces: Vec::new(),
        }
    }
}

impl<M> Outbox<M> {
    /// Creates an empty outbox. Mostly useful in unit tests that drive a
    /// state machine without a [`World`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Sends `msg` to `to`; the engine adds network latency.
    pub fn send(&mut self, to: NodeIndex, msg: M) {
        self.sends.push((to, msg, SimDuration::ZERO));
    }

    /// Sends `msg` to `to` after an extra local processing delay, on top of
    /// network latency.
    pub fn send_after(&mut self, to: NodeIndex, msg: M, delay: SimDuration) {
        self.sends.push((to, msg, delay));
    }

    /// Requests a timer that fires after `delay` with the given `tag`.
    pub fn timer(&mut self, delay: SimDuration, tag: u64) {
        self.timers.push((delay, tag));
    }

    /// Increments the named world counter by `by`.
    pub fn count(&mut self, name: impl Into<Cow<'static, str>>, by: f64) {
        self.counts.push((name.into(), by));
    }

    /// Records a sample in the named world histogram.
    pub fn observe(&mut self, name: impl Into<Cow<'static, str>>, value: f64) {
        self.observations.push((name.into(), value));
    }

    /// Records a trace event (kept only when the world's tracer is enabled).
    pub fn trace(&mut self, kind: impl Into<Cow<'static, str>>, detail: impl Into<String>) {
        self.traces.push((kind.into(), detail.into()));
    }

    /// The messages queued so far, for tests that drive state machines
    /// directly: `(destination, message, extra delay)`.
    pub fn sends(&self) -> &[(NodeIndex, M, SimDuration)] {
        &self.sends
    }

    /// The timers requested so far: `(delay, tag)`.
    pub fn timers(&self) -> &[(SimDuration, u64)] {
        &self.timers
    }

    /// The counter increments recorded so far.
    pub fn counts(&self) -> &[(Cow<'static, str>, f64)] {
        &self.counts
    }

    /// The histogram observations recorded so far.
    pub fn observations(&self) -> &[(Cow<'static, str>, f64)] {
        &self.observations
    }

    /// The trace events recorded so far.
    pub fn traces(&self) -> &[(Cow<'static, str>, String)] {
        &self.traces
    }

    /// Removes and returns all queued sends.
    pub fn take_sends(&mut self) -> Vec<(NodeIndex, M, SimDuration)> {
        std::mem::take(&mut self.sends)
    }

    /// Removes and returns all queued timers.
    pub fn take_timers(&mut self) -> Vec<(SimDuration, u64)> {
        std::mem::take(&mut self.timers)
    }

    /// Moves every effect into `dest`, converting each message with `f`.
    ///
    /// This lets a node embed an inner state machine with its own message
    /// type (e.g. the storage layer wrapping the overlay): the inner
    /// machine writes to its own outbox, which is then transferred into
    /// the enclosing node's outbox.
    pub fn transfer_into<T>(self, dest: &mut Outbox<T>, f: impl Fn(M) -> T) {
        for (to, msg, delay) in self.sends {
            dest.sends.push((to, f(msg), delay));
        }
        dest.timers.extend(self.timers);
        dest.counts.extend(self.counts);
        dest.observations.extend(self.observations);
        dest.traces.extend(self.traces);
    }
}

/// All messages arriving at one node at one instant, drained in canonical
/// delivery order (per-link FIFO order is preserved).
///
/// Handed to [`Node::on_batch`]; any messages left undrained when the
/// handler returns are discarded.
#[derive(Debug)]
pub struct Batch<'a, M> {
    inner: std::vec::Drain<'a, (NodeIndex, M)>,
}

impl<M> Iterator for Batch<'_, M> {
    type Item = (NodeIndex, M);

    fn next(&mut self) -> Option<(NodeIndex, M)> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<M> ExactSizeIterator for Batch<'_, M> {}

/// A sans-IO node state machine driven by a [`World`].
///
/// `Node: Send` (with `Msg: Send`) is a deliberate engine-wide bound: the
/// world drains each region's slice on a scoped worker thread when
/// `GLOSS_SIM_THREADS` (or [`World::set_threads`]) asks for it, which moves
/// `&mut` access to node state machines across threads. State machines are
/// plain data in this workspace, so the bound is free; it exists to keep
/// non-`Send` interior (e.g. `Rc`) from creeping into protocol state.
pub trait Node: Send {
    /// The message type exchanged between nodes of this world.
    type Msg: Send;

    /// Handles one input, writing any effects to `out`.
    fn handle(&mut self, now: SimTime, input: Input<Self::Msg>, out: &mut Outbox<Self::Msg>);

    /// Handles every message arriving at this node at the same instant.
    ///
    /// The engine groups same-instant deliveries (e.g. a broker's fan-out
    /// flushed over one connection) into one call so implementations can
    /// amortise per-event overhead. The default forwards each message to
    /// [`handle`](Node::handle), so state machines that don't care about
    /// batching need not implement it.
    fn on_batch(
        &mut self,
        now: SimTime,
        batch: &mut Batch<'_, Self::Msg>,
        out: &mut Outbox<Self::Msg>,
    ) {
        for (from, msg) in batch {
            self.handle(now, Input::Msg { from, msg }, out);
        }
    }
}

/// Event classes, ordered at equal timestamps: control (crash/recover)
/// first, then timers, then link deliveries, then harness injections.
const CLASS_CTRL: u8 = 0;
const CLASS_TIMER: u8 = 1;
const CLASS_LINK: u8 = 2;
const CLASS_HARNESS: u8 = 3;

/// Canonical event key: a total order over pending events that is a pure
/// function of what the event *is*, not of scheduler internals.
///
/// - control events: `a` = harness call sequence;
/// - timers: `a` = node, `b` = that node's timer sequence;
/// - link deliveries: `a` = `(to << 32) | from` (destination-major, so
///   same-instant deliveries to one node are contiguous and batch), `b` =
///   the link's message sequence;
/// - harness injections: `a` = harness call sequence.
///
/// Because each component is derived from deterministic per-node /
/// per-link / per-harness-call counters, the induced order — and therefore
/// the trace — is identical at any region count, bucket width, and thread
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EvKey {
    at: SimTime,
    class: u8,
    a: u64,
    b: u64,
}

#[derive(Debug)]
enum EntryKind<M> {
    Deliver { from: NodeIndex, to: NodeIndex, msg: M },
    Timer { node: NodeIndex, tag: u64 },
}

#[derive(Debug)]
struct Entry<M> {
    key: EvKey,
    kind: EntryKind<M>,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// What a scheduled control event does when it comes due.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum CtrlAction {
    Crash,
    Recover,
    /// Install the partition spec at this index in `World::partition_specs`.
    Partition(u32),
    /// Remove the active partition.
    Heal,
}

/// A crash, recovery, partition, or heal scheduled by the harness. Held
/// outside the region queues: control events change global state
/// (aliveness, link purges, reachability), so they act as barriers between
/// lockstep slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CtrlEntry {
    key: EvKey,
    node: NodeIndex,
    action: CtrlAction,
}

/// A calendar queue: a timer-wheel of `width`-microsecond buckets covering
/// the near future, an `active` heap ordering the current bucket, and an
/// overflow heap for entries beyond the wheel horizon (long timers).
///
/// Pop order is exactly ascending [`EvKey`] order: the wheel partitions by
/// time, the active heap orders within the current bucket, and same-`at`
/// entries always land in the same bucket.
#[derive(Debug)]
struct CalendarQueue<M> {
    /// The current bucket's entries, sorted descending by key (pop from
    /// the end); a sorted vec beats a heap here because one bucket holds
    /// few entries and stragglers are rare.
    active: Vec<Entry<M>>,
    buckets: Vec<Vec<Entry<M>>>,
    /// log2 of the bucket width in µs (widths round up to a power of two
    /// so the per-push bucket math is a shift, not a division).
    shift: u32,
    /// `buckets.len() - 1`; the count is a power of two.
    mask: usize,
    /// Start time (µs) of the bucket at `cursor`; a multiple of the width.
    wheel_start: u64,
    cursor: usize,
    in_buckets: usize,
    overflow: BinaryHeap<Reverse<Entry<M>>>,
    len: usize,
}

impl<M> CalendarQueue<M> {
    fn new(width: u64, buckets: usize) -> Self {
        let shift = width.max(1).next_power_of_two().trailing_zeros();
        let buckets = buckets.max(2).next_power_of_two();
        CalendarQueue {
            active: Vec::new(),
            buckets: (0..buckets).map(|_| Vec::new()).collect(),
            shift,
            mask: buckets - 1,
            wheel_start: 0,
            cursor: 0,
            in_buckets: 0,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    #[inline]
    fn width(&self) -> u64 {
        1 << self.shift
    }

    fn len(&self) -> usize {
        self.len
    }

    fn horizon(&self) -> u64 {
        self.wheel_start.saturating_add(self.width() * self.buckets.len() as u64)
    }

    fn push(&mut self, e: Entry<M>) {
        let t = e.key.at.as_micros();
        self.len += 1;
        if t < self.wheel_start + self.width() {
            self.insert_active(e);
        } else if t < self.horizon() {
            let idx = (t >> self.shift) as usize & self.mask;
            self.buckets[idx].push(e);
            self.in_buckets += 1;
        } else {
            self.overflow.push(Reverse(e));
        }
    }

    /// Inserts a straggler into the sorted active vec (descending order).
    fn insert_active(&mut self, e: Entry<M>) {
        let pos = self.active.partition_point(|x| x.key > e.key);
        self.active.insert(pos, e);
    }

    /// Advances the wheel until the queue's minimum entry (if any) sits on
    /// top of `active`.
    fn settle(&mut self) {
        while self.active.is_empty() && self.len > 0 {
            if self.in_buckets == 0 {
                // Nothing in the wheel: jump straight to the earliest
                // overflow entry instead of sweeping empty buckets.
                let t = self.overflow.peek().expect("len > 0").0.key.at.as_micros();
                self.wheel_start = t & !(self.width() - 1);
            } else {
                self.wheel_start += self.width();
            }
            self.cursor = (self.wheel_start >> self.shift) as usize & self.mask;
            self.refill_from_overflow();
            // Drain in place: bucket capacity persists across wheel laps.
            let (buckets, active) = (&mut self.buckets, &mut self.active);
            let spilled = &mut buckets[self.cursor];
            self.in_buckets -= spilled.len();
            active.append(spilled);
            active.sort_unstable_by_key(|e| Reverse(e.key));
        }
    }

    /// Moves overflow entries that the advancing horizon now covers into
    /// their wheel bucket (or straight into `active`).
    fn refill_from_overflow(&mut self) {
        let horizon = self.horizon();
        while let Some(Reverse(e)) = self.overflow.peek() {
            if e.key.at.as_micros() >= horizon {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked");
            let t = e.key.at.as_micros();
            if t < self.wheel_start + self.width() {
                self.insert_active(e);
            } else {
                let idx = (t >> self.shift) as usize & self.mask;
                self.buckets[idx].push(e);
                self.in_buckets += 1;
            }
        }
    }

    fn peek(&mut self) -> Option<&Entry<M>> {
        self.settle();
        self.active.last()
    }

    fn pop(&mut self) -> Option<Entry<M>> {
        self.settle();
        let e = self.active.pop()?;
        self.len -= 1;
        Some(e)
    }
}

/// Per-link connection state: FIFO ordering, the cached jitter-free
/// latency, and the link's private jitter/loss randomness stream.
///
/// Keyed by destination in a per-sender FNV map, and purged when either
/// endpoint crashes (connections reset; memory is reclaimed).
#[derive(Debug, Clone, Copy)]
struct LinkState {
    /// Scheduled delivery time (µs) of the last message on this link.
    last_at: u64,
    /// Cached jitter-free latency (µs); the haversine runs once per link.
    nominal: u64,
    /// The latency (µs) sampled for the current activation's flush.
    jittered: u64,
    /// Activation id that sampled `jittered`; messages flushed by one
    /// activation over one link share a latency (one TCP segment train).
    /// Activation ids are shard-local: a link belongs to its sender, a
    /// sender to exactly one shard, so the stamp only ever meets its own
    /// shard's strictly-increasing counter.
    last_apply: u64,
    /// splitmix64 state: an order-independent per-link randomness stream.
    rng: u64,
    /// Messages scheduled on this link (canonical tie-break component).
    seq: u64,
}

/// The per-link randomness stream seed: a pure function of the world seed
/// and the link endpoints, so a link draws the same jitter/loss sequence
/// regardless of how activity on other links interleaves. Public so
/// scheduler-equivalence tests can transcribe the engine's sampling.
pub fn link_stream_seed(world_seed: u64, from: NodeIndex, to: NodeIndex) -> u64 {
    let pack = ((from.0 as u64) << 32) | to.0 as u64;
    let mut s = world_seed ^ pack.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(&mut s)
}

/// Slots of the pre-registered hot engine counters, accumulated per shard
/// as plain array adds and merged into the registry at segment boundaries.
const EC_SENT: usize = 0;
const EC_DELIVERED: usize = 1;
const EC_DROPPED_DEAD: usize = 2;
const EC_LOST: usize = 3;
const EC_BAD_DESTINATION: usize = 4;
const EC_BATCHES: usize = 5;
const EC_BATCHED: usize = 6;
const EC_PARTITIONED: usize = 7;
const ENGINE_COUNTERS: usize = 8;

/// Registry handles for the hot engine counters, in slot order.
#[derive(Debug, Clone, Copy)]
struct EngineCounters {
    ids: [CounterId; ENGINE_COUNTERS],
}

/// A harness-installed fault on one directed link, overriding the world's
/// uniform loss and adding latency. Like [`LinkState`], faults are purged
/// when either endpoint crashes (a restarted node gets fresh links).
#[derive(Debug, Clone, Copy, Default)]
struct LinkFault {
    /// Overrides the world loss probability on this link when set.
    loss: Option<f64>,
    /// Extra one-way latency (µs) added to every message on this link.
    extra_us: u64,
}

/// Directed-link key for the fault map.
#[inline]
fn link_key(from: NodeIndex, to: NodeIndex) -> u64 {
    ((from.0 as u64) << 32) | to.0 as u64
}

/// Where a node lives: its region shard and its slot within that shard.
#[derive(Debug, Clone, Copy)]
struct Place {
    region: u32,
    slot: u32,
}

/// Engine state that is immutable while shards drain: worker threads share
/// it by reference. Aliveness and loss are only mutated by the main thread
/// between slices (control events are barriers).
#[derive(Debug)]
struct Shared {
    topology: Topology,
    /// Region shard and shard-local slot of each node.
    place: Vec<Place>,
    alive: Vec<bool>,
    seed: u64,
    loss: f64,
    /// Per-directed-link fault overrides (empty in the common case; the
    /// hot path checks `is_empty` before hashing).
    link_faults: FnvHashMap<u64, LinkFault>,
    /// Active partition: the group id of each node. Messages between
    /// different groups are dropped at send time. `None` = fully
    /// connected.
    partition: Option<Vec<u8>>,
    /// Cached latency-model jitter fraction.
    jitter: f64,
    /// Lockstep slice width (µs): a conservative lookahead no larger than
    /// the minimum cross-shard latency, so cross-region messages are never
    /// due inside the slice that sent them.
    slice_width: u64,
    /// Whether the latency model permits a safe multi-region lookahead.
    can_shard: bool,
    /// Whether node trace records are being collected.
    tracing: bool,
}

/// One region of the world: the calendar queue plus everything a drain of
/// that region mutates. Shards are disjoint, so a slice can drain all of
/// them concurrently on scoped worker threads.
struct Shard<N: Node> {
    queue: CalendarQueue<N::Msg>,
    /// Cached head key of `queue` (kept in sync by push/drain).
    head: Option<EvKey>,
    /// This shard's node state machines, in ascending global index order.
    nodes: Vec<N>,
    /// Per-sender link state, by shard-local slot; purged on crash.
    links: Vec<FnvHashMap<u32, LinkState>>,
    /// Per-node timer sequence numbers (canonical tie-break component).
    timer_seq: Vec<u64>,
    /// Shard-local activation counter; groups one activation's sends per
    /// link for latency sharing.
    apply_seq: u64,
    /// The shard's current time: the key time of the entry being processed
    /// (monotone within the shard; shards advance independently inside a
    /// slice).
    now: SimTime,
    /// Canonical key of the entry currently being processed (trace merge).
    cur_key: EvKey,
    /// Reusable same-instant delivery buffer.
    batch: Vec<(NodeIndex, N::Msg)>,
    /// Reusable activation outbox (capacity persists across activations).
    scratch: Outbox<N::Msg>,
    /// Cross-shard sends buffered per destination shard, flushed at slice
    /// boundaries (the boundary exchange).
    outgoing: Vec<Vec<Entry<N::Msg>>>,
    outgoing_len: usize,
    /// Hot engine counter partial sums (integer-valued adds, so partial
    /// summation is exact), merged in shard order at segment boundaries.
    engine: [f64; ENGINE_COUNTERS],
    /// Node-emitted counter increments, pre-summed per name (bounded by
    /// the distinct-name count, not the event count) and replayed in
    /// shard order, names sorted, on merge.
    counts: FnvHashMap<Cow<'static, str>, f64>,
    /// Node-emitted histogram samples, replayed in shard order on merge.
    observations: Vec<(Cow<'static, str>, f64)>,
    /// Trace records keyed canonically, merged across shards on flush.
    /// Shard-local processing is key-ascending, so this buffer is sorted.
    trace_buf: Vec<(EvKey, NodeIndex, Cow<'static, str>, String)>,
}

/// Pushes into a shard's queue, keeping the cached head in sync.
fn shard_push<N: Node>(shard: &mut Shard<N>, entry: Entry<N::Msg>) {
    if shard.head.is_none_or(|h| entry.key < h) {
        shard.head = Some(entry.key);
    }
    shard.queue.push(entry);
}

/// Drains shard entries up to and including `stop_at`, stopping early at a
/// control barrier, then refreshes the cached head.
fn drain_shard<N: Node>(
    shard: &mut Shard<N>,
    sh: &Shared,
    stop_at: SimTime,
    barrier: Option<EvKey>,
    window_end: u64,
) {
    while let Some(head) = shard.queue.peek().map(|e| e.key) {
        if head.at > stop_at || barrier.is_some_and(|b| head > b) {
            break;
        }
        process_entry(shard, sh, window_end);
    }
    shard.head = shard.queue.peek().map(|e| e.key);
}

/// Pops and handles the head entry of a shard — a timer or a same-instant
/// delivery batch. Sets the shard's `now` to the entry's time.
fn process_entry<N: Node>(shard: &mut Shard<N>, sh: &Shared, window_end: u64) {
    let entry = shard.queue.pop().expect("non-empty");
    let key = entry.key;
    shard.now = key.at;
    shard.cur_key = key;
    match entry.kind {
        EntryKind::Timer { node, tag } => {
            if sh.alive[node.as_usize()] {
                activate(shard, sh, window_end, node, Input::Timer { tag });
            }
        }
        EntryKind::Deliver { from, to, msg } => {
            debug_assert!(shard.batch.is_empty());
            shard.batch.push((from, msg));
            // Gather the rest of the same-instant batch for `to`. Only
            // link deliveries batch: their destination-major keys make
            // same-instant arrivals at one node contiguous in the key
            // order (harness injections are keyed by call order and
            // deliver singly).
            while let Some(next) = shard.queue.peek() {
                let h = next.key;
                if h.at != key.at || h.class != CLASS_LINK || (h.a >> 32) as u32 != to.0 {
                    break;
                }
                let popped = shard.queue.pop().expect("peeked");
                let EntryKind::Deliver { from, msg, .. } = popped.kind else {
                    unreachable!("class-checked Deliver above");
                };
                shard.batch.push((from, msg));
            }
            let n = shard.batch.len() as f64;
            if sh.alive[to.as_usize()] {
                shard.engine[EC_DELIVERED] += n;
                if shard.batch.len() > 1 {
                    shard.engine[EC_BATCHES] += 1.0;
                    shard.engine[EC_BATCHED] += n;
                }
                activate_batch(shard, sh, window_end, to);
            } else {
                shard.engine[EC_DROPPED_DEAD] += n;
                shard.batch.clear();
            }
        }
    }
}

/// Runs one node activation for a single input.
fn activate<N: Node>(
    shard: &mut Shard<N>,
    sh: &Shared,
    window_end: u64,
    index: NodeIndex,
    input: Input<N::Msg>,
) {
    shard.apply_seq += 1;
    let slot = sh.place[index.as_usize()].slot as usize;
    let now = shard.now;
    let (nodes, scratch) = (&mut shard.nodes, &mut shard.scratch);
    nodes[slot].handle(now, input, scratch);
    apply_effects(shard, sh, window_end, index);
}

/// Runs one node activation for a same-instant delivery batch.
fn activate_batch<N: Node>(shard: &mut Shard<N>, sh: &Shared, window_end: u64, to: NodeIndex) {
    shard.apply_seq += 1;
    let slot = sh.place[to.as_usize()].slot as usize;
    let now = shard.now;
    let (nodes, scratch, buf) = (&mut shard.nodes, &mut shard.scratch, &mut shard.batch);
    let mut batch = Batch { inner: buf.drain(..) };
    nodes[slot].on_batch(now, &mut batch, scratch);
    drop(batch);
    apply_effects(shard, sh, window_end, to);
}

/// Drains the scratch outbox of one activation into the schedule and the
/// shard's effect buffers, preserving the outbox's capacity.
fn apply_effects<N: Node>(shard: &mut Shard<N>, sh: &Shared, window_end: u64, from: NodeIndex) {
    if !shard.scratch.sends.is_empty() {
        let mut sends = std::mem::take(&mut shard.scratch.sends);
        for (to, msg, extra) in sends.drain(..) {
            dispatch_send(shard, sh, window_end, from, to, msg, extra);
        }
        shard.scratch.sends = sends;
    }
    if !shard.scratch.timers.is_empty() {
        let mut timers = std::mem::take(&mut shard.scratch.timers);
        for (delay, tag) in timers.drain(..) {
            push_timer(shard, sh, from, delay, tag);
        }
        shard.scratch.timers = timers;
    }
    if !shard.scratch.counts.is_empty() {
        let (scratch, counts) = (&mut shard.scratch, &mut shard.counts);
        for (name, by) in scratch.counts.drain(..) {
            *counts.entry(name).or_insert(0.0) += by;
        }
    }
    if !shard.scratch.observations.is_empty() {
        let (scratch, observations) = (&mut shard.scratch, &mut shard.observations);
        observations.append(&mut scratch.observations);
    }
    if !shard.scratch.traces.is_empty() {
        if sh.tracing {
            let key = shard.cur_key;
            let (scratch, trace_buf) = (&mut shard.scratch, &mut shard.trace_buf);
            for (kind, detail) in scratch.traces.drain(..) {
                trace_buf.push((key, from, kind, detail));
            }
        } else {
            shard.scratch.traces.clear();
        }
    }
}

/// Schedules a timer for a node of this shard.
fn push_timer<N: Node>(
    shard: &mut Shard<N>,
    sh: &Shared,
    node: NodeIndex,
    delay: SimDuration,
    tag: u64,
) {
    let slot = sh.place[node.as_usize()].slot as usize;
    shard.timer_seq[slot] += 1;
    let key = EvKey {
        at: shard.now + delay,
        class: CLASS_TIMER,
        a: node.0 as u64,
        b: shard.timer_seq[slot],
    };
    shard_push(shard, Entry { key, kind: EntryKind::Timer { node, tag } });
}

/// Schedules one send: latency sampling (shared per activation and link),
/// loss, FIFO clamping, and routing into the shard's own queue or its
/// outgoing cross-shard buffer.
fn dispatch_send<N: Node>(
    shard: &mut Shard<N>,
    sh: &Shared,
    window_end: u64,
    from: NodeIndex,
    to: NodeIndex,
    msg: N::Msg,
    extra: SimDuration,
) {
    if to.as_usize() >= sh.place.len() {
        shard.engine[EC_BAD_DESTINATION] += 1.0;
        return;
    }
    if let Some(groups) = &sh.partition {
        if groups[from.as_usize()] != groups[to.as_usize()] {
            shard.engine[EC_PARTITIONED] += 1.0;
            return;
        }
    }
    let sslot = sh.place[from.as_usize()].slot as usize;
    let (topology, seed) = (&sh.topology, sh.seed);
    let ls = shard.links[sslot].entry(to.0).or_insert_with(|| {
        let nominal = topology.nominal_latency(from, to).as_micros();
        LinkState {
            last_at: 0,
            nominal,
            jittered: nominal,
            last_apply: 0,
            rng: link_stream_seed(seed, from, to),
            seq: 0,
        }
    });
    if ls.last_apply != shard.apply_seq {
        // First message of this activation on this link: sample the
        // connection's latency once; the rest of the flush shares it.
        ls.last_apply = shard.apply_seq;
        ls.jittered = if to == from || sh.jitter <= 0.0 {
            ls.nominal
        } else {
            let factor = 1.0 - sh.jitter + 2.0 * sh.jitter * splitmix_unit(&mut ls.rng);
            (ls.nominal as f64 * factor).round() as u64
        };
    }
    let (loss, fault_extra_us) = if sh.link_faults.is_empty() {
        (sh.loss, 0)
    } else {
        match sh.link_faults.get(&link_key(from, to)) {
            Some(f) => (f.loss.unwrap_or(sh.loss), f.extra_us),
            None => (sh.loss, 0),
        }
    };
    if loss > 0.0 && to != from && splitmix_unit(&mut ls.rng) < loss {
        shard.engine[EC_LOST] += 1.0;
        return;
    }
    // Per-link FIFO: links are connection-oriented (the architecture's
    // web-service interfaces run over TCP); equal times are allowed
    // and preserve send order via the link sequence number.
    let mut at = shard.now.as_micros() + ls.jittered + extra.as_micros() + fault_extra_us;
    if at < ls.last_at {
        at = ls.last_at;
    }
    ls.last_at = at;
    ls.seq += 1;
    let key = EvKey {
        at: SimTime::from_micros(at),
        class: CLASS_LINK,
        a: ((to.0 as u64) << 32) | from.0 as u64,
        b: ls.seq,
    };
    shard.engine[EC_SENT] += 1.0;
    let entry = Entry { key, kind: EntryKind::Deliver { from, to, msg } };
    let rt = sh.place[to.as_usize()].region as usize;
    if rt == sh.place[from.as_usize()].region as usize {
        shard_push(shard, entry);
    } else {
        // Cross-shard: buffer for the boundary exchange. With a bounded
        // window the lookahead guarantees the message is not due inside
        // the slice that sent it; the degenerate unbounded window is
        // handled by the sequential outer loop re-flushing between passes.
        debug_assert!(
            window_end == u64::MAX || at >= window_end,
            "cross-region message due inside its own slice: at={at} window_end={window_end}"
        );
        shard.outgoing[rt].push(entry);
        shard.outgoing_len += 1;
    }
}

/// A reusable generation-counting spin barrier. The last thread to arrive
/// runs the slice-leader work, then releases the others. Spins briefly and
/// falls back to `yield_now` so oversubscribed hosts (CI, single-core
/// containers) stay live.
struct SyncPoint {
    arrived: AtomicUsize,
    gen: AtomicU64,
    /// Set when a worker unwinds: spinners panic out instead of waiting
    /// forever for an arrival that can never come.
    poisoned: AtomicBool,
    n: usize,
}

impl SyncPoint {
    fn new(n: usize) -> Self {
        SyncPoint {
            arrived: AtomicUsize::new(0),
            gen: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            n,
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    fn wait(&self, leader_work: impl FnOnce()) {
        let gen = self.gen.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            leader_work();
            self.arrived.store(0, Ordering::Release);
            self.gen.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.gen.load(Ordering::Acquire) == gen {
                if self.poisoned.load(Ordering::Acquire) {
                    panic!("a simulation worker panicked; aborting the threaded segment");
                }
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Poisons the barrier if its worker unwinds (a node handler panicked),
/// so sibling workers abort instead of spinning forever and the scope can
/// propagate the original panic.
struct PoisonGuard<'a>(&'a SyncPoint);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// Per-segment coordination state shared by the slice workers.
struct Coord<M> {
    /// End (µs, exclusive) of the slice currently being drained.
    window: AtomicU64,
    /// Set by the slice leader when the segment is over (control event
    /// due, target time reached, queues empty, or window overflow).
    stop: AtomicBool,
    sync: SyncPoint,
    /// Per-worker minimum pending event time after each slice.
    mins: Vec<AtomicU64>,
    /// Per-shard mailboxes for cross-shard sends, drained by the owning
    /// worker at the next slice boundary.
    mailboxes: Vec<Mutex<Vec<Entry<M>>>>,
    slice: u64,
    t_us: u64,
    /// Time of the next control event (`u64::MAX` when none). Ties go to
    /// the control event: its key class sorts first.
    ctrl_at: u64,
}

impl<M> Coord<M> {
    /// Slice-leader work: compute the global minimum pending time and
    /// either advance the lockstep window or end the segment.
    fn advance(&self) {
        let m = self.mins.iter().map(|a| a.load(Ordering::Acquire)).min().unwrap_or(u64::MAX);
        if m == u64::MAX || m > self.t_us || self.ctrl_at <= m {
            self.stop.store(true, Ordering::Release);
            return;
        }
        let aligned = (m / self.slice).saturating_add(1).saturating_mul(self.slice);
        if aligned <= m || aligned == u64::MAX {
            // Alignment overflow (saturation lands on the unbounded-window
            // sentinel): fall back to the sequential degenerate path.
            self.stop.store(true, Ordering::Release);
        } else {
            self.window.store(aligned, Ordering::Release);
        }
    }
}

/// The loop one worker runs for a threaded segment: drain own shards for
/// the current slice, flush cross-shard sends into mailboxes, synchronise,
/// deliver own mailboxes, publish the local minimum, synchronise again
/// while the leader advances the window.
fn worker_loop<N: Node>(
    wid: usize,
    mut chunk: Vec<(usize, &mut Shard<N>)>,
    sh: &Shared,
    coord: &Coord<N::Msg>,
    ctrl_key: Option<EvKey>,
) {
    let _guard = PoisonGuard(&coord.sync);
    loop {
        let window_end = coord.window.load(Ordering::Acquire);
        let stop_at = SimTime::from_micros(coord.t_us.min(window_end - 1));
        for (_, shard) in chunk.iter_mut() {
            if shard.head.is_some_and(|h| h.at <= stop_at && ctrl_key.is_none_or(|b| h <= b)) {
                drain_shard(shard, sh, stop_at, ctrl_key, window_end);
            }
            if shard.outgoing_len > 0 {
                for (dst, buf) in shard.outgoing.iter_mut().enumerate() {
                    if !buf.is_empty() {
                        coord.mailboxes[dst].lock().expect("worker panicked").append(buf);
                    }
                }
                shard.outgoing_len = 0;
            }
        }
        // Barrier 1: all cross-shard sends of this slice are in mailboxes.
        coord.sync.wait(|| {});
        let mut local_min = u64::MAX;
        for (r, shard) in chunk.iter_mut() {
            let mut mb = coord.mailboxes[*r].lock().expect("worker panicked");
            for e in mb.drain(..) {
                shard_push(shard, e);
            }
            drop(mb);
            if let Some(h) = shard.head {
                local_min = local_min.min(h.at.as_micros());
            }
        }
        coord.mins[wid].store(local_min, Ordering::Release);
        // Barrier 2: the last arriver advances the window (or stops).
        coord.sync.wait(|| coord.advance());
        if coord.stop.load(Ordering::Acquire) {
            return;
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum NextSrc {
    Ctrl,
    Region(usize),
}

/// Parses a `GLOSS_SIM_THREADS`-style value; anything unset, unparsable,
/// or below 1 means 1 (the sequential path).
fn threads_from_env(value: Option<&str>) -> usize {
    value.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n >= 1).unwrap_or(1)
}

/// Computes the base lockstep slice width from the latency model: the
/// minimum cross-node latency (base minus full jitter), floored. The
/// jittered latency of any message is at least this floor
/// (`round(nominal * f)` with `nominal >= base` and `f >= 1 - jitter`), so a
/// slice of exactly the floor guarantees no cross-region message is due
/// inside its own slice. Returns `(width, can_shard)`; models without a
/// positive latency floor cannot shard safely and run as a single region.
fn lookahead(topology: &Topology) -> (u64, bool) {
    let lm = topology.latency_model();
    let floor = (lm.base.as_micros() as f64 * (1.0 - lm.jitter)).floor() as u64;
    if floor < 2 {
        (1, false)
    } else {
        (floor, true)
    }
}

/// The simulation driver: a topology, one state machine per node, and
/// per-region bucketed event queues merged in canonical key order —
/// drained sequentially or on scoped worker threads.
///
/// See the [crate docs](crate) for a complete example and the
/// [module docs](self) for the scheduler architecture.
pub struct World<N: Node> {
    shared: Shared,
    shards: Vec<Shard<N>>,
    /// Crash/recover/partition events (global barriers).
    ctrl: BinaryHeap<Reverse<CtrlEntry>>,
    /// Partition group vectors referenced by scheduled
    /// [`CtrlAction::Partition`] events.
    partition_specs: Vec<Vec<u8>>,
    /// Orders harness calls (injects, crashes, recoveries).
    harness_seq: u64,
    /// End (µs, exclusive) of the slice currently being processed.
    window_end: u64,
    now: SimTime,
    rng: SimRng,
    metrics: MetricsRegistry,
    ids: EngineCounters,
    tracer: Tracer,
    started: bool,
    /// Requested worker thread count (effective = min with shard count).
    threads: usize,
    bucket_width: u64,
    bucket_count: usize,
    /// Scratch for merging per-shard trace buffers in key order.
    trace_merge: Vec<(EvKey, NodeIndex, Cow<'static, str>, String)>,
}

impl<N: Node> std::fmt::Debug for World<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("nodes", &self.shared.place.len())
            .field("regions", &self.shards.len())
            .field("threads", &self.threads)
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("slice_micros", &self.shared.slice_width)
            .finish_non_exhaustive()
    }
}

/// Default wheel geometry: 256 buckets of 1024 µs cover ~262 ms of near
/// future; longer timers take the overflow heap. Buckets are coarse on
/// purpose: the wheel advance (one bucket at a time) must stay cheap on
/// sparse stretches, and the sorted active vec holding one bucket's
/// entries stays small either way.
const DEFAULT_BUCKET_WIDTH: u64 = 1024;
const DEFAULT_BUCKET_COUNT: usize = 256;

impl<N: Node> World<N> {
    /// Creates a world over `topology` with one state machine per node.
    ///
    /// Nodes are sharded into one region per distinct topology region name
    /// (use [`set_region_count`](Self::set_region_count) to override), and
    /// the worker thread count defaults to `GLOSS_SIM_THREADS` (default 1,
    /// the sequential path; see [`set_threads`](Self::set_threads)).
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the topology size.
    pub fn new(topology: Topology, seed: u64, nodes: Vec<N>) -> Self {
        assert_eq!(topology.len(), nodes.len(), "one state machine per topology node");
        let n = nodes.len();
        let (slice_width, can_shard) = lookahead(&topology);
        let jitter = topology.latency_model().jitter;
        let mut metrics = MetricsRegistry::new();
        let ids = EngineCounters {
            ids: [
                metrics.register_counter("sim.messages_sent"),
                metrics.register_counter("sim.messages_delivered"),
                metrics.register_counter("sim.messages_dropped_dead"),
                metrics.register_counter("sim.messages_lost"),
                metrics.register_counter("sim.bad_destination"),
                metrics.register_counter("sim.batches"),
                metrics.register_counter("sim.batched_messages"),
                metrics.register_counter("sim.messages_partitioned"),
            ],
        };
        let mut world = World {
            shared: Shared {
                topology,
                place: vec![Place { region: 0, slot: 0 }; n],
                alive: vec![true; n],
                seed,
                loss: 0.0,
                link_faults: FnvHashMap::default(),
                partition: None,
                jitter,
                slice_width,
                can_shard,
                tracing: false,
            },
            shards: Vec::new(),
            ctrl: BinaryHeap::new(),
            partition_specs: Vec::new(),
            harness_seq: 0,
            window_end: slice_width,
            now: SimTime::ZERO,
            rng: SimRng::new(seed).fork("world"),
            metrics,
            ids,
            tracer: Tracer::disabled(),
            started: false,
            threads: threads_from_env(std::env::var("GLOSS_SIM_THREADS").ok().as_deref()),
            bucket_width: DEFAULT_BUCKET_WIDTH,
            bucket_count: DEFAULT_BUCKET_COUNT,
            trace_merge: Vec::new(),
        };
        world.distribute(nodes, usize::MAX);
        world
    }

    /// (Re)partitions nodes into at most `want` region shards, rebuilding
    /// the shard structures and refining the lockstep lookahead.
    fn distribute(&mut self, nodes: Vec<N>, want: usize) {
        debug_assert_eq!(
            self.shards.iter().map(|s| s.queue.len() + s.outgoing_len).sum::<usize>(),
            0,
            "repartition requires empty queues"
        );
        let mut names: Vec<&str> = self.shared.topology.iter().map(|i| i.region.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        let limit = if self.shared.can_shard { names.len() } else { 1 };
        let count = want.clamp(1, limit.max(1));
        let shard_of: BTreeMap<&str, u32> =
            names.iter().enumerate().map(|(i, nm)| (*nm, (i % count) as u32)).collect();
        let regions: Vec<u32> =
            self.shared.topology.iter().map(|info| shard_of[info.region.as_str()]).collect();
        let mut slots = vec![0u32; count];
        for (i, &region) in regions.iter().enumerate() {
            let r = region as usize;
            self.shared.place[i] = Place { region, slot: slots[r] };
            slots[r] += 1;
        }
        self.shards = (0..count)
            .map(|r| Shard {
                queue: CalendarQueue::new(self.bucket_width, self.bucket_count),
                head: None,
                nodes: Vec::with_capacity(slots[r] as usize),
                links: (0..slots[r]).map(|_| FnvHashMap::default()).collect(),
                timer_seq: vec![0; slots[r] as usize],
                apply_seq: 0,
                now: self.now,
                cur_key: EvKey { at: SimTime::ZERO, class: 0, a: 0, b: 0 },
                batch: Vec::new(),
                scratch: Outbox::new(),
                outgoing: (0..count).map(|_| Vec::new()).collect(),
                outgoing_len: 0,
                engine: [0.0; ENGINE_COUNTERS],
                counts: FnvHashMap::default(),
                observations: Vec::new(),
                trace_buf: Vec::new(),
            })
            .collect();
        for (i, node) in nodes.into_iter().enumerate() {
            // Ascending global index per shard == ascending slot order.
            self.shards[regions[i] as usize].nodes.push(node);
        }
        self.refine_slice_width();
        if !self.started {
            self.window_end = self.shared.slice_width;
        }
    }

    /// Widens the lockstep slice beyond the base latency floor using a
    /// cheap spherical lower bound on the minimum cross-shard distance
    /// (per-shard centre + radius, triangle inequality). Wider slices mean
    /// fewer barriers; any safe lower bound preserves the lookahead
    /// invariant, and the slice width never affects the schedule.
    fn refine_slice_width(&mut self) {
        let (base_width, can_shard) = lookahead(&self.shared.topology);
        self.shared.can_shard = can_shard;
        let mut width = base_width;
        let lm = self.shared.topology.latency_model();
        if can_shard && self.shards.len() > 1 && lm.per_km_micros > 0.0 {
            let count = self.shards.len();
            let mut centre: Vec<Option<GeoPoint>> = vec![None; count];
            let mut radius = vec![0.0f64; count];
            for info in self.shared.topology.iter() {
                let r = self.shared.place[info.index.as_usize()].region as usize;
                match centre[r] {
                    None => centre[r] = Some(info.geo),
                    Some(c) => radius[r] = radius[r].max(c.distance_km(info.geo)),
                }
            }
            let mut min_km = f64::INFINITY;
            for a in 0..count {
                for b in a + 1..count {
                    if let (Some(ca), Some(cb)) = (centre[a], centre[b]) {
                        min_km = min_km.min((ca.distance_km(cb) - radius[a] - radius[b]).max(0.0));
                    }
                }
            }
            if min_km.is_finite() && min_km > 0.0 {
                let floor = ((lm.base.as_micros() as f64 + min_km * lm.per_km_micros)
                    * (1.0 - lm.jitter))
                    .floor() as u64;
                // -2 µs covers sub-µs rounding in `nominal` and the
                // round-to-nearest of the jitter sample.
                width = width.max(floor.saturating_sub(2)).max(base_width);
            }
        }
        self.shared.slice_width = width.max(1);
    }

    /// Pulls every node state machine back out in global index order.
    fn take_nodes(&mut self) -> Vec<N> {
        let n = self.shared.place.len();
        let mut per_shard: Vec<std::vec::IntoIter<N>> =
            self.shards.iter_mut().map(|s| std::mem::take(&mut s.nodes).into_iter()).collect();
        (0..n)
            .map(|i| {
                per_shard[self.shared.place[i].region as usize].next().expect("one node per slot")
            })
            .collect()
    }

    /// Sets the number of region shards (clamped to the number of distinct
    /// topology region names). The schedule is region-count invariant:
    /// traces are byte-identical at any setting.
    ///
    /// # Panics
    ///
    /// Panics if the world has started or events are pending.
    pub fn set_region_count(&mut self, count: usize) {
        assert!(!self.started && self.pending() == 0, "set_region_count before starting the world");
        let nodes = self.take_nodes();
        self.distribute(nodes, count.max(1));
    }

    /// Sets the calendar-queue geometry (bucket width in µs, bucket
    /// count). The schedule is bucket-width invariant: traces are
    /// byte-identical at any setting.
    ///
    /// # Panics
    ///
    /// Panics if the world has started or events are pending.
    pub fn set_wheel_geometry(&mut self, width_micros: u64, buckets: usize) {
        assert!(
            !self.started && self.pending() == 0,
            "set_wheel_geometry before starting the world"
        );
        self.bucket_width = width_micros.max(1);
        self.bucket_count = buckets.max(2);
        for shard in &mut self.shards {
            shard.queue = CalendarQueue::new(self.bucket_width, self.bucket_count);
            shard.head = None;
        }
    }

    /// Sets the worker thread count for bulk runs (`run_until`). The
    /// effective count is capped at the region count; 1 (the default, or
    /// via `GLOSS_SIM_THREADS`) keeps the sequential path. Thread count
    /// never changes outcomes — traces, counters, and schedules are
    /// byte-identical at any setting — only wall-clock time.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The configured worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of region shards.
    pub fn region_count(&self) -> usize {
        self.shards.len()
    }

    /// The region shard a node belongs to.
    pub fn region_of(&self, node: NodeIndex) -> usize {
        self.shared.place[node.as_usize()].region as usize
    }

    /// The lockstep slice width in microseconds (the cross-region
    /// lookahead; the synchronisation quantum of threaded execution).
    pub fn slice_micros(&self) -> u64 {
        self.shared.slice_width
    }

    /// Live per-link connection-state entries (bounded by churn purging;
    /// see the link-state leak regression test).
    pub fn link_state_count(&self) -> usize {
        self.shards.iter().map(|s| s.links.iter().map(FnvHashMap::len).sum::<usize>()).sum()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The physical topology.
    pub fn topology(&self) -> &Topology {
        &self.shared.topology
    }

    /// Immutable access to a node's state machine.
    pub fn node(&self, index: NodeIndex) -> &N {
        let p = self.shared.place[index.as_usize()];
        &self.shards[p.region as usize].nodes[p.slot as usize]
    }

    /// Mutable access to a node's state machine (for test setup and for
    /// client APIs layered above the world).
    pub fn node_mut(&mut self, index: NodeIndex) -> &mut N {
        let p = self.shared.place[index.as_usize()];
        &mut self.shards[p.region as usize].nodes[p.slot as usize]
    }

    /// Iterates over all node state machines in global index order.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.shared.place.iter().map(|p| &self.shards[p.region as usize].nodes[p.slot as usize])
    }

    /// Whether `node` is currently alive.
    pub fn is_alive(&self, node: NodeIndex) -> bool {
        self.shared.alive[node.as_usize()]
    }

    /// Sets the independent per-message loss probability (ignores loopback).
    pub fn set_loss(&mut self, p: f64) {
        self.shared.loss = p.clamp(0.0, 1.0);
    }

    /// Overrides the loss probability on the directed link `from → to`,
    /// shadowing the world-level loss for that link only. A harness-level
    /// call: apply it between runs, like [`set_loss`](Self::set_loss).
    pub fn set_link_loss(&mut self, from: NodeIndex, to: NodeIndex, p: f64) {
        self.shared.link_faults.entry(link_key(from, to)).or_default().loss =
            Some(p.clamp(0.0, 1.0));
    }

    /// Adds extra one-way latency to every message on the directed link
    /// `from → to` (on top of the topology latency and jitter).
    pub fn set_link_latency_extra(&mut self, from: NodeIndex, to: NodeIndex, d: SimDuration) {
        self.shared.link_faults.entry(link_key(from, to)).or_default().extra_us = d.as_micros();
    }

    /// Removes any fault override on the directed link `from → to`.
    pub fn clear_link_fault(&mut self, from: NodeIndex, to: NodeIndex) {
        self.shared.link_faults.remove(&link_key(from, to));
    }

    /// Removes every per-link fault override.
    pub fn clear_link_faults(&mut self) {
        self.shared.link_faults.clear();
    }

    /// Schedules a network partition at `at`: nodes with different group
    /// ids in `groups` cannot exchange messages while the partition is
    /// active (sends are dropped and counted as `sim.messages_partitioned`).
    /// If `heal_at` is given, the partition heals at that time; otherwise
    /// it lasts until [`heal_at`](Self::heal_at) or forever. Partitions
    /// apply as control barriers, so they are deterministic at any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `groups.len()` differs from the node count, if `at` is in
    /// the past, or if `heal_at` precedes `at`.
    pub fn partition_at(&mut self, at: SimTime, heal_at: Option<SimTime>, groups: Vec<u8>) {
        assert_eq!(groups.len(), self.shared.place.len(), "one group id per node");
        assert!(at >= self.now, "cannot schedule into the past");
        let idx = self.partition_specs.len() as u32;
        self.partition_specs.push(groups);
        self.harness_seq += 1;
        let key = EvKey { at, class: CLASS_CTRL, a: self.harness_seq, b: 0 };
        self.ctrl.push(Reverse(CtrlEntry {
            key,
            node: NodeIndex(0),
            action: CtrlAction::Partition(idx),
        }));
        if let Some(heal) = heal_at {
            assert!(heal >= at, "heal precedes partition");
            self.heal_at(heal);
        }
    }

    /// Schedules a partition that isolates the named topology regions
    /// from the rest of the world (convenience over
    /// [`partition_at`](Self::partition_at)).
    pub fn partition_regions_at(
        &mut self,
        at: SimTime,
        heal_at: Option<SimTime>,
        regions: &[&str],
    ) {
        let groups = self
            .shared
            .topology
            .iter()
            .map(|info| u8::from(regions.contains(&info.region.as_str())))
            .collect();
        self.partition_at(at, heal_at, groups);
    }

    /// Schedules the active partition (if any at that time) to heal at
    /// `at`.
    pub fn heal_at(&mut self, at: SimTime) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.harness_seq += 1;
        let key = EvKey { at, class: CLASS_CTRL, a: self.harness_seq, b: 0 };
        self.ctrl.push(Reverse(CtrlEntry { key, node: NodeIndex(0), action: CtrlAction::Heal }));
    }

    /// Whether a partition is currently active.
    pub fn partitioned(&self) -> bool {
        self.shared.partition.is_some()
    }

    /// Enables trace collection (with a maximum retained event count).
    pub fn enable_tracing(&mut self, cap: usize) {
        self.tracer = Tracer::enabled(cap);
        self.shared.tracing = true;
    }

    /// The collected trace.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// World-level metrics (message counts plus anything nodes observed).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the metrics registry, for harness-level records.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// A deterministic RNG fork for harness-level decisions.
    pub fn fork_rng(&self, label: &str) -> SimRng {
        self.rng.fork(label)
    }

    /// Delivers `Start` to every alive node at the current time. Called
    /// implicitly by the run methods if not called explicitly.
    pub fn start_all(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.shared.place.len() {
            if self.shared.alive[i] {
                self.activate_now(NodeIndex(i as u32), Input::Start);
            }
        }
    }

    /// Runs one main-thread activation (start, recovery) at the world's
    /// current time and merges its effects immediately, mirroring the
    /// pre-shard engine's direct application order.
    fn activate_now(&mut self, node: NodeIndex, input: Input<N::Msg>) {
        let r = self.shared.place[node.as_usize()].region as usize;
        let window_end = self.window_end;
        let now = self.now;
        {
            let (shards, shared) = (&mut self.shards, &self.shared);
            let shard = &mut shards[r];
            shard.now = now;
            // Synthetic key: only `.at` is observable (trace timestamps);
            // single-activation merges preserve emission order.
            shard.cur_key = EvKey { at: now, class: CLASS_CTRL, a: u64::MAX, b: 0 };
            activate(shard, shared, window_end, node, input);
        }
        self.merge_shard(r);
    }

    fn push_harness_deliver(&mut self, at: SimTime, from: NodeIndex, to: NodeIndex, msg: N::Msg) {
        self.harness_seq += 1;
        let key = EvKey { at, class: CLASS_HARNESS, a: self.harness_seq, b: 0 };
        let r = self.shared.place[to.as_usize()].region as usize;
        // Harness injections go straight into the destination queue: they
        // happen between run calls, never inside a slice.
        shard_push(&mut self.shards[r], Entry { key, kind: EntryKind::Deliver { from, to, msg } });
    }

    /// Injects a message from `from` to `to`, subject to normal latency.
    pub fn inject(&mut self, from: NodeIndex, to: NodeIndex, msg: N::Msg) {
        let latency = self.shared.topology.sample_latency(from, to, &mut self.rng);
        let at = self.now + latency;
        self.push_harness_deliver(at, from, to, msg);
    }

    /// Schedules a message to arrive at `to` at the absolute time `at`.
    ///
    /// Used by workload generators that precompute event streams.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn inject_at(&mut self, at: SimTime, from: NodeIndex, to: NodeIndex, msg: N::Msg) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.push_harness_deliver(at, from, to, msg);
    }

    /// Schedules a crash of `node` at time `at`. In-flight messages already
    /// addressed to it are dropped on delivery; its timers are discarded.
    pub fn crash_at(&mut self, at: SimTime, node: NodeIndex) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.harness_seq += 1;
        let key = EvKey { at, class: CLASS_CTRL, a: self.harness_seq, b: 0 };
        self.ctrl.push(Reverse(CtrlEntry { key, node, action: CtrlAction::Crash }));
    }

    /// Schedules a recovery of `node` at time `at`; the node receives
    /// [`Input::Start`] when it recovers.
    pub fn recover_at(&mut self, at: SimTime, node: NodeIndex) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.harness_seq += 1;
        let key = EvKey { at, class: CLASS_CTRL, a: self.harness_seq, b: 0 };
        self.ctrl.push(Reverse(CtrlEntry { key, node, action: CtrlAction::Recover }));
    }

    /// Crashes `node` immediately, resetting its link connection state
    /// (both outbound and inbound entries are reclaimed).
    pub fn crash(&mut self, node: NodeIndex) {
        self.shared.alive[node.as_usize()] = false;
        self.metrics.inc("sim.crashes", 1.0);
        let p = self.shared.place[node.as_usize()];
        self.shards[p.region as usize].links[p.slot as usize].clear();
        for shard in &mut self.shards {
            for senders in &mut shard.links {
                senders.remove(&node.0);
            }
        }
        if !self.shared.link_faults.is_empty() {
            // Link faults model conditions of the *connection*; a restarted
            // node gets fresh links, so purge faults like link state.
            let n = node.0 as u64;
            self.shared.link_faults.retain(|k, _| (k >> 32) != n && (k & 0xffff_ffff) != n);
        }
    }

    /// Recovers `node` immediately, delivering [`Input::Start`].
    pub fn recover(&mut self, node: NodeIndex) {
        if !self.shared.alive[node.as_usize()] {
            self.shared.alive[node.as_usize()] = true;
            self.metrics.inc("sim.recoveries", 1.0);
            self.activate_now(node, Input::Start);
        }
    }

    /// Merges one shard's counter partials into the registry.
    fn merge_counters(&mut self, r: usize) {
        let shard = &mut self.shards[r];
        for (slot, id) in self.ids.ids.iter().enumerate() {
            let v = shard.engine[slot];
            if v != 0.0 {
                self.metrics.add(*id, v);
                shard.engine[slot] = 0.0;
            }
        }
        if !shard.counts.is_empty() {
            let mut counts: Vec<(Cow<'static, str>, f64)> = shard.counts.drain().collect();
            counts.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            for (name, by) in counts {
                self.metrics.inc(&name, by);
            }
        }
        for (name, v) in shard.observations.drain(..) {
            self.metrics.observe(&name, v);
        }
    }

    /// Merges one shard's buffered effects (per-event path: the shard's
    /// trace buffer is already in canonical order).
    fn merge_shard(&mut self, r: usize) {
        self.merge_counters(r);
        let shard = &mut self.shards[r];
        if !shard.trace_buf.is_empty() {
            for (key, node, kind, detail) in shard.trace_buf.drain(..) {
                self.tracer.record(key.at, node, &kind, detail);
            }
        }
    }

    /// Merges every shard's buffered effects in shard order, interleaving
    /// trace records back into canonical key order (segment boundaries are
    /// time-monotone, so per-segment flushes concatenate correctly).
    fn merge_all(&mut self) {
        for r in 0..self.shards.len() {
            self.merge_counters(r);
        }
        let total: usize = self.shards.iter().map(|s| s.trace_buf.len()).sum();
        if total > 0 {
            let mut buf = std::mem::take(&mut self.trace_merge);
            buf.reserve(total);
            for shard in &mut self.shards {
                buf.append(&mut shard.trace_buf);
            }
            // Stable: same-key records (one activation) keep emission
            // order; keys are globally unique across shards.
            buf.sort_by_key(|r| r.0);
            for (key, node, kind, detail) in buf.drain(..) {
                self.tracer.record(key.at, node, &kind, detail);
            }
            self.trace_merge = buf;
        }
    }

    /// Moves every shard's buffered cross-shard entries into destination
    /// queues (the slice-boundary handover of the sequential path).
    fn flush_outgoing(&mut self) {
        if self.shards.iter().all(|s| s.outgoing_len == 0) {
            return;
        }
        let count = self.shards.len();
        for src in 0..count {
            if self.shards[src].outgoing_len == 0 {
                continue;
            }
            for dst in 0..count {
                if self.shards[src].outgoing[dst].is_empty() {
                    continue;
                }
                let mut buf = std::mem::take(&mut self.shards[src].outgoing[dst]);
                for e in buf.drain(..) {
                    shard_push(&mut self.shards[dst], e);
                }
                self.shards[src].outgoing[dst] = buf;
            }
            self.shards[src].outgoing_len = 0;
        }
    }

    /// Whether the lockstep window currently covers time `t` (µs).
    fn window_contains(&self, t: u64) -> bool {
        t < self.window_end
            && (self.window_end == u64::MAX || t >= self.window_end - self.shared.slice_width)
    }

    /// Moves the window to the slice containing time `t` (µs). This jumps
    /// forward over empty slices, and also back: a run can stop
    /// mid-stretch and harness activity (injects between run calls) may
    /// then schedule work before the speculatively advanced window.
    /// Outgoing entries are always due at or after the window that
    /// buffered them, so retreating is safe.
    fn move_window(&mut self, t: u64) {
        let w = self.shared.slice_width;
        let aligned = (t / w).saturating_add(1).saturating_mul(w);
        // Alignment overflow (pathological far-future event): fall back to
        // one unbounded window.
        self.window_end = if aligned <= t { u64::MAX } else { aligned };
    }

    /// The minimal pending key over the control heap and all shard heads.
    fn scan_min(&self) -> Option<(EvKey, NextSrc)> {
        let mut best: Option<(EvKey, NextSrc)> = self.ctrl.peek().map(|r| (r.0.key, NextSrc::Ctrl));
        for (r, shard) in self.shards.iter().enumerate() {
            if let Some(k) = shard.head {
                if best.is_none_or(|(bk, _)| k < bk) {
                    best = Some((k, NextSrc::Region(r)));
                }
            }
        }
        best
    }

    /// Positions the scheduler on the next canonical event: flushes the
    /// boundary exchange and moves the lockstep window as needed, then
    /// returns the minimal key over the control heap and all shard queues.
    fn position_next(&mut self) -> Option<(EvKey, NextSrc)> {
        loop {
            if self.window_end == u64::MAX && self.shards.iter().any(|s| s.outgoing_len > 0) {
                // Unbounded window: there are no further slice boundaries
                // to flush at, so buffered cross-shard sends must become
                // visible before the minimum is trusted (the pre-shard
                // engine direct-pushed these).
                self.flush_outgoing();
            }
            let Some((k, src)) = self.scan_min() else {
                if self.shards.iter().any(|s| s.outgoing_len > 0) {
                    self.flush_outgoing();
                    continue;
                }
                return None;
            };
            if self.window_contains(k.at.as_micros()) {
                return Some((k, src));
            }
            if self.shards.iter().any(|s| s.outgoing_len > 0) {
                self.flush_outgoing();
                continue;
            }
            self.move_window(k.at.as_micros());
        }
    }

    /// Processes the next queued event — a crash/recovery, a timer, or a
    /// same-instant delivery batch. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        self.start_all();
        let Some((key, src)) = self.position_next() else {
            return false;
        };
        self.step_at(key, src);
        true
    }

    /// Processes the event `position_next` selected.
    fn step_at(&mut self, key: EvKey, src: NextSrc) {
        debug_assert!(key.at >= self.now, "time went backwards");
        self.now = key.at;
        match src {
            NextSrc::Ctrl => {
                let Reverse(ctrl) = self.ctrl.pop().expect("peeked");
                match ctrl.action {
                    CtrlAction::Crash => self.crash(ctrl.node),
                    CtrlAction::Recover => self.recover(ctrl.node),
                    CtrlAction::Partition(idx) => {
                        self.shared.partition = Some(self.partition_specs[idx as usize].clone());
                        self.metrics.inc("sim.partitions", 1.0);
                    }
                    CtrlAction::Heal => {
                        if self.shared.partition.take().is_some() {
                            self.metrics.inc("sim.heals", 1.0);
                        }
                    }
                }
            }
            NextSrc::Region(r) => {
                let window_end = self.window_end;
                {
                    let (shards, shared) = (&mut self.shards, &self.shared);
                    let shard = &mut shards[r];
                    process_entry(shard, shared, window_end);
                    shard.head = shard.queue.peek().map(|e| e.key);
                }
                self.merge_shard(r);
            }
        }
    }

    /// Runs until the queue is empty or simulated time reaches `t`.
    /// Afterwards `now() == t` unless the queue emptied earlier.
    ///
    /// Runs slice by slice in *segments* (stretches free of control
    /// events): each region drains its own queue for the current lockstep
    /// window — sequentially, or concurrently on scoped worker threads
    /// when [`set_threads`](Self::set_threads) / `GLOSS_SIM_THREADS` asks
    /// for more than one — crash/recover events act as barriers between
    /// segments, and the boundary exchange is flushed between windows.
    /// With tracing on, trace records are merged back into canonical key
    /// order at each segment boundary, so the trace is byte-identical at
    /// any region count and any thread count.
    pub fn run_until(&mut self, t: SimTime) {
        self.start_all();
        loop {
            self.flush_outgoing();
            let Some((k, src)) = self.scan_min() else {
                break;
            };
            if k.at > t {
                break;
            }
            if let NextSrc::Ctrl = src {
                // Everything ordered before the control event has been
                // processed (it is the global minimum): apply it through
                // the one authoritative control path.
                self.step_at(k, src);
                continue;
            }
            if !self.window_contains(k.at.as_micros()) {
                self.move_window(k.at.as_micros());
            }
            if self.window_end == u64::MAX {
                // Degenerate unbounded window (alignment overflow): drain
                // everything due up to `t` honouring control barriers;
                // cross-shard traffic flushes between outer-loop passes.
                let barrier = self.ctrl.peek().map(|c| c.0.key);
                for r in 0..self.shards.len() {
                    let (shards, shared) = (&mut self.shards, &self.shared);
                    drain_shard(&mut shards[r], shared, t, barrier, u64::MAX);
                    // Flush after every shard: with no further slice
                    // boundaries, later-drained shards must see earlier
                    // shards' sends in this same pass (the pre-shard
                    // engine direct-pushed these).
                    self.flush_outgoing();
                }
                self.merge_all();
                continue;
            }
            let workers = self.threads.min(self.shards.len());
            if workers > 1 {
                self.run_segment_threaded(t, workers);
            } else {
                self.run_segment_sequential(t);
            }
            self.merge_all();
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Drains whole windows on the main thread until a control event comes
    /// due, `t` is reached, the queues empty, or the window degenerates.
    fn run_segment_sequential(&mut self, t: SimTime) {
        loop {
            self.flush_outgoing();
            let Some((k, src)) = self.scan_min() else {
                return;
            };
            if k.at > t || matches!(src, NextSrc::Ctrl) {
                return;
            }
            if !self.window_contains(k.at.as_micros()) {
                self.move_window(k.at.as_micros());
                if self.window_end == u64::MAX {
                    return;
                }
            }
            let barrier = self.ctrl.peek().map(|c| c.0.key);
            let stop_at = SimTime::from_micros(t.as_micros().min(self.window_end - 1));
            let window_end = self.window_end;
            let (shards, shared) = (&mut self.shards, &self.shared);
            for shard in shards.iter_mut() {
                // The cached head gates the drain: idle shards skip the
                // queue peek + refresh entirely.
                if shard.head.is_some_and(|h| h.at <= stop_at && barrier.is_none_or(|b| h <= b)) {
                    drain_shard(shard, shared, stop_at, barrier, window_end);
                }
            }
        }
    }

    /// Drains whole windows with one scoped worker thread pool: shards are
    /// distributed round-robin over `workers` threads (the calling thread
    /// is worker 0), which synchronise per slice and exchange cross-shard
    /// messages through mailboxes. Ends on the same conditions as the
    /// sequential segment; per-shard work and merge order are identical,
    /// so outcomes are byte-identical.
    fn run_segment_threaded(&mut self, t: SimTime, workers: usize) {
        let ctrl_key = self.ctrl.peek().map(|c| c.0.key);
        let coord = Coord {
            window: AtomicU64::new(self.window_end),
            stop: AtomicBool::new(false),
            sync: SyncPoint::new(workers),
            mins: (0..workers).map(|_| AtomicU64::new(u64::MAX)).collect(),
            mailboxes: (0..self.shards.len()).map(|_| Mutex::new(Vec::new())).collect(),
            slice: self.shared.slice_width,
            t_us: t.as_micros(),
            ctrl_at: ctrl_key.map_or(u64::MAX, |k| k.at.as_micros()),
        };
        let shared = &self.shared;
        let mut chunks: Vec<Vec<(usize, &mut Shard<N>)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (r, shard) in self.shards.iter_mut().enumerate() {
            chunks[r % workers].push((r, shard));
        }
        std::thread::scope(|s| {
            let coord = &coord;
            let mut chunks = chunks.into_iter();
            let own = chunks.next().expect("workers >= 1");
            for (wid, chunk) in chunks.enumerate() {
                s.spawn(move || worker_loop(wid + 1, chunk, shared, coord, ctrl_key));
            }
            worker_loop(0, own, shared, coord, ctrl_key);
        });
        self.window_end = coord.window.load(Ordering::Acquire);
    }

    /// Runs for an additional duration `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let target = self.now + d;
        self.run_until(target);
    }

    /// Runs until no events remain or `limit` is reached; returns the time
    /// at which the system went quiescent (or `limit`).
    pub fn run_to_quiescence(&mut self, limit: SimTime) -> SimTime {
        self.start_all();
        let mut first = true;
        loop {
            let Some((key, src)) = self.position_next() else {
                // Mirrors the seed scheduler: the returned settle time
                // (and `now`) never exceed the limit, even when the final
                // processed event lay beyond it.
                if self.now > limit {
                    self.now = limit;
                    return limit;
                }
                return self.now;
            };
            // Mirrors the seed scheduler: the first pending event is
            // processed even when it lies beyond the limit.
            if !first && key.at > limit {
                break;
            }
            first = false;
            self.step_at(key, src);
        }
        self.now = limit;
        limit
    }

    /// Number of entries waiting across all queues (control events, shard
    /// queues, and the boundary exchange).
    pub fn pending(&self) -> usize {
        self.ctrl.len() + self.shards.iter().map(|s| s.queue.len() + s.outgoing_len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    /// Counts pings; replies with pongs; optionally re-arms a periodic timer.
    #[derive(Debug, Default)]
    struct TestNode {
        started: u32,
        pings: u32,
        pongs: u32,
        timer_fires: u32,
        periodic: bool,
        batch_sizes: Vec<usize>,
    }

    #[derive(Debug, Clone)]
    enum M {
        Ping,
        Pong,
        Burst(u32),
    }

    impl Node for TestNode {
        type Msg = M;
        fn handle(&mut self, _now: SimTime, input: Input<M>, out: &mut Outbox<M>) {
            match input {
                Input::Start => {
                    self.started += 1;
                    if self.periodic {
                        out.timer(SimDuration::from_millis(100), 1);
                    }
                }
                Input::Msg { from, msg: M::Ping } => {
                    self.pings += 1;
                    out.send(from, M::Pong);
                    out.count("pings", 1.0);
                }
                Input::Msg { msg: M::Pong, .. } => self.pongs += 1,
                Input::Msg { from, msg: M::Burst(n) } => {
                    for _ in 0..n {
                        out.send(from, M::Pong);
                    }
                }
                Input::Timer { tag: 1 } => {
                    self.timer_fires += 1;
                    out.timer(SimDuration::from_millis(100), 1);
                }
                Input::Timer { .. } => {}
            }
        }

        fn on_batch(&mut self, now: SimTime, batch: &mut Batch<'_, M>, out: &mut Outbox<M>) {
            self.batch_sizes.push(batch.len());
            for (from, msg) in batch {
                self.handle(now, Input::Msg { from, msg }, out);
            }
        }
    }

    fn world(n: usize) -> World<TestNode> {
        let t = Topology::lan(n, 11);
        let nodes = (0..n).map(|_| TestNode::default()).collect();
        World::new(t, 11, nodes)
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut w = world(2);
        w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node(NodeIndex(1)).pings, 1);
        assert_eq!(w.node(NodeIndex(0)).pongs, 1);
        assert_eq!(w.metrics().counter("pings"), 1.0);
    }

    #[test]
    fn start_is_delivered_once() {
        let mut w = world(3);
        w.run_until(SimTime::from_millis(1));
        w.run_until(SimTime::from_millis(2));
        for n in w.nodes() {
            assert_eq!(n.started, 1);
        }
    }

    #[test]
    fn periodic_timer_fires_repeatedly() {
        let t = Topology::lan(1, 1);
        let mut w = World::new(t, 1, vec![TestNode { periodic: true, ..Default::default() }]);
        w.run_until(SimTime::from_millis(1050));
        assert_eq!(w.node(NodeIndex(0)).timer_fires, 10);
    }

    #[test]
    fn crash_drops_messages_and_timers() {
        let mut w = world(2);
        w.crash(NodeIndex(1));
        w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node(NodeIndex(1)).pings, 0);
        assert_eq!(w.metrics().counter("sim.messages_dropped_dead"), 1.0);
    }

    #[test]
    fn recover_delivers_start_again() {
        let mut w = world(2);
        w.run_until(SimTime::from_millis(1));
        w.crash(NodeIndex(1));
        w.recover(NodeIndex(1));
        assert_eq!(w.node(NodeIndex(1)).started, 2);
    }

    #[test]
    fn scheduled_crash_and_recover() {
        let mut w = world(2);
        w.crash_at(SimTime::from_millis(10), NodeIndex(1));
        w.recover_at(SimTime::from_millis(20), NodeIndex(1));
        // Ping lands in the dead window and is dropped.
        w.inject_at(SimTime::from_millis(15), NodeIndex(0), NodeIndex(1), M::Ping);
        // This one lands after recovery.
        w.inject_at(SimTime::from_millis(25), NodeIndex(0), NodeIndex(1), M::Ping);
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node(NodeIndex(1)).pings, 1);
    }

    #[test]
    fn loss_drops_fraction_of_messages() {
        let mut w = world(2);
        w.set_loss(1.0);
        for _ in 0..10 {
            w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
        }
        w.run_until(SimTime::from_secs(1));
        // Injections bypass loss (they model external arrivals), but the
        // pong replies are all lost.
        assert_eq!(w.node(NodeIndex(1)).pings, 10);
        assert_eq!(w.node(NodeIndex(0)).pongs, 0);
        assert_eq!(w.metrics().counter("sim.messages_lost"), 10.0);
    }

    #[test]
    fn link_loss_overrides_world_loss_per_direction() {
        let mut w = world(2);
        w.set_link_loss(NodeIndex(1), NodeIndex(0), 1.0);
        for _ in 0..10 {
            w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
        }
        w.run_until(SimTime::from_secs(1));
        // Pings arrive (faults are per directed link), pongs all die.
        assert_eq!(w.node(NodeIndex(1)).pings, 10);
        assert_eq!(w.node(NodeIndex(0)).pongs, 0);
        assert_eq!(w.metrics().counter("sim.messages_lost"), 10.0);
        // Override can also *lower* loss below the world level.
        w.set_loss(1.0);
        w.set_link_loss(NodeIndex(1), NodeIndex(0), 0.0);
        w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
        w.run_until(SimTime::from_secs(2));
        assert_eq!(w.node(NodeIndex(0)).pongs, 1);
    }

    #[test]
    fn link_latency_extra_delays_messages() {
        let mut w = world(2);
        w.set_link_latency_extra(NodeIndex(0), NodeIndex(1), SimDuration::from_secs(3));
        // Harness injections bypass dispatch; bounce via node 1's reply to
        // exercise the faulted direction: 0 -> 1 slow, 1 -> 0 normal.
        w.inject(NodeIndex(1), NodeIndex(0), M::Ping);
        w.run_until(SimTime::from_secs(2));
        assert_eq!(w.node(NodeIndex(1)).pongs, 0, "pong should still be in flight");
        w.run_until(SimTime::from_secs(5));
        assert_eq!(w.node(NodeIndex(1)).pongs, 1);
    }

    #[test]
    fn crash_purges_link_faults() {
        let mut w = world(2);
        w.set_link_loss(NodeIndex(0), NodeIndex(1), 1.0);
        w.crash(NodeIndex(1));
        w.recover(NodeIndex(1));
        w.inject(NodeIndex(1), NodeIndex(0), M::Ping);
        w.run_until(SimTime::from_secs(1));
        // The fault died with the link: node 0's pong gets through... and
        // the faulted direction 0 -> 1 is also clean again.
        w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
        w.run_until(SimTime::from_secs(2));
        assert_eq!(w.node(NodeIndex(0)).pings, 1);
        assert_eq!(w.metrics().counter("sim.messages_lost"), 0.0);
    }

    #[test]
    fn partition_blocks_cross_group_traffic_until_heal() {
        let mut w = world(4);
        // Nodes 0,1 vs 2,3.
        w.partition_at(SimTime::from_millis(10), Some(SimTime::from_secs(5)), vec![0, 0, 1, 1]);
        w.run_until(SimTime::from_millis(20));
        assert!(w.partitioned());
        // Same side: round trip completes.
        w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
        // Cross side: the ping is injected (harness bypasses dispatch) but
        // the pong reply is dropped at the boundary.
        w.inject(NodeIndex(0), NodeIndex(3), M::Ping);
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node(NodeIndex(0)).pongs, 1);
        assert_eq!(w.metrics().counter("sim.messages_partitioned"), 1.0);
        assert_eq!(w.metrics().counter("sim.partitions"), 1.0);
        // After the heal, cross-group traffic flows again.
        w.run_until(SimTime::from_secs(6));
        assert!(!w.partitioned());
        w.inject(NodeIndex(0), NodeIndex(3), M::Ping);
        w.run_until(SimTime::from_secs(7));
        assert_eq!(w.node(NodeIndex(0)).pongs, 2);
        assert_eq!(w.metrics().counter("sim.heals"), 1.0);
    }

    #[test]
    fn partition_by_region_isolates_named_regions() {
        let t = Topology::random(6, &["ap", "eu", "us"], 17);
        let names: Vec<String> = t.iter().map(|i| i.region.as_str().to_string()).collect();
        let nodes = (0..6).map(|_| TestNode::default()).collect();
        let mut w: World<TestNode> = World::new(t, 17, nodes);
        let minority = names[0].as_str();
        w.partition_regions_at(SimTime::from_millis(1), None, &[minority]);
        w.run_until(SimTime::from_millis(5));
        let inside: Vec<usize> = (0..6).filter(|&i| names[i] == minority).collect();
        let outside: Vec<usize> = (0..6).filter(|&i| names[i] != minority).collect();
        // Cross-boundary pong dies; intra-minority pong survives.
        w.inject(NodeIndex(inside[0] as u32), NodeIndex(outside[0] as u32), M::Ping);
        w.inject(NodeIndex(inside[0] as u32), NodeIndex(inside[1] as u32), M::Ping);
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node(NodeIndex(inside[0] as u32)).pongs, 1);
        assert_eq!(w.metrics().counter("sim.messages_partitioned"), 1.0);
    }

    #[test]
    fn run_to_quiescence_returns_settle_time() {
        let mut w = world(2);
        w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
        let settled = w.run_to_quiescence(SimTime::from_secs(5));
        assert!(settled < SimTime::from_secs(5));
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed: u64| {
            let mut w = world(2);
            // Note: world() uses fixed topology seed; vary message count by seed.
            for _ in 0..(seed % 5 + 1) {
                w.inject(NodeIndex(0), NodeIndex(1), M::Ping);
            }
            w.run_until(SimTime::from_secs(1));
            (w.node(NodeIndex(0)).pongs, w.metrics().counter("sim.messages_sent"))
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn time_advances_to_run_target() {
        let mut w = world(1);
        w.run_until(SimTime::from_secs(9));
        assert_eq!(w.now(), SimTime::from_secs(9));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn inject_at_past_panics() {
        let mut w = world(1);
        w.run_until(SimTime::from_secs(1));
        w.inject_at(SimTime::from_millis(1), NodeIndex(0), NodeIndex(0), M::Ping);
    }

    #[test]
    fn crash_purges_link_state_both_directions() {
        // Regression: the seed engine kept per-link FIFO entries forever,
        // so long churn runs grew memory without bound.
        let mut w = world(3);
        w.inject(NodeIndex(0), NodeIndex(1), M::Ping); // 1 replies to 0
        w.inject(NodeIndex(1), NodeIndex(2), M::Ping); // 2 replies to 1
        w.inject(NodeIndex(2), NodeIndex(0), M::Ping); // 0 replies to 2
        w.run_until(SimTime::from_secs(1));
        // Replies created links 1->0, 2->1, 0->2.
        assert_eq!(w.link_state_count(), 3);
        w.crash(NodeIndex(1));
        // Both 1's outbound state and every inbound entry to 1 are gone.
        assert_eq!(w.link_state_count(), 1);
        w.crash(NodeIndex(0));
        w.crash(NodeIndex(2));
        assert_eq!(w.link_state_count(), 0);
    }

    #[test]
    fn same_activation_fanout_arrives_as_one_batch() {
        // A burst of sends from one activation over one link shares a
        // latency sample, lands at one instant, and is handed over as one
        // on_batch call.
        let mut w = world(2);
        w.inject(NodeIndex(1), NodeIndex(0), M::Burst(5));
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node(NodeIndex(1)).pongs, 5);
        assert!(
            w.node(NodeIndex(1)).batch_sizes.contains(&5),
            "burst replies batch: {:?}",
            w.node(NodeIndex(1)).batch_sizes
        );
        assert_eq!(w.metrics().counter("sim.batched_messages"), 5.0);
    }

    #[test]
    fn region_count_and_wheel_geometry_do_not_change_outcomes() {
        let run = |regions: usize, width: u64, buckets: usize| {
            let t = Topology::random(8, &["scotland", "us-east", "asia", "brazil"], 5);
            let nodes = (0..8).map(|_| TestNode::default()).collect();
            let mut w = World::new(t, 5, nodes);
            w.set_region_count(regions);
            w.set_wheel_geometry(width, buckets);
            for i in 0..8u32 {
                w.inject(NodeIndex(i), NodeIndex((i + 1) % 8), M::Ping);
            }
            w.run_until(SimTime::from_secs(2));
            let pongs: Vec<u32> = w.nodes().map(|n| n.pongs).collect();
            (pongs, w.metrics().counter("sim.messages_sent"), w.now())
        };
        let baseline = run(1, DEFAULT_BUCKET_WIDTH, DEFAULT_BUCKET_COUNT);
        assert_eq!(baseline, run(2, DEFAULT_BUCKET_WIDTH, DEFAULT_BUCKET_COUNT));
        assert_eq!(baseline, run(4, 64, 32));
        assert_eq!(baseline, run(4, 10_000, 8));
    }

    #[test]
    fn multi_region_world_shards_by_topology_region() {
        let t = Topology::random(8, &["scotland", "us-east"], 5);
        let nodes = (0..8).map(|_| TestNode::default()).collect::<Vec<_>>();
        let w = World::new(t, 5, nodes);
        assert_eq!(w.region_count(), 2);
        assert_ne!(w.region_of(NodeIndex(0)), w.region_of(NodeIndex(1)));
        assert!(w.slice_micros() > 0);
    }

    #[test]
    fn thread_count_does_not_change_outcomes() {
        let run = |threads: usize| {
            let t = Topology::random(12, &["scotland", "us-east", "asia", "brazil"], 9);
            let nodes = (0..12).map(|_| TestNode::default()).collect();
            let mut w = World::new(t, 9, nodes);
            w.set_threads(threads);
            w.set_loss(0.2);
            for i in 0..12u32 {
                w.inject(NodeIndex(i), NodeIndex((i + 5) % 12), M::Ping);
                w.inject(NodeIndex(i), NodeIndex((i + 7) % 12), M::Burst(3));
            }
            w.crash_at(SimTime::from_millis(8), NodeIndex(3));
            w.recover_at(SimTime::from_millis(40), NodeIndex(3));
            w.run_until(SimTime::from_secs(2));
            let pongs: Vec<u32> = w.nodes().map(|n| n.pongs).collect();
            let m = w.metrics();
            (
                pongs,
                m.counter("sim.messages_sent"),
                m.counter("sim.messages_lost"),
                m.counter("sim.messages_delivered"),
                w.now(),
            )
        };
        let baseline = run(1);
        assert_eq!(baseline, run(2));
        assert_eq!(baseline, run(4));
        // Requests beyond the shard count cap at the shard count.
        assert_eq!(baseline, run(64));
    }

    #[test]
    fn slice_width_refinement_never_narrows_the_base_floor() {
        let t = Topology::random(16, &["scotland", "brazil"], 3);
        let lm = t.latency_model();
        let base_floor = (lm.base.as_micros() as f64 * (1.0 - lm.jitter)).floor() as u64;
        let nodes = (0..16).map(|_| TestNode::default()).collect::<Vec<_>>();
        let w = World::new(t, 3, nodes);
        // Distant region pair: the refined cross-shard lookahead widens
        // the slice well past the base floor.
        assert!(w.slice_micros() > base_floor, "refined {} <= base {base_floor}", w.slice_micros());
    }

    #[test]
    fn threads_env_parsing() {
        assert_eq!(threads_from_env(None), 1);
        assert_eq!(threads_from_env(Some("")), 1);
        assert_eq!(threads_from_env(Some("0")), 1);
        assert_eq!(threads_from_env(Some("nope")), 1);
        assert_eq!(threads_from_env(Some("4")), 4);
        assert_eq!(threads_from_env(Some(" 2 ")), 2);
    }

    #[test]
    fn sync_point_smoke() {
        let sp = SyncPoint::new(4);
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..100 {
                        sp.wait(|| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
            for _ in 0..100 {
                sp.wait(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100, "one leader per barrier round");
    }
}
