//! Deterministic test workloads shared by the determinism test-suite and
//! the CI digest binary, so both exercise the *same* protocol.

use crate::engine::{Input, Node, Outbox};
use crate::hash::splitmix64;
use crate::time::{SimDuration, SimTime};
use crate::topology::NodeIndex;

/// A chattering protocol: periodic timers fan messages out to
/// pseudo-random peers; receivers relay with bounded hops and log + trace
/// every input. All randomness is node-local (a splitmix64 decision
/// stream), so the behaviour is a pure function of the schedule — which
/// is exactly what determinism checks need.
#[derive(Debug)]
pub struct Chatter {
    /// This node's id.
    pub id: u32,
    /// World size (peers are drawn from `0..n`).
    pub n: u32,
    /// Private decision stream state.
    pub decisions: u64,
    /// Timer re-arms left.
    pub rounds: u32,
    /// Every input this node saw, in order (the per-node schedule).
    pub log: Vec<String>,
}

impl Chatter {
    /// Creates a chatter node with a seeded decision stream.
    pub fn new(id: u32, n: u32, decisions: u64, rounds: u32) -> Self {
        Chatter { id, n, decisions, rounds, log: Vec::new() }
    }
}

impl Node for Chatter {
    type Msg = u64;

    fn handle(&mut self, now: SimTime, input: Input<u64>, out: &mut Outbox<u64>) {
        match input {
            Input::Start => {
                out.trace("start", format!("n{}", self.id));
                out.timer(SimDuration::from_millis(2 + (self.id as u64 % 5)), 0);
            }
            Input::Timer { tag } => {
                out.trace("tick", format!("n{} t{tag}", self.id));
                let r = splitmix64(&mut self.decisions);
                for i in 0..1 + (r % 3) {
                    let peer = ((r >> (8 * i)) % self.n as u64) as u32;
                    out.send(NodeIndex(peer), (r % 1009) * 4);
                }
                if self.rounds > 0 {
                    self.rounds -= 1;
                    out.timer(SimDuration::from_millis(4 + r % 9), tag + 1);
                }
            }
            Input::Msg { from, msg } => {
                self.log.push(format!("{now} {msg} {from}"));
                out.trace("recv", format!("n{} {msg} from {from}", self.id));
                out.count("chatter.msgs", 1.0);
                let hops = msg % 4;
                if hops < 2 {
                    let r = splitmix64(&mut self.decisions);
                    out.send(NodeIndex((r % self.n as u64) as u32), (msg & !3) + hops + 1);
                }
            }
        }
    }
}
