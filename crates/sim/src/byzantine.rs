//! Byzantine node behaviours for adversarial scenarios.
//!
//! A [`ByzantineActor`] wraps one node's message handling with a
//! misbehaviour policy. Harness node types (e.g. the overlay's world
//! node) consult it *before* handing an input to the wrapped protocol and
//! *after* collecting the protocol's outputs, so the protocol code itself
//! stays honest — the adversary lives entirely in the harness layer.
//!
//! The behaviours model the failure modes that defeat naive liveness
//! detection:
//!
//! * [`ByzBehavior::AckThenDrop`] — participates fully in the probe /
//!   heartbeat machinery (so it always looks alive) while silently
//!   dropping payload traffic it was supposed to forward or serve.
//! * [`ByzBehavior::SelectiveSilence`] — drops all traffic from a
//!   deterministic subset of peers, creating the asymmetric "works for
//!   you, dead for me" disagreements that flap naive detectors.
//! * [`ByzBehavior::StaleGossip`] — answers protocol gossip with the
//!   first state it ever advertised, poisoning peers with stale
//!   membership/routing data instead of staying silent.
//!
//! Everything is deterministic: behaviours branch on message class and
//! peer identity, never on randomness or time.

use crate::engine::Outbox;
use crate::topology::NodeIndex;

/// Coarse classification of a message for fault policies. Harness layers
/// map their protocol's message enum onto this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Probes, acks, heartbeats — the liveness machinery.
    Liveness,
    /// Application payload: routed messages, publications, fetches.
    Payload,
    /// State exchange: leaf sets, routing rows, advertisements.
    Gossip,
    /// Joins, handoffs, administrative traffic.
    Control,
}

/// A node's misbehaviour policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ByzBehavior {
    /// No misbehaviour.
    #[default]
    Honest,
    /// Answer liveness traffic normally; silently drop incoming payload.
    AckThenDrop,
    /// Drop *all* traffic from peers whose index satisfies
    /// `peer % modulus == 0`; behave normally for everyone else.
    SelectiveSilence {
        /// Which peers to ignore (`peer.0 % modulus == 0`).
        modulus: u32,
    },
    /// Process traffic normally but answer gossip with the first gossip
    /// payload this node ever emitted (stale state).
    StaleGossip,
}

/// Per-node byzantine state: the behaviour plus drop accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct ByzantineActor {
    /// The active misbehaviour policy.
    pub behavior: ByzBehavior,
    /// Inputs swallowed by the policy so far.
    pub dropped: u64,
}

impl ByzantineActor {
    /// Creates an actor with the given policy.
    pub fn new(behavior: ByzBehavior) -> Self {
        ByzantineActor { behavior, dropped: 0 }
    }

    /// Whether the actor misbehaves at all (fast path check).
    pub fn is_honest(&self) -> bool {
        self.behavior == ByzBehavior::Honest
    }

    /// Decides whether an incoming message of `class` from `from` is
    /// silently swallowed before the wrapped protocol sees it.
    pub fn should_drop_input(&mut self, from: NodeIndex, class: FaultClass) -> bool {
        let drop = match self.behavior {
            ByzBehavior::Honest | ByzBehavior::StaleGossip => false,
            ByzBehavior::AckThenDrop => class == FaultClass::Payload,
            ByzBehavior::SelectiveSilence { modulus } => from.0.is_multiple_of(modulus.max(1)),
        };
        if drop {
            self.dropped += 1;
        }
        drop
    }

    /// Post-processes the wrapped protocol's outputs for
    /// [`ByzBehavior::StaleGossip`]: the first outbound gossip message (as
    /// classified by `is_gossip`) is cached in `stale`, and every later
    /// gossip send is replaced with that cached payload. Other behaviours
    /// leave the outbox untouched.
    pub fn rewrite_outputs<M: Clone>(
        &mut self,
        out: &mut Outbox<M>,
        stale: &mut Option<M>,
        is_gossip: impl Fn(&M) -> bool,
    ) {
        if self.behavior != ByzBehavior::StaleGossip {
            return;
        }
        for (_, msg, _) in out.sends.iter_mut() {
            if is_gossip(msg) {
                match stale {
                    Some(cached) => *msg = cached.clone(),
                    None => *stale = Some(msg.clone()),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn honest_drops_nothing() {
        let mut a = ByzantineActor::default();
        assert!(a.is_honest());
        assert!(!a.should_drop_input(NodeIndex(3), FaultClass::Payload));
        assert_eq!(a.dropped, 0);
    }

    #[test]
    fn ack_then_drop_answers_probes_but_eats_payload() {
        let mut a = ByzantineActor::new(ByzBehavior::AckThenDrop);
        assert!(!a.should_drop_input(NodeIndex(3), FaultClass::Liveness));
        assert!(!a.should_drop_input(NodeIndex(3), FaultClass::Gossip));
        assert!(!a.should_drop_input(NodeIndex(3), FaultClass::Control));
        assert!(a.should_drop_input(NodeIndex(3), FaultClass::Payload));
        assert_eq!(a.dropped, 1);
    }

    #[test]
    fn selective_silence_targets_a_subset() {
        let mut a = ByzantineActor::new(ByzBehavior::SelectiveSilence { modulus: 3 });
        assert!(a.should_drop_input(NodeIndex(6), FaultClass::Liveness));
        assert!(a.should_drop_input(NodeIndex(9), FaultClass::Payload));
        assert!(!a.should_drop_input(NodeIndex(7), FaultClass::Payload));
    }

    #[test]
    fn stale_gossip_caches_and_replays_first_payload() {
        let mut a = ByzantineActor::new(ByzBehavior::StaleGossip);
        let mut stale: Option<&'static str> = None;
        let mut out: Outbox<&'static str> = Outbox::default();
        out.send(NodeIndex(1), "fresh-1");
        a.rewrite_outputs(&mut out, &mut stale, |m| m.starts_with("fresh"));
        assert_eq!(stale, Some("fresh-1"));

        let mut out2: Outbox<&'static str> = Outbox::default();
        out2.send(NodeIndex(2), "fresh-2");
        out2.send_after(NodeIndex(2), "payload", SimDuration::from_millis(1));
        a.rewrite_outputs(&mut out2, &mut stale, |m| m.starts_with("fresh"));
        assert_eq!(out2.sends[0].1, "fresh-1", "gossip should be replaced with stale state");
        assert_eq!(out2.sends[1].1, "payload", "non-gossip traffic passes through");
    }

    #[test]
    fn non_stale_behaviours_do_not_touch_outputs() {
        let mut a = ByzantineActor::new(ByzBehavior::AckThenDrop);
        let mut stale: Option<&'static str> = None;
        let mut out: Outbox<&'static str> = Outbox::default();
        out.send(NodeIndex(1), "fresh-1");
        a.rewrite_outputs(&mut out, &mut stale, |m| m.starts_with("fresh"));
        assert_eq!(stale, None);
        assert_eq!(out.sends[0].1, "fresh-1");
    }
}
