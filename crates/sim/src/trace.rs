//! Optional trace collection for debugging protocol runs.

use crate::time::SimTime;
use crate::topology::NodeIndex;
use std::fmt;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it was recorded.
    pub at: SimTime,
    /// The node that recorded it.
    pub node: NodeIndex,
    /// A short machine-matchable kind, e.g. `"route"` or `"deploy"`.
    pub kind: String,
    /// Free-form detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{}] {}", self.at, self.node, self.kind, self.detail)
    }
}

/// A bounded in-memory trace buffer. Disabled tracers drop all records, so
/// tracing has near-zero cost when off.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    cap: usize,
    events: Vec<TraceEvent>,
    dropped: usize,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A tracer retaining at most `cap` events (older events win; overflow
    /// is counted, not silently discarded).
    pub fn enabled(cap: usize) -> Self {
        Tracer { enabled: true, cap, events: Vec::new(), dropped: 0 }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when disabled or full).
    pub fn record(&mut self, at: SimTime, node: NodeIndex, kind: &str, detail: String) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent { at, node, kind: kind.to_string(), detail });
    }

    /// All recorded events, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// How many events were discarded because the buffer was full.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Renders the trace as text, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(SimTime::ZERO, NodeIndex(0), "x", "y".into());
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_records_up_to_cap() {
        let mut t = Tracer::enabled(2);
        for i in 0..5 {
            t.record(SimTime::from_millis(i), NodeIndex(0), "k", format!("{i}"));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn filter_by_kind() {
        let mut t = Tracer::enabled(10);
        t.record(SimTime::ZERO, NodeIndex(0), "a", "1".into());
        t.record(SimTime::ZERO, NodeIndex(1), "b", "2".into());
        t.record(SimTime::ZERO, NodeIndex(2), "a", "3".into());
        assert_eq!(t.of_kind("a").count(), 2);
        assert_eq!(t.of_kind("b").count(), 1);
    }

    #[test]
    fn render_includes_details() {
        let mut t = Tracer::enabled(10);
        t.record(SimTime::from_millis(5), NodeIndex(3), "route", "hop to n4".into());
        let s = t.render();
        assert!(s.contains("route"));
        assert!(s.contains("hop to n4"));
        assert!(s.contains("n3"));
    }
}
