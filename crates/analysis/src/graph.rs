//! Pass 4: the rule interaction graph.
//!
//! Kind-level emits→triggers edges across deployed matchlets: rule `a`
//! feeds rule `b` when `a` emits a kind one of `b`'s patterns matches.
//! Detects dead rules (every firing needs a kind nobody produces),
//! unreachable emits (a kind nobody matches or subscribes to), and
//! firing cycles — a conservative non-termination warning, since a cycle
//! of rules can amplify one event into an unbounded cascade.

use crate::diag::Report;
use gloss_matchlet::ast::Rule;
use std::collections::BTreeSet;

/// The emits→triggers graph over a set of rules.
#[derive(Debug, Clone)]
pub struct InteractionGraph {
    names: Vec<String>,
    inputs: Vec<Vec<String>>,
    outputs: Vec<String>,
    spans: Vec<gloss_matchlet::Span>,
    /// `edges[i]` = indices of rules that match what rule `i` emits.
    edges: Vec<Vec<usize>>,
}

impl InteractionGraph {
    /// Builds the graph from every deployed rule.
    pub fn from_rules(rules: &[Rule]) -> Self {
        let names: Vec<_> = rules.iter().map(|r| r.name.clone()).collect();
        let inputs: Vec<Vec<String>> =
            rules.iter().map(|r| r.patterns.iter().map(|p| p.kind.clone()).collect()).collect();
        let outputs: Vec<_> = rules.iter().map(|r| r.emit.kind.clone()).collect();
        let spans = rules.iter().map(|r| r.spans.rule).collect();
        let edges = outputs
            .iter()
            .map(|out| {
                inputs
                    .iter()
                    .enumerate()
                    .filter(|(_, ins)| ins.iter().any(|k| k == out))
                    .map(|(j, _)| j)
                    .collect()
            })
            .collect();
        InteractionGraph { names, inputs, outputs, spans, edges }
    }

    /// Kinds some rule consumes but no rule emits: they must come from
    /// sensors or publishers outside the rule set.
    pub fn external_inputs(&self) -> BTreeSet<&str> {
        let emitted: BTreeSet<&str> = self.outputs.iter().map(String::as_str).collect();
        self.inputs.iter().flatten().map(String::as_str).filter(|k| !emitted.contains(k)).collect()
    }

    /// Kinds some rule emits but no rule consumes: they only matter if an
    /// external subscriber wants them.
    pub fn terminal_outputs(&self) -> BTreeSet<&str> {
        let consumed: BTreeSet<&str> = self.inputs.iter().flatten().map(String::as_str).collect();
        self.outputs.iter().map(String::as_str).filter(|k| !consumed.contains(k)).collect()
    }

    /// Rule-name cycles (each reported once, starting from its smallest
    /// participant).
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let n = self.names.len();
        let mut color = vec![0u8; n]; // 0 new, 1 on stack, 2 done
        let mut stack: Vec<usize> = Vec::new();
        let mut found: BTreeSet<Vec<usize>> = BTreeSet::new();
        for start in 0..n {
            if color[start] == 0 {
                self.dfs(start, &mut color, &mut stack, &mut found);
            }
        }
        found.into_iter().map(|c| c.into_iter().map(|i| self.names[i].clone()).collect()).collect()
    }

    fn dfs(
        &self,
        node: usize,
        color: &mut Vec<u8>,
        stack: &mut Vec<usize>,
        found: &mut BTreeSet<Vec<usize>>,
    ) {
        color[node] = 1;
        stack.push(node);
        for &next in &self.edges[node] {
            match color[next] {
                0 => self.dfs(next, color, stack, found),
                1 => {
                    // Back edge: the cycle is the stack from `next` down.
                    let pos = stack.iter().position(|&x| x == next).expect("on stack");
                    let mut cycle: Vec<usize> = stack[pos..].to_vec();
                    // Normalise: rotate the smallest index to the front.
                    let min = cycle.iter().copied().enumerate().min_by_key(|(_, v)| *v);
                    if let Some((at, _)) = min {
                        cycle.rotate_left(at);
                    }
                    found.insert(cycle);
                }
                _ => {}
            }
        }
        stack.pop();
        color[node] = 2;
    }

    /// Findings over the graph.
    ///
    /// `produced`: kinds known to be published from outside the rule set
    /// (sensors, clients), or `None` for an open world where any kind may
    /// appear. `subscribed`: kinds known to have external subscribers, or
    /// `None` for an open world. Cycles warn in either world.
    pub fn report(
        &self,
        produced: Option<&BTreeSet<String>>,
        subscribed: Option<&BTreeSet<String>>,
    ) -> Report {
        let mut report = Report::new();
        for cycle in self.cycles() {
            let mut chain = cycle.join(" -> ");
            chain.push_str(" -> ");
            chain.push_str(&cycle[0]);
            report.warn(
                "firing-cycle",
                None,
                gloss_matchlet::Span::default(),
                format!("rules may trigger each other without bound: {chain}"),
            );
        }
        let emitted: BTreeSet<&str> = self.outputs.iter().map(String::as_str).collect();
        if let Some(produced) = produced {
            for (i, ins) in self.inputs.iter().enumerate() {
                for kind in ins {
                    if !produced.contains(kind) && !emitted.contains(kind.as_str()) {
                        report.warn(
                            "dead-rule",
                            Some(&self.names[i]),
                            self.spans[i],
                            format!(
                                "pattern kind `{kind}` is produced by no rule or known publisher: the rule can never fire"
                            ),
                        );
                    }
                }
            }
        }
        if let Some(subscribed) = subscribed {
            let consumed: BTreeSet<&str> =
                self.inputs.iter().flatten().map(String::as_str).collect();
            for (i, out) in self.outputs.iter().enumerate() {
                if !subscribed.contains(out) && !consumed.contains(out.as_str()) {
                    report.warn(
                        "unreachable-emit",
                        Some(&self.names[i]),
                        self.spans[i],
                        format!(
                            "emitted kind `{out}` is matched by no rule and has no known subscriber"
                        ),
                    );
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_matchlet::parse_rules;

    fn graph(src: &str) -> InteractionGraph {
        InteractionGraph::from_rules(&parse_rules(src).unwrap())
    }

    const CHAIN: &str = r#"
        rule stage1 { on a: event raw(v: ?v) emit cooked(v: ?v) }
        rule stage2 { on a: event cooked(v: ?v) emit served(v: ?v) }
    "#;

    #[test]
    fn chains_link_and_classify() {
        let g = graph(CHAIN);
        assert_eq!(g.external_inputs().into_iter().collect::<Vec<_>>(), vec!["raw"]);
        assert_eq!(g.terminal_outputs().into_iter().collect::<Vec<_>>(), vec!["served"]);
        assert!(g.cycles().is_empty());
        assert!(g.report(None, None).is_clean());
    }

    #[test]
    fn closed_world_dead_and_unreachable() {
        let g = graph(CHAIN);
        let produced: BTreeSet<String> = ["raw".to_string()].into();
        let subscribed: BTreeSet<String> = ["served".to_string()].into();
        assert!(g.report(Some(&produced), Some(&subscribed)).is_clean());
        // Nothing publishes `raw`: stage1 is dead.
        let r = g.report(Some(&BTreeSet::new()), Some(&subscribed));
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, "dead-rule");
        assert_eq!(r.diagnostics[0].rule.as_deref(), Some("stage1"));
        // Nobody wants `served`: stage2's emit is unreachable.
        let r = g.report(Some(&produced), Some(&BTreeSet::new()));
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, "unreachable-emit");
        assert_eq!(r.diagnostics[0].rule.as_deref(), Some("stage2"));
    }

    #[test]
    fn cycles_detected_once() {
        let g = graph(
            r#"
            rule ping { on a: event pong.ev(v: ?v) emit ping.ev(v: ?v) }
            rule pong { on a: event ping.ev(v: ?v) emit pong.ev(v: ?v) }
            rule quiet { on a: event other() emit done() }
            "#,
        );
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert_eq!(cycles[0], vec!["ping".to_string(), "pong".to_string()]);
        let r = g.report(None, None);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, "firing-cycle");
        assert!(r.to_string().contains("ping -> pong -> ping"), "{r}");
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = graph("rule echo { on a: event k(v: ?v) emit k(v: ?v) }");
        assert_eq!(g.cycles(), vec![vec!["echo".to_string()]]);
    }
}
