//! Diagnostics: findings with severities, source positions, and stable
//! codes, collected into a [`Report`].

use gloss_matchlet::Span;
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but deployable (e.g. a binding never read).
    Warning,
    /// The artifact is broken and must not be deployed (e.g. an unbound
    /// variable that would fail on every firing).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Severity.
    pub severity: Severity,
    /// Stable machine-readable code, e.g. `unbound-variable`.
    pub code: &'static str,
    /// The rule the finding is about, when applicable.
    pub rule: Option<String>,
    /// Source position (all-zero when unknown, e.g. for subscriptions).
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if self.span.is_known() {
            write!(f, " at {}", self.span)?;
        }
        if let Some(rule) = &self.rule {
            write!(f, " (rule `{rule}`)")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// A collection of findings from one or more passes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// The findings, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Adds an error.
    pub fn error(
        &mut self,
        code: &'static str,
        rule: Option<&str>,
        span: Span,
        message: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            severity: Severity::Error,
            code,
            rule: rule.map(str::to_owned),
            span,
            message: message.into(),
        });
    }

    /// Adds a warning.
    pub fn warn(
        &mut self,
        code: &'static str,
        rule: Option<&str>,
        span: Span,
        message: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            severity: Severity::Warning,
            code,
            rule: rule.map(str::to_owned),
            span,
            message: message.into(),
        });
    }

    /// Appends another report's findings.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of errors.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warnings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Whether nothing was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The error messages only (for compact rejection reasons).
    pub fn error_summary(&self) -> String {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_display() {
        let mut r = Report::new();
        assert!(r.is_clean() && !r.has_errors());
        r.warn("unused-binding", Some("r1"), Span::default(), "?x never read");
        r.error("unbound-variable", Some("r1"), Span { line: 3, col: 5 }, "?y is not bound");
        assert!(r.has_errors());
        assert_eq!((r.error_count(), r.warning_count()), (1, 1));
        let text = r.to_string();
        assert!(text.contains("warning[unused-binding] (rule `r1`): ?x never read"), "{text}");
        assert!(text.contains("error[unbound-variable] at 3:5 (rule `r1`)"), "{text}");
        assert!(r.error_summary().contains("?y is not bound"));
        assert!(!r.error_summary().contains("never read"));
    }
}
