//! Pass 3: whole-broker covering audit.
//!
//! Pairwise [`Filter::covers`] over a node's subscription table: a
//! subscription covered by another is *redundant* — every event it would
//! deliver is already delivered — and for overlapping same-kind pairs a
//! merged cover is proposed (the constraints of one filter that the
//! other's imply; by construction it covers both). This is the
//! groundwork for a SIENA-style covering index: the audit findings are
//! exactly the edges such an index would collapse.

use crate::diag::Report;
use gloss_event::{Filter, Subscription};
use gloss_matchlet::Span;

/// One redundant subscription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Redundant {
    /// The covered (redundant) subscription id.
    pub covered: u64,
    /// The subscription that already delivers everything it would.
    pub by: u64,
}

/// A proposed merged cover for two overlapping subscriptions.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeProposal {
    /// First subscription id.
    pub a: u64,
    /// Second subscription id.
    pub b: u64,
    /// A filter covering both (broader than either).
    pub merged: Filter,
}

/// The audit result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoveringAudit {
    /// Subscriptions another subscription fully covers.
    pub redundant: Vec<Redundant>,
    /// Merged covers for overlapping, mutually-uncovered pairs.
    pub merges: Vec<MergeProposal>,
}

/// Audits a subscription table.
pub fn audit(subs: &[Subscription]) -> CoveringAudit {
    let mut out = CoveringAudit::default();
    for (i, a) in subs.iter().enumerate() {
        for b in &subs[i + 1..] {
            let a_covers = a.filter.covers(&b.filter);
            let b_covers = b.filter.covers(&a.filter);
            match (a_covers, b_covers) {
                // Equal coverage: keep the earlier, flag the later.
                (true, true) => out.redundant.push(Redundant { covered: b.id, by: a.id }),
                (true, false) => out.redundant.push(Redundant { covered: b.id, by: a.id }),
                (false, true) => out.redundant.push(Redundant { covered: a.id, by: b.id }),
                (false, false) => {
                    if let Some(merged) = merge_cover(&a.filter, &b.filter) {
                        out.merges.push(MergeProposal { a: a.id, b: b.id, merged });
                    }
                }
            }
        }
    }
    out
}

/// A filter covering both `a` and `b`: `a`'s kind (when shared) plus the
/// constraints of `a` that some constraint of `b` implies. Every
/// constraint kept is implied by `a` (it is one of `a`'s) and by `b`, so
/// the result covers both. `None` when the filters target different
/// kinds or share no implied constraint (the merge would be `[*]`,
/// coarser than useful).
pub fn merge_cover(a: &Filter, b: &Filter) -> Option<Filter> {
    if a.kind() != b.kind() {
        return None;
    }
    let kept: Vec<_> = a
        .constraints()
        .iter()
        .filter(|ca| b.constraints().iter().any(|cb| ca.covers(cb)))
        .cloned()
        .collect();
    if kept.is_empty() {
        return None;
    }
    Some(Filter::from_parts(a.kind().map(str::to_owned), kept))
}

/// The audit as warnings (for metrics and the CLI).
pub fn audit_report(subs: &[Subscription]) -> Report {
    let audit = audit(subs);
    let mut report = Report::new();
    let find = |id: u64| subs.iter().find(|s| s.id == id).map(|s| s.filter.to_string());
    for r in &audit.redundant {
        report.warn(
            "redundant-subscription",
            None,
            Span::default(),
            format!(
                "subscription {} `{}` is covered by subscription {} `{}`",
                r.covered,
                find(r.covered).unwrap_or_default(),
                r.by,
                find(r.by).unwrap_or_default(),
            ),
        );
    }
    for m in &audit.merges {
        report.warn(
            "merge-candidate",
            None,
            Span::default(),
            format!("subscriptions {} and {} could forward as one cover `{}`", m.a, m.b, m.merged),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_event::Op;

    fn sub(id: u64, filter: Filter) -> Subscription {
        Subscription { id, filter }
    }

    #[test]
    fn redundant_pairs_found() {
        let broad = Filter::for_kind("k").with_constraint("x", Op::Gt, 0i64);
        let narrow = Filter::for_kind("k").with_constraint("x", Op::Gt, 5i64);
        let a = audit(&[sub(1, broad.clone()), sub(2, narrow)]);
        assert_eq!(a.redundant, vec![Redundant { covered: 2, by: 1 }]);
        // Equal filters: the later one is flagged, once.
        let a = audit(&[sub(1, broad.clone()), sub(2, broad)]);
        assert_eq!(a.redundant, vec![Redundant { covered: 2, by: 1 }]);
    }

    #[test]
    fn merge_proposal_covers_both() {
        let a = Filter::for_kind("k").with_constraint("x", Op::Gt, 0i64).with_eq("user", "bob");
        let b = Filter::for_kind("k").with_constraint("x", Op::Gt, 5i64).with_eq("user", "anna");
        let out = audit(&[sub(1, a.clone()), sub(2, b.clone())]);
        assert!(out.redundant.is_empty());
        assert_eq!(out.merges.len(), 1);
        let merged = &out.merges[0].merged;
        assert!(merged.covers(&a), "{merged}");
        assert!(merged.covers(&b), "{merged}");
        // The shared `x > 0` survives; the conflicting users do not.
        assert_eq!(merged.constraints().len(), 1);
    }

    #[test]
    fn unrelated_filters_stay_apart() {
        let a = Filter::for_kind("k1").with_eq("u", "bob");
        let b = Filter::for_kind("k2").with_eq("u", "bob");
        let out = audit(&[sub(1, a), sub(2, b)]);
        assert!(out.redundant.is_empty());
        assert!(out.merges.is_empty());
        // Same kind but nothing implied: no merge.
        let a = Filter::for_kind("k").with_eq("u", "bob");
        let b = Filter::for_kind("k").with_eq("u", "anna");
        let out = audit(&[sub(1, a), sub(2, b)]);
        assert!(out.merges.is_empty());
    }

    #[test]
    fn report_renders_both_kinds() {
        let broad = Filter::for_kind("k").with_constraint("x", Op::Gt, 0i64);
        let narrow = Filter::for_kind("k").with_constraint("x", Op::Gt, 5i64);
        let r = audit_report(&[sub(1, broad), sub(2, narrow)]);
        assert_eq!(r.warning_count(), 1);
        assert!(r.to_string().contains("covered by subscription 1"), "{r}");
    }
}
