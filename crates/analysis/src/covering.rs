//! Pass 3: whole-broker covering audit.
//!
//! Pairwise [`Filter::covers`] over a node's subscription table: a
//! subscription covered by another is *redundant* — every event it would
//! deliver is already delivered — and for overlapping same-kind pairs a
//! merged cover is proposed (the constraints of one filter that the
//! other's imply; by construction it covers both). This is the
//! groundwork for a SIENA-style covering index: the audit findings are
//! exactly the edges such an index would collapse.

use crate::diag::Report;
use gloss_event::{Filter, FilterIndex, Subscription};
use gloss_matchlet::Span;

/// Above this table size the audit switches from the O(N²) pairwise scan
/// to the broker's counting index (see [`audit`]).
const INDEXED_THRESHOLD: usize = 1024;

/// Per-kind cap on members examined for merge proposals on the indexed
/// path, bounding the pairwise merge sweep on huge single-kind tables.
const MERGE_GROUP_SCAN: usize = 64;

/// One redundant subscription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Redundant {
    /// The covered (redundant) subscription id.
    pub covered: u64,
    /// The subscription that already delivers everything it would.
    pub by: u64,
}

/// A proposed merged cover for two overlapping subscriptions.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeProposal {
    /// First subscription id.
    pub a: u64,
    /// Second subscription id.
    pub b: u64,
    /// A filter covering both (broader than either).
    pub merged: Filter,
}

/// The audit result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoveringAudit {
    /// Subscriptions another subscription fully covers.
    pub redundant: Vec<Redundant>,
    /// Merged covers for overlapping, mutually-uncovered pairs.
    pub merges: Vec<MergeProposal>,
}

/// Audits a subscription table.
///
/// Small tables run the exhaustive pairwise scan
/// ([`audit_pairwise`] — the oracle). Past [`INDEXED_THRESHOLD`]
/// entries, redundancy detection switches to the broker's counting
/// [`FilterIndex`] ([`audit_indexed`]): per subscription, "who covers
/// me" is one index probe for all-`Eq` filters instead of N `covers`
/// calls, and merge proposals are computed per kind group with a bounded
/// sweep ([`MERGE_GROUP_SCAN`]) rather than over every pair. The
/// redundancy findings are identical to the oracle's (property-tested);
/// merge proposals on the indexed path are a deterministic subset.
pub fn audit(subs: &[Subscription]) -> CoveringAudit {
    let unique_ids = {
        let mut ids: Vec<u64> = subs.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.windows(2).all(|w| w[0] != w[1])
    };
    if subs.len() > INDEXED_THRESHOLD && unique_ids {
        audit_indexed(subs)
    } else {
        audit_pairwise(subs)
    }
}

/// The exhaustive O(N²) audit — every pair tested both ways. Complete
/// (all redundancies, all merge proposals) and the oracle the indexed
/// path is tested against.
pub fn audit_pairwise(subs: &[Subscription]) -> CoveringAudit {
    let mut out = CoveringAudit::default();
    for (i, a) in subs.iter().enumerate() {
        for b in &subs[i + 1..] {
            let a_covers = a.filter.covers(&b.filter);
            let b_covers = b.filter.covers(&a.filter);
            match (a_covers, b_covers) {
                // Equal coverage: keep the earlier, flag the later.
                (true, true) => out.redundant.push(Redundant { covered: b.id, by: a.id }),
                (true, false) => out.redundant.push(Redundant { covered: b.id, by: a.id }),
                (false, true) => out.redundant.push(Redundant { covered: a.id, by: b.id }),
                (false, false) => {
                    if let Some(merged) = merge_cover(&a.filter, &b.filter) {
                        out.merges.push(MergeProposal { a: a.id, b: b.id, merged });
                    }
                }
            }
        }
    }
    out
}

/// The index-backed audit for large tables. Same redundancy findings as
/// [`audit_pairwise`] (modulo ordering): a subscription `s` is flagged as
/// covered by `f` exactly when `f` covers `s`, unless `s` also covers
/// `f` and `s` came first (then `f` is the flagged one of the mutual
/// pair). Merge proposals are limited to the first [`MERGE_GROUP_SCAN`]
/// non-redundant members of each kind group.
pub fn audit_indexed(subs: &[Subscription]) -> CoveringAudit {
    let mut index = FilterIndex::new();
    let mut pos = std::collections::HashMap::with_capacity(subs.len());
    for (i, s) in subs.iter().enumerate() {
        index.insert(s.clone());
        pos.insert(s.id, i);
    }
    let mut out = CoveringAudit::default();
    let mut is_redundant = vec![false; subs.len()];
    for (j, s) in subs.iter().enumerate() {
        // Everyone covering s: one counting probe for all-Eq filters,
        // a scan only for the exotic shapes.
        let coverers: Vec<u64> = match index.covering_ids(&s.filter) {
            Some(ids) => ids,
            None => subs.iter().filter(|f| f.filter.covers(&s.filter)).map(|f| f.id).collect(),
        };
        for by in coverers {
            if by == s.id {
                continue;
            }
            let i = pos[&by];
            // Of a mutually-covering pair, only the later one is
            // flagged (same tie-break as the oracle).
            if i > j && s.filter.covers(&subs[i].filter) {
                continue;
            }
            out.redundant.push(Redundant { covered: s.id, by });
            is_redundant[j] = true;
        }
    }
    // Merge proposals among the non-redundant survivors, per kind, with
    // a bounded sweep.
    let mut by_kind: std::collections::BTreeMap<Option<&str>, Vec<usize>> = Default::default();
    for (j, s) in subs.iter().enumerate() {
        if !is_redundant[j] {
            by_kind.entry(s.filter.kind()).or_default().push(j);
        }
    }
    for group in by_kind.values() {
        let scan = &group[..group.len().min(MERGE_GROUP_SCAN)];
        for (gi, &i) in scan.iter().enumerate() {
            for &j in &scan[gi + 1..] {
                let (a, b) = (&subs[i], &subs[j]);
                if a.filter.covers(&b.filter) || b.filter.covers(&a.filter) {
                    continue;
                }
                if let Some(merged) = merge_cover(&a.filter, &b.filter) {
                    out.merges.push(MergeProposal { a: a.id, b: b.id, merged });
                }
            }
        }
    }
    out
}

/// A filter covering both `a` and `b`. Since PR 8 the implementation
/// lives in `gloss_event` (the broker's covering tables merge with it
/// online); this re-export keeps the analysis API stable.
pub use gloss_event::merge_cover;

/// The audit as warnings (for metrics and the CLI).
pub fn audit_report(subs: &[Subscription]) -> Report {
    let audit = audit(subs);
    let mut report = Report::new();
    let find = |id: u64| subs.iter().find(|s| s.id == id).map(|s| s.filter.to_string());
    for r in &audit.redundant {
        report.warn(
            "redundant-subscription",
            None,
            Span::default(),
            format!(
                "subscription {} `{}` is covered by subscription {} `{}`",
                r.covered,
                find(r.covered).unwrap_or_default(),
                r.by,
                find(r.by).unwrap_or_default(),
            ),
        );
    }
    for m in &audit.merges {
        report.warn(
            "merge-candidate",
            None,
            Span::default(),
            format!("subscriptions {} and {} could forward as one cover `{}`", m.a, m.b, m.merged),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_event::Op;

    fn sub(id: u64, filter: Filter) -> Subscription {
        Subscription { id, filter }
    }

    #[test]
    fn redundant_pairs_found() {
        let broad = Filter::for_kind("k").with_constraint("x", Op::Gt, 0i64);
        let narrow = Filter::for_kind("k").with_constraint("x", Op::Gt, 5i64);
        let a = audit(&[sub(1, broad.clone()), sub(2, narrow)]);
        assert_eq!(a.redundant, vec![Redundant { covered: 2, by: 1 }]);
        // Equal filters: the later one is flagged, once.
        let a = audit(&[sub(1, broad.clone()), sub(2, broad)]);
        assert_eq!(a.redundant, vec![Redundant { covered: 2, by: 1 }]);
    }

    #[test]
    fn merge_proposal_covers_both() {
        let a = Filter::for_kind("k").with_constraint("x", Op::Gt, 0i64).with_eq("user", "bob");
        let b = Filter::for_kind("k").with_constraint("x", Op::Gt, 5i64).with_eq("user", "anna");
        let out = audit(&[sub(1, a.clone()), sub(2, b.clone())]);
        assert!(out.redundant.is_empty());
        assert_eq!(out.merges.len(), 1);
        let merged = &out.merges[0].merged;
        assert!(merged.covers(&a), "{merged}");
        assert!(merged.covers(&b), "{merged}");
        // The shared `x > 0` survives; the conflicting users do not.
        assert_eq!(merged.constraints().len(), 1);
    }

    #[test]
    fn unrelated_filters_stay_apart() {
        let a = Filter::for_kind("k1").with_eq("u", "bob");
        let b = Filter::for_kind("k2").with_eq("u", "bob");
        let out = audit(&[sub(1, a), sub(2, b)]);
        assert!(out.redundant.is_empty());
        assert!(out.merges.is_empty());
        // Same kind but nothing implied: no merge.
        let a = Filter::for_kind("k").with_eq("u", "bob");
        let b = Filter::for_kind("k").with_eq("u", "anna");
        let out = audit(&[sub(1, a), sub(2, b)]);
        assert!(out.merges.is_empty());
    }

    fn random_filter(rng: &mut gloss_sim::SimRng) -> Filter {
        let mut f = match rng.index(3) {
            0 => Filter::for_kind("k"),
            1 => Filter::for_kind("m"),
            _ => Filter::any(),
        };
        const OPS: [Op; 10] = [
            Op::Eq,
            Op::Ne,
            Op::Lt,
            Op::Le,
            Op::Gt,
            Op::Ge,
            Op::Prefix,
            Op::Suffix,
            Op::Contains,
            Op::Exists,
        ];
        for _ in 0..rng.index(4) {
            let attr = ["x", "u"][rng.index(2)];
            let op = OPS[rng.index(OPS.len())];
            if rng.chance(0.5) {
                f = f.with_constraint(attr, op, rng.index(4) as i64);
            } else {
                f = f.with_constraint(attr, op, ["st", "st andrews", ""][rng.index(3)]);
            }
        }
        f
    }

    #[test]
    fn indexed_audit_matches_pairwise_oracle() {
        for seed in 0..25u64 {
            let mut rng = gloss_sim::SimRng::new(0x9e37 + seed);
            let n = 40 + rng.index(60);
            let subs: Vec<Subscription> =
                (0..n).map(|i| sub(i as u64 + 1, random_filter(&mut rng))).collect();
            let want = audit_pairwise(&subs);
            let got = audit_indexed(&subs);
            let key = |r: &Redundant| (r.covered, r.by);
            let mut w = want.redundant.clone();
            w.sort_unstable_by_key(key);
            let mut g = got.redundant.clone();
            g.sort_unstable_by_key(key);
            assert_eq!(g, w, "seed {seed}: indexed redundancy set diverged from oracle");
            // The indexed merge sweep is a bounded subset, but every
            // proposal it does emit must genuinely cover both parties.
            for m in &got.merges {
                let a = &subs.iter().find(|s| s.id == m.a).unwrap().filter;
                let b = &subs.iter().find(|s| s.id == m.b).unwrap().filter;
                assert!(m.merged.covers(a) && m.merged.covers(b), "seed {seed}: {}", m.merged);
            }
        }
    }

    #[test]
    fn audit_dispatches_to_index_above_threshold() {
        // Above INDEXED_THRESHOLD the indexed path runs: plant one
        // duplicate pair in a sea of distinct Eq filters and check it is
        // still the only finding.
        let mut subs: Vec<Subscription> = (0..1100u64)
            .map(|i| sub(i + 1, Filter::for_kind("k").with_eq("user", format!("u{i}"))))
            .collect();
        subs.push(sub(9000, Filter::for_kind("k").with_eq("user", "u7")));
        let out = audit(&subs);
        assert_eq!(out.redundant, vec![Redundant { covered: 9000, by: 8 }]);
    }

    #[test]
    fn report_renders_both_kinds() {
        let broad = Filter::for_kind("k").with_constraint("x", Op::Gt, 0i64);
        let narrow = Filter::for_kind("k").with_constraint("x", Op::Gt, 5i64);
        let r = audit_report(&[sub(1, broad), sub(2, narrow)]);
        assert_eq!(r.warning_count(), 1);
        assert!(r.to_string().contains("covered by subscription 1"), "{r}");
    }
}
