//! Deploy-time static analysis for Gloss matchlets and subscriptions.
//!
//! Four passes, all sound-but-incomplete (a reported error is a proof of
//! a defect; silence is not a proof of health):
//!
//! 1. **Dataflow** ([`dataflow::check_rules`]) — unbound variables in
//!    `where`/`emit` (a guaranteed runtime `EvalError` on every firing),
//!    bindings never read, duplicate rule names and bodies.
//! 2. **Types & satisfiability** ([`types::check_rules`],
//!    [`satisfy::check_filter`]) — per-variable type inference across
//!    patterns, builtins and expressions; never-true conditions; empty
//!    per-attribute intervals in subscription filters; redundant
//!    constraints.
//! 3. **Covering audit** ([`covering::audit`]) — pairwise
//!    `Filter::covers` over a broker's subscription table: redundant
//!    subscriptions and merged-cover proposals, the edges a SIENA-style
//!    covering index would collapse.
//! 4. **Interaction graph** ([`graph::InteractionGraph`]) — kind-level
//!    emits→triggers edges: dead rules, unreachable emits, and firing
//!    cycles (a conservative non-termination warning).
//!
//! A fifth, informational pass — [`sharing::sharing_report`] — computes
//! the shared beta-network trie the engine will build for a rule set:
//! how many join nodes prefix sharing collapses and which prefixes
//! carry the most rules (`gloss-lint --sharing`).
//!
//! The deploy plane runs [`analyze_rules`] as a gate: artifacts with
//! error-level findings are rejected before they reach an engine. The
//! `gloss-lint` binary runs the same passes from the command line.

pub mod covering;
pub mod dataflow;
pub mod diag;
pub mod graph;
pub mod satisfy;
pub mod sharing;
pub mod types;

pub use covering::{audit, audit_report, merge_cover, CoveringAudit, MergeProposal, Redundant};
pub use diag::{Diagnostic, Report, Severity};
pub use graph::InteractionGraph;
pub use satisfy::{check_filter, simplify, unsatisfiable};
pub use sharing::{sharing_report, SharedPrefix, SharingReport};

use gloss_matchlet::{parse_rules, MatchletError, Rule};

/// Runs every per-unit pass over one set of rules (one bundle or file):
/// dataflow, type inference, and the interaction graph restricted to the
/// unit itself (open world — only cycles can be diagnosed without a
/// broker-wide view).
pub fn analyze_rules(rules: &[Rule]) -> Report {
    let mut report = dataflow::check_rules(rules);
    report.merge(types::check_rules(rules));
    report.merge(InteractionGraph::from_rules(rules).report(None, None));
    report
}

/// Parses then analyzes matchlet source.
pub fn analyze_source(src: &str) -> Result<Report, MatchletError> {
    Ok(analyze_rules(&parse_rules(src)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_source_combines_passes() {
        let r = analyze_source(
            r#"rule bad {
                on w: event weather(c: ?c, street: ?street)
                where ?c > 18.0 and ?c = "hot"
                emit weather(c: ?ghost)
            }"#,
        )
        .unwrap();
        let codes: Vec<_> = r.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"unbound-variable"), "{r}");
        assert!(codes.contains(&"unused-binding"), "{r}");
        assert!(codes.contains(&"type-conflict"), "{r}");
        assert!(codes.contains(&"firing-cycle"), "{r}");
        assert!(r.has_errors());
    }

    #[test]
    fn clean_source_is_clean() {
        let r = analyze_source(
            r#"rule hot {
                on w: event weather(c: ?c)
                where ?c > 18.0
                emit alert.hot(c: ?c)
            }"#,
        )
        .unwrap();
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn parse_errors_carry_snippets() {
        let err = analyze_source("rule broken {\n  on\n}").unwrap_err();
        assert!(err.snippet.is_some());
    }
}
