//! Pass 2b: subscription satisfiability and simplification.
//!
//! Per-attribute analysis of a [`Filter`]'s constraint conjunction:
//! pairwise disjointness (`x < 5 and x > 9`, conflicting `Prefix`/`Eq`,
//! string-only vs numeric-only operators), interval emptiness across
//! three or more numeric constraints, and equality witnesses checked
//! against every other constraint. An unsatisfiable subscription matches
//! nothing and only bloats routing tables — reject it at deploy time.
//! `simplify` additionally drops constraints implied by stronger ones.

use crate::diag::Report;
use gloss_event::{Constraint, Filter, Op};
use gloss_matchlet::Span;

/// Why a filter can never match, or `None` if no proof was found.
///
/// Sound, not complete: `None` does not guarantee satisfiability, but a
/// `Some` is a proof that no event matches.
pub fn unsatisfiable(filter: &Filter) -> Option<String> {
    let cs = filter.constraints();
    // Pairwise disjointness on the same attribute.
    for (i, a) in cs.iter().enumerate() {
        for b in &cs[i + 1..] {
            if a.disjoint(b) {
                return Some(format!("`{a}` and `{b}` cannot both hold"));
            }
        }
    }
    // An equality pins the attribute to one value: every other constraint
    // on that attribute must accept it.
    for a in cs.iter().filter(|c| c.op == Op::Eq) {
        for b in cs.iter().filter(|c| c.attr == a.attr) {
            if !b.matches_value(&a.value) {
                return Some(format!("`{a}` pins the value but `{b}` rejects it"));
            }
        }
    }
    // Numeric interval analysis per attribute: lower/upper bounds from
    // all comparisons together, plus `!=` holes. Catches three-way
    // conflicts like `x >= 5 and x <= 5 and x != 5`.
    let mut attrs: Vec<&str> = cs.iter().map(|c| c.attr.as_str()).collect();
    attrs.sort_unstable();
    attrs.dedup();
    for attr in attrs {
        if let Some(reason) = empty_numeric_interval(cs, attr) {
            return Some(reason);
        }
    }
    None
}

/// Bounds `(value, strict)` folded over every numeric comparison on one
/// attribute; reports the reason if the interval is empty.
fn empty_numeric_interval(cs: &[Constraint], attr: &str) -> Option<String> {
    let mut lo: Option<(f64, bool)> = None;
    let mut hi: Option<(f64, bool)> = None;
    let mut holes: Vec<f64> = Vec::new();
    for c in cs.iter().filter(|c| c.attr == attr) {
        let Some(v) = c.value.as_number() else { continue };
        match c.op {
            Op::Lt => tighten(&mut hi, v, true, f64::lt),
            Op::Le => tighten(&mut hi, v, false, f64::lt),
            Op::Gt => tighten(&mut lo, v, true, f64::gt),
            Op::Ge => tighten(&mut lo, v, false, f64::gt),
            Op::Eq => {
                tighten(&mut lo, v, false, f64::gt);
                tighten(&mut hi, v, false, f64::lt);
            }
            Op::Ne => holes.push(v),
            _ => {}
        }
    }
    let (Some((lo, lo_strict)), Some((hi, hi_strict))) = (lo, hi) else { return None };
    if lo > hi || (lo == hi && (lo_strict || hi_strict)) {
        return Some(format!(
            "numeric constraints on `{attr}` leave an empty interval ({lo} .. {hi})"
        ));
    }
    if lo == hi && holes.contains(&lo) {
        return Some(format!(
            "numeric constraints on `{attr}` pin it to {lo}, which `!=` excludes"
        ));
    }
    None
}

/// Replaces a bound if the new one is tighter (`better` orders values;
/// equal values keep the strict flag if either is strict).
fn tighten(
    slot: &mut Option<(f64, bool)>,
    v: f64,
    strict: bool,
    better: impl Fn(&f64, &f64) -> bool,
) {
    *slot = Some(match *slot {
        None => (v, strict),
        Some((cur, cur_strict)) => {
            if better(&v, &cur) {
                (v, strict)
            } else if v == cur {
                (cur, cur_strict || strict)
            } else {
                (cur, cur_strict)
            }
        }
    });
}

/// Drops constraints implied by stronger ones on the same attribute.
/// Returns the simplified filter and one warning per dropped constraint.
/// The result matches exactly the same events as the input.
pub fn simplify(filter: &Filter) -> (Filter, Report) {
    let cs = filter.constraints();
    let mut report = Report::new();
    let mut keep: Vec<bool> = vec![true; cs.len()];
    for i in 0..cs.len() {
        for j in 0..cs.len() {
            if i == j || !keep[i] || !keep[j] {
                continue;
            }
            // `cs[j]` implies `cs[i]`: the broader `cs[i]` is dead weight.
            // For mutually-covering (equal) pairs keep the earlier one.
            if cs[i].covers(&cs[j]) && (!cs[j].covers(&cs[i]) || j < i) {
                keep[i] = false;
                report.warn(
                    "redundant-constraint",
                    None,
                    Span::default(),
                    format!("`{}` is implied by `{}` and can be dropped", cs[i], cs[j]),
                );
            }
        }
    }
    let kept =
        cs.iter().zip(&keep).filter(|(_, k)| **k).map(|(c, _)| c.clone()).collect::<Vec<_>>();
    (Filter::from_parts(filter.kind().map(str::to_owned), kept), report)
}

/// Full subscription check: unsatisfiability is an error, redundant
/// constraints are warnings.
pub fn check_filter(filter: &Filter) -> Report {
    let mut report = Report::new();
    if let Some(reason) = unsatisfiable(filter) {
        report.error(
            "unsatisfiable-filter",
            None,
            Span::default(),
            format!("filter `{filter}` can never match: {reason}"),
        );
        return report;
    }
    let (_, simplification) = simplify(filter);
    report.merge(simplification);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_event::Op;

    #[test]
    fn empty_numeric_ranges() {
        let f = Filter::any().with_constraint("x", Op::Lt, 5i64).with_constraint("x", Op::Gt, 9i64);
        assert!(unsatisfiable(&f).is_some());
        let f = Filter::any().with_constraint("x", Op::Lt, 5i64).with_constraint("x", Op::Gt, 2i64);
        assert!(unsatisfiable(&f).is_none());
        // Boundary: x >= 5 and x <= 5 is exactly {5}.
        let pin =
            Filter::any().with_constraint("x", Op::Ge, 5i64).with_constraint("x", Op::Le, 5i64);
        assert!(unsatisfiable(&pin).is_none());
        // Three-way: the pin plus != 5 needs the interval analysis.
        let f = pin.clone().with_constraint("x", Op::Ne, 5i64);
        assert!(unsatisfiable(&f).is_some(), "{f}");
        // Strictness matters: x > 5 and x <= 5.
        let f = Filter::any().with_constraint("x", Op::Gt, 5i64).with_constraint("x", Op::Le, 5i64);
        assert!(unsatisfiable(&f).is_some());
    }

    #[test]
    fn conflicting_string_constraints() {
        let f =
            Filter::any().with_constraint("s", Op::Prefix, "north").with_eq("s", "south street");
        assert!(unsatisfiable(&f).is_some());
        let f =
            Filter::any().with_constraint("s", Op::Prefix, "south").with_eq("s", "south street");
        assert!(unsatisfiable(&f).is_none());
        // Equality witness checked against every other constraint.
        let f = Filter::any().with_eq("s", "south street").with_constraint("s", Op::Contains, "x");
        assert!(unsatisfiable(&f).is_some());
    }

    #[test]
    fn cross_type_conflicts() {
        let f =
            Filter::any().with_constraint("x", Op::Prefix, "a").with_constraint("x", Op::Gt, 3i64);
        assert!(unsatisfiable(&f).is_some());
        let f = Filter::any().with_eq("x", "5").with_constraint("x", Op::Lt, 9i64);
        assert!(unsatisfiable(&f).is_some(), "string \"5\" never compares to 9");
    }

    #[test]
    fn different_attributes_never_conflict() {
        let f = Filter::any().with_constraint("x", Op::Lt, 5i64).with_constraint("y", Op::Gt, 9i64);
        assert!(unsatisfiable(&f).is_none());
    }

    #[test]
    fn simplify_drops_implied_constraints() {
        let f = Filter::for_kind("k")
            .with_constraint("x", Op::Lt, 10i64)
            .with_constraint("x", Op::Lt, 5i64)
            .with_constraint("s", Op::Prefix, "st")
            .with_constraint("s", Op::Prefix, "st andrews");
        let (simpler, report) = simplify(&f);
        assert_eq!(simpler.constraints().len(), 2, "{simpler}");
        assert_eq!(report.warning_count(), 2);
        assert_eq!(simpler.constraints()[0], Constraint::new("x", Op::Lt, 5i64));
        assert_eq!(simpler.constraints()[1], Constraint::new("s", Op::Prefix, "st andrews"));
        // Exact duplicates collapse to one.
        let f = Filter::any().with_eq("u", "bob").with_eq("u", "bob");
        let (simpler, _) = simplify(&f);
        assert_eq!(simpler.constraints().len(), 1);
        // Nothing to do: unchanged.
        let f = Filter::any().with_eq("u", "bob").with_constraint("x", Op::Lt, 5i64);
        let (simpler, report) = simplify(&f);
        assert_eq!(simpler, f);
        assert!(report.is_clean());
    }

    #[test]
    fn check_filter_severities() {
        let bad =
            Filter::any().with_constraint("x", Op::Lt, 5i64).with_constraint("x", Op::Gt, 9i64);
        assert!(check_filter(&bad).has_errors());
        let redundant =
            Filter::any().with_constraint("x", Op::Lt, 5i64).with_constraint("x", Op::Lt, 10i64);
        let r = check_filter(&redundant);
        assert!(!r.has_errors());
        assert_eq!(r.warning_count(), 1);
        assert!(check_filter(&Filter::for_kind("k")).is_clean());
    }
}
