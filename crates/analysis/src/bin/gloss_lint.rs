//! `gloss-lint` — run the deploy-time static analysis over matchlet
//! source files without deploying anything.
//!
//! ```text
//! gloss-lint [--deny-warnings] [--sharing] FILE.matchlet [FILE.matchlet ...]
//! ```
//!
//! `--sharing` additionally prints the beta-network prefix-sharing
//! report for each file (informational; never affects the exit status).
//!
//! Exit status: 0 when every file is clean (or warning-only without
//! `--deny-warnings`), 1 when any file has error-level findings (or any
//! findings under `--deny-warnings`), 2 on usage or I/O problems.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_warnings = false;
    let mut show_sharing = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--sharing" => show_sharing = true,
            "--help" | "-h" => {
                println!("usage: gloss-lint [--deny-warnings] [--sharing] FILE.matchlet ...");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("gloss-lint: unknown flag `{arg}`");
                return ExitCode::from(2);
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("usage: gloss-lint [--deny-warnings] FILE.matchlet ...");
        return ExitCode::from(2);
    }

    let (mut errors, mut warnings, mut io_failed) = (0usize, 0usize, false);
    for path in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("gloss-lint: {path}: {e}");
                io_failed = true;
                continue;
            }
        };
        match gloss_matchlet::parse_rules(&src) {
            Err(parse_err) => {
                // Parse failures print with their source snippet.
                eprintln!("{path}: parse error: {parse_err}");
                errors += 1;
            }
            Ok(rules) => {
                let report = gloss_analysis::analyze_rules(&rules);
                for d in &report.diagnostics {
                    println!("{path}: {d}");
                }
                errors += report.error_count();
                warnings += report.warning_count();
                if show_sharing {
                    print!("{path}: {}", gloss_analysis::sharing_report(&rules, 8));
                }
            }
        }
    }

    eprintln!("gloss-lint: {} file(s), {errors} error(s), {warnings} warning(s)", files.len());
    if io_failed {
        ExitCode::from(2)
    } else if errors > 0 || (deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
