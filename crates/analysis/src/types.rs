//! Pass 2a: type inference and constant conditions.
//!
//! Infers a set of possible runtime types per variable from how the rule
//! uses it — comparison operands, builtin argument positions, arithmetic
//! — and flags variables whose set becomes empty: no binding can ever
//! satisfy every use, so the rule can never fire. Conditions that use no
//! variables and no dynamic state are folded with the real evaluator;
//! constant-false (or always-erroring) conditions are errors.
//!
//! Inference is deliberately conservative: constraints are only recorded
//! from *conjunctive* positions (top-level goals and `and` chains). A use
//! inside `or`/`not` might never be evaluated on the path that fires, so
//! it proves nothing.

use crate::diag::Report;
use gloss_knowledge::{InMemoryFacts, Term};
use gloss_matchlet::ast::{BinOp, Expr, Goal, Pat, Rule, Span};
use gloss_matchlet::builtin::{is_builtin, reads_dynamic_state};
use gloss_matchlet::eval::{eval, Bindings};
use gloss_sim::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// A set of possible runtime types, as a bitmask over [`Term`] variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypeSet(u8);

impl TypeSet {
    /// Strings.
    pub const STR: TypeSet = TypeSet(1);
    /// Integers.
    pub const INT: TypeSet = TypeSet(2);
    /// Floats.
    pub const FLOAT: TypeSet = TypeSet(4);
    /// Booleans.
    pub const BOOL: TypeSet = TypeSet(8);
    /// Geographic points.
    pub const GEO: TypeSet = TypeSet(16);
    /// Instants.
    pub const TIME: TypeSet = TypeSet(32);
    /// Anything `Term::as_f64` accepts (`Int`, `Float`, `Time`).
    pub const NUMERIC: TypeSet = TypeSet(2 | 4 | 32);
    /// What an event attribute can hold.
    pub const ATTR: TypeSet = TypeSet(1 | 2 | 4 | 8);
    /// Every type.
    pub const ANY: TypeSet = TypeSet(63);

    /// Set intersection.
    pub fn intersect(self, other: TypeSet) -> TypeSet {
        TypeSet(self.0 & other.0)
    }

    /// Whether no type remains.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The type set a literal term inhabits.
    pub fn of(term: &Term) -> TypeSet {
        match term {
            Term::Str(_) => TypeSet::STR,
            Term::Int(_) => TypeSet::INT,
            Term::Float(_) => TypeSet::FLOAT,
            Term::Bool(_) => TypeSet::BOOL,
            Term::Geo(_) => TypeSet::GEO,
            Term::Time(_) => TypeSet::TIME,
        }
    }
}

impl fmt::Display for TypeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = [
            (TypeSet::STR, "string"),
            (TypeSet::INT, "int"),
            (TypeSet::FLOAT, "float"),
            (TypeSet::BOOL, "bool"),
            (TypeSet::GEO, "geo"),
            (TypeSet::TIME, "time"),
        ]
        .iter()
        .filter(|(t, _)| !self.intersect(*t).is_empty())
        .map(|(_, n)| *n)
        .collect();
        if names.is_empty() {
            f.write_str("nothing")
        } else {
            f.write_str(&names.join("|"))
        }
    }
}

/// A builtin's signature: per-argument type sets and the return type,
/// looked up by name **and** arity. Mirrors `builtin::call`.
fn builtin_sig(name: &str, arity: usize) -> Option<(&'static [TypeSet], TypeSet)> {
    const NUM2: &[TypeSet] = &[TypeSet::NUMERIC, TypeSet::NUMERIC];
    const GEO1: &[TypeSet] = &[TypeSet::GEO];
    const GEO2: &[TypeSet] = &[TypeSet::GEO, TypeSet::GEO];
    const STR1: &[TypeSet] = &[TypeSet::STR];
    const STR2: &[TypeSet] = &[TypeSet::STR, TypeSet::STR];
    const TIME1: &[TypeSet] = &[TypeSet::TIME];
    const TIME2: &[TypeSet] = &[TypeSet::TIME, TypeSet::TIME];
    const ANY1: &[TypeSet] = &[TypeSet::ANY];
    const NONE: &[TypeSet] = &[];
    match (name, arity) {
        ("geo", 2) => Some((NUM2, TypeSet::GEO)),
        ("distance_km", 2) => Some((GEO2, TypeSet::FLOAT)),
        ("lat", 1) | ("lon", 1) => Some((GEO1, TypeSet::FLOAT)),
        ("walk_minutes", 2) => Some((GEO2, TypeSet::FLOAT)),
        ("now", 0) => Some((NONE, TypeSet::TIME)),
        ("minutes_of_day", 0) => Some((NONE, TypeSet::INT)),
        ("minutes_of_day", 1) => Some((TIME1, TypeSet::INT)),
        ("seconds_between", 2) => Some((TIME2, TypeSet::FLOAT)),
        ("hot_threshold", 1) => Some((ANY1, TypeSet::FLOAT)),
        ("lower", 1) => Some((STR1, TypeSet::STR)),
        ("contains", 2) => Some((STR2, TypeSet::BOOL)),
        ("concat", 2) => Some((STR2, TypeSet::STR)),
        ("abs", 1) => Some((&[TypeSet::NUMERIC], TypeSet::FLOAT)),
        ("min", 2) | ("max", 2) => Some((NUM2, TypeSet::FLOAT)),
        // The boolean `fact` form is handled by the evaluator itself.
        ("fact", 3) => Some((&[TypeSet::ANY, TypeSet::ANY, TypeSet::ANY], TypeSet::BOOL)),
        _ => None,
    }
}

/// Runs the pass over every rule.
pub fn check_rules(rules: &[Rule]) -> Report {
    let mut report = Report::new();
    for rule in rules {
        check_rule(rule, &mut report);
    }
    report
}

fn check_rule(rule: &Rule, report: &mut Report) {
    // Initial sets: pattern variables hold attribute values, fact-bound
    // variables any term.
    let mut vars: BTreeMap<String, (TypeSet, Span)> = BTreeMap::new();
    for (i, p) in rule.patterns.iter().enumerate() {
        for (_, pat) in &p.fields {
            if let Pat::Var(v) = pat {
                vars.entry(v.as_str().to_string())
                    .or_insert((TypeSet::ATTR, rule.spans.pattern(i)));
            }
        }
    }
    for (i, goal) in rule.goals.iter().enumerate() {
        if let Goal::Fact { subject, object, .. } = goal {
            for pat in [subject, object] {
                if let Pat::Var(v) = pat {
                    vars.entry(v.as_str().to_string())
                        .or_insert((TypeSet::ANY, rule.spans.goal(i)));
                }
            }
        }
    }

    // Gather constraints and structural checks from every goal and emit.
    for (i, goal) in rule.goals.iter().enumerate() {
        if let Goal::Cond(expr) = goal {
            let cx = Cx { required: true, evaluated: true };
            walk(expr, rule.spans.goal(i), rule, cx, &mut vars, report);
            const_fold(expr, rule.spans.goal(i), rule, report);
        }
    }
    for (_, expr) in &rule.emit.fields {
        // An emit expression that always errors means the rule never
        // emits; its truth is not constrained.
        let cx = Cx { required: false, evaluated: true };
        walk(expr, rule.spans.emit, rule, cx, &mut vars, report);
    }

    for (name, (set, span)) in &vars {
        if set.is_empty() {
            report.error(
                "type-conflict",
                Some(&rule.name),
                *span,
                format!("`?{name}` has no possible type: its uses contradict each other, so the rule can never fire"),
            );
        }
    }
}

/// Where an expression sits relative to its goal.
///
/// `required`: the goal only passes if this expression is *true* —
/// narrowing from what truth demands (e.g. `?x = 5`) is sound.
/// `evaluated`: this expression is evaluated whenever the goal is — an
/// eval **error** here kills the solution, so narrowing from what
/// error-free evaluation demands (builtin argument types, ordered
/// comparisons, arithmetic) is sound even under `not`/inside operands.
/// Neither holds inside `or` right branches: they may be skipped.
#[derive(Clone, Copy)]
struct Cx {
    required: bool,
    evaluated: bool,
}

/// Walks an expression: reports unknown functions and bad arities, and
/// narrows variable type sets where the context makes it sound.
fn walk(
    expr: &Expr,
    span: Span,
    rule: &Rule,
    cx: Cx,
    vars: &mut BTreeMap<String, (TypeSet, Span)>,
    report: &mut Report,
) {
    let narrow = |name: &str, to: TypeSet, vars: &mut BTreeMap<String, (TypeSet, Span)>| {
        if name == "_" {
            return;
        }
        if let Some((set, _)) = vars.get_mut(name) {
            *set = set.intersect(to);
        }
    };
    // Operands lose `required` (their own truth is not what the goal
    // tests) but keep `evaluated`.
    let operand = Cx { required: false, evaluated: cx.evaluated };
    match expr {
        Expr::Lit(_) | Expr::Var(_) => {}
        Expr::Not(inner) => {
            // `not` needs a boolean operand to evaluate at all.
            if cx.evaluated {
                if let Expr::Var(v) = &**inner {
                    narrow(v.as_str(), TypeSet::BOOL, vars);
                }
            }
            walk(inner, span, rule, operand, vars, report);
        }
        Expr::Neg(inner) => {
            if cx.evaluated {
                if let Expr::Var(v) = &**inner {
                    narrow(v.as_str(), TypeSet::NUMERIC, vars);
                }
            }
            walk(inner, span, rule, operand, vars, report);
        }
        Expr::Binary(op, l, r) => {
            match op {
                BinOp::And => {
                    // If the conjunction must be true, both sides must be
                    // true (and hence both are evaluated).
                    let side = if cx.required { cx } else { operand };
                    walk(l, span, rule, Cx { evaluated: cx.evaluated, ..side }, vars, report);
                    let right = Cx { evaluated: cx.required && cx.evaluated, ..side };
                    walk(r, span, rule, right, vars, report);
                    return;
                }
                BinOp::Or => {
                    // Either side alone may satisfy the goal; the right
                    // side may be skipped entirely.
                    walk(l, span, rule, operand, vars, report);
                    let right = Cx { required: false, evaluated: false };
                    walk(r, span, rule, right, vars, report);
                    return;
                }
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    // var-vs-literal narrows the variable.
                    for (a, b) in [(&**l, &**r), (&**r, &**l)] {
                        let (Expr::Var(v), Expr::Lit(t)) = (a, b) else { continue };
                        let lit = TypeSet::of(t);
                        match op {
                            // Equality across types is false, not an
                            // error; to be *true* the types must meet
                            // (numerics compare across Int/Float/Time).
                            BinOp::Eq if cx.required => {
                                let to = if lit.intersect(TypeSet::NUMERIC).is_empty() {
                                    lit
                                } else {
                                    TypeSet::NUMERIC
                                };
                                narrow(v.as_str(), to, vars);
                            }
                            // != is satisfied by any type (mismatched
                            // types are simply unequal): no narrowing.
                            BinOp::Eq | BinOp::Ne => {}
                            // Ordered comparison *errors* on a type
                            // mismatch: strings compare to strings,
                            // everything else numerically.
                            _ if cx.evaluated => {
                                let to = if !lit.intersect(TypeSet::STR).is_empty() {
                                    TypeSet::STR
                                } else {
                                    TypeSet::NUMERIC
                                };
                                narrow(v.as_str(), to, vars);
                            }
                            _ => {}
                        }
                    }
                }
                BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    if cx.evaluated {
                        for side in [&**l, &**r] {
                            if let Expr::Var(v) = side {
                                narrow(v.as_str(), TypeSet::NUMERIC, vars);
                            }
                        }
                    }
                }
                // `+` concatenates strings or adds numbers: no narrowing.
                BinOp::Add => {}
            }
            walk(l, span, rule, operand, vars, report);
            walk(r, span, rule, operand, vars, report);
        }
        Expr::Call(name, args) => {
            // Zero-argument calls to non-builtins are atoms, not calls.
            if args.is_empty() && !is_builtin(name) {
                return;
            }
            match builtin_sig(name, args.len()) {
                None if !is_builtin(name) && name != "fact" => {
                    report.error(
                        "unknown-function",
                        Some(&rule.name),
                        span,
                        format!("unknown function `{name}`: every firing would fail to evaluate"),
                    );
                }
                None => {
                    report.error(
                        "bad-arity",
                        Some(&rule.name),
                        span,
                        format!("`{name}` does not take {} argument(s)", args.len()),
                    );
                }
                Some((arg_types, _)) => {
                    for (i, (arg, want)) in args.iter().zip(arg_types).enumerate() {
                        match arg {
                            Expr::Var(v) if cx.evaluated => narrow(v.as_str(), *want, vars),
                            Expr::Lit(t) if TypeSet::of(t).intersect(*want).is_empty() => {
                                report.error(
                                    "type-conflict",
                                    Some(&rule.name),
                                    span,
                                    format!(
                                        "`{name}` argument {} must be {want}, got {}",
                                        i + 1,
                                        TypeSet::of(t)
                                    ),
                                );
                            }
                            _ => {}
                        }
                    }
                }
            }
            for a in args {
                walk(a, span, rule, operand, vars, report);
            }
        }
    }
}

/// Whether an expression mentions any variable.
fn has_vars(expr: &Expr) -> bool {
    match expr {
        Expr::Lit(_) => false,
        Expr::Var(v) => v.as_str() != "_",
        Expr::Call(_, args) => args.iter().any(has_vars),
        Expr::Binary(_, l, r) => has_vars(l) || has_vars(r),
        Expr::Not(e) | Expr::Neg(e) => has_vars(e),
    }
}

/// Whether an expression reads state outside its arguments (the clock or
/// the knowledge base) — such expressions must not be folded.
fn is_dynamic(expr: &Expr) -> bool {
    match expr {
        Expr::Lit(_) | Expr::Var(_) => false,
        Expr::Call(name, args) => reads_dynamic_state(name) || args.iter().any(is_dynamic),
        Expr::Binary(_, l, r) => is_dynamic(l) || is_dynamic(r),
        Expr::Not(e) | Expr::Neg(e) => is_dynamic(e),
    }
}

/// Folds a variable-free, state-free condition with the real evaluator.
fn const_fold(expr: &Expr, span: Span, rule: &Rule, report: &mut Report) {
    if has_vars(expr) || is_dynamic(expr) {
        return;
    }
    let kb = InMemoryFacts::new();
    match eval(expr, &Bindings::new(), &kb, SimTime::ZERO) {
        Ok(Term::Bool(false)) => report.error(
            "never-true",
            Some(&rule.name),
            span,
            "condition is always false: the rule can never fire".to_string(),
        ),
        Ok(Term::Bool(true)) => report.warn(
            "always-true",
            Some(&rule.name),
            span,
            "condition is always true and can be removed".to_string(),
        ),
        Ok(other) => report.error(
            "non-boolean",
            Some(&rule.name),
            span,
            format!("condition evaluates to the non-boolean `{other}`"),
        ),
        Err(e) => report.error(
            "eval-error",
            Some(&rule.name),
            span,
            format!("condition always fails to evaluate: {e}"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_matchlet::parse_rules;

    fn lint(src: &str) -> Report {
        check_rules(&parse_rules(src).unwrap())
    }

    fn codes(r: &Report) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn contradictory_types_never_fire() {
        let r = lint(
            r#"rule t {
                on a: event k(x: ?x)
                where ?x > 5 and ?x = "south"
                emit out(x: ?x)
            }"#,
        );
        assert_eq!(codes(&r), vec!["type-conflict"], "{r}");
        assert!(r.to_string().contains("?x"), "{r}");
    }

    #[test]
    fn or_branches_do_not_narrow() {
        // `=` never errors, so neither branch constrains ?x: a string or
        // an int both satisfy the goal.
        let r = lint(
            r#"rule t {
                on a: event k(x: ?x)
                where ?x = 5 or ?x = "south"
                emit out(x: ?x)
            }"#,
        );
        assert!(r.is_clean(), "{r}");
        // But an *erroring* use in a surely-evaluated position narrows
        // even under `not`: a string ?x would kill every solution.
        let r = lint(
            r#"rule t {
                on a: event k(x: ?x)
                where not (?x > 5) and ?x = "south"
                emit out(x: ?x)
            }"#,
        );
        assert_eq!(codes(&r), vec!["type-conflict"], "{r}");
    }

    #[test]
    fn builtin_positions_narrow() {
        // ?g is fact-bound and used as a geo; consistent.
        let clean = lint(
            r#"rule g {
                on a: event k(lat: ?lat, lon: ?lon)
                where fact(?u, located_at, ?g) and distance_km(geo(?lat, ?lon), ?g) < 0.5
                emit out(user: ?u)
            }"#,
        );
        assert!(clean.is_clean(), "{clean}");
        // A pattern variable can never be a geo point.
        let broken = lint(
            r#"rule g {
                on a: event k(g: ?g)
                where lat(?g) > 50
                emit out()
            }"#,
        );
        assert_eq!(codes(&broken), vec!["type-conflict"], "{broken}");
    }

    #[test]
    fn unknown_function_and_bad_arity() {
        let r = lint(
            r#"rule f {
                on a: event k(x: ?x)
                where warp_speed(?x) > 1
                emit out()
            }"#,
        );
        assert_eq!(codes(&r), vec!["unknown-function"]);
        let r = lint(
            r#"rule f {
                on a: event k(x: ?x)
                where distance_km(?x) > 1
                emit out()
            }"#,
        );
        assert_eq!(codes(&r), vec!["bad-arity"]);
        // A bare atom is not a function call.
        let r = lint(
            r#"rule f {
                on a: event k(x: ?x)
                where fact(?x, likes, cake)
                emit out()
            }"#,
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn constant_conditions_fold() {
        let never = lint("rule c { on a: event k() where 2 < 1 emit out() }");
        assert_eq!(codes(&never), vec!["never-true"]);
        let always = lint("rule c { on a: event k() where 1 < 2 emit out() }");
        assert_eq!(codes(&always), vec!["always-true"]);
        assert!(!always.has_errors());
        let nonbool = lint("rule c { on a: event k() where 1 + 1 emit out() }");
        assert_eq!(codes(&nonbool), vec!["non-boolean"]);
        let erring = lint(r#"rule c { on a: event k() where 1 < "a" emit out() }"#);
        assert_eq!(codes(&erring), vec!["eval-error"]);
        // Dynamic state is never folded.
        let dynamic = lint("rule c { on a: event k() where minutes_of_day() >= 1080 emit out() }");
        assert!(dynamic.is_clean(), "{dynamic}");
    }

    #[test]
    fn literal_builtin_argument_type_checked() {
        let r = lint(r#"rule c { on a: event k(x: ?x) where lower(5) = "a" emit out(x: ?x) }"#);
        // Caught twice: structurally, and by folding the constant.
        assert!(codes(&r).contains(&"type-conflict"), "{r}");
        assert!(r.has_errors());
    }
}
