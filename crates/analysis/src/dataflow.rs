//! Pass 1: rule dataflow lint.
//!
//! Replays the engine's left-to-right solving order over the AST without
//! executing anything: event patterns bind first, then `fact` goals bind
//! their unbound variables, and every other read must hit an existing
//! binding. A read of a variable nothing binds is an error — at run time
//! it raises `EvalError::UnboundVariable` on **every** firing, silently
//! pruning the solution. Bindings nobody reads, duplicate rule names and
//! duplicated rule bodies are warnings.

use crate::diag::Report;
use gloss_matchlet::ast::{Expr, Goal, Pat, Rule, Span};

/// Lints a set of rules (one compilation unit / bundle).
pub fn check_rules(rules: &[Rule]) -> Report {
    let mut report = Report::new();
    for rule in rules {
        check_rule(rule, &mut report);
    }
    // Cross-rule: duplicate names shadow each other in the engine's
    // name-keyed removal; duplicate bodies double every emission.
    for (i, a) in rules.iter().enumerate() {
        for b in &rules[i + 1..] {
            if a.name == b.name {
                report.error(
                    "duplicate-rule",
                    Some(&b.name),
                    b.spans.rule,
                    format!("rule `{}` is defined more than once", a.name),
                );
            } else if a.patterns == b.patterns
                && a.goals == b.goals
                && a.window == b.window
                && a.emit == b.emit
            {
                report.warn(
                    "duplicate-body",
                    Some(&b.name),
                    b.spans.rule,
                    format!("rule `{}` has the same body as rule `{}`", b.name, a.name),
                );
            }
        }
    }
    report
}

/// One variable binding site, in solve order.
struct Binder {
    name: String,
    span: Span,
    read: bool,
}

fn check_rule(rule: &Rule, report: &mut Report) {
    let mut binders: Vec<Binder> = Vec::new();
    let bind_or_read = |name: &str, span: Span, binders: &mut Vec<Binder>| {
        match binders.iter_mut().find(|b| b.name == name) {
            // A second occurrence is a join constraint: a read.
            Some(b) => b.read = true,
            None => binders.push(Binder { name: name.to_string(), span, read: false }),
        }
    };

    // Event patterns bind (a repeated variable joins).
    for (i, p) in rule.patterns.iter().enumerate() {
        for (_, pat) in &p.fields {
            if let Pat::Var(v) = pat {
                bind_or_read(v.as_str(), rule.spans.pattern(i), &mut binders);
            }
        }
    }

    // Goals, left to right: `fact` patterns bind, conditions read.
    for (i, goal) in rule.goals.iter().enumerate() {
        let span = rule.spans.goal(i);
        match goal {
            Goal::Fact { subject, object, .. } => {
                for pat in [subject, object] {
                    if let Pat::Var(v) = pat {
                        bind_or_read(v.as_str(), span, &mut binders);
                    }
                }
            }
            Goal::Cond(expr) => {
                read_vars(expr, span, rule, &mut binders, report);
            }
        }
    }

    // Emit expressions read.
    for (_, expr) in &rule.emit.fields {
        read_vars(expr, rule.spans.emit, rule, &mut binders, report);
    }

    for b in &binders {
        if !b.read {
            report.warn(
                "unused-binding",
                Some(&rule.name),
                b.span,
                format!("`?{}` is bound but never read; use `_` to match without binding", b.name),
            );
        }
    }
}

/// Marks every variable in `expr` as read; unbound ones are errors.
fn read_vars(expr: &Expr, span: Span, rule: &Rule, binders: &mut Vec<Binder>, report: &mut Report) {
    match expr {
        Expr::Lit(_) => {}
        Expr::Var(v) => {
            // `_` only appears in degenerate fact-to-cond rewrites.
            if v.as_str() == "_" {
                return;
            }
            match binders.iter_mut().find(|b| b.name == v.as_str()) {
                Some(b) => b.read = true,
                None => {
                    report.error(
                        "unbound-variable",
                        Some(&rule.name),
                        span,
                        format!("`?{v}` is read but never bound by a pattern or `fact` goal"),
                    );
                    // Remember it (as read) so one mistake reports once.
                    binders.push(Binder { name: v.as_str().to_string(), span, read: true });
                }
            }
        }
        Expr::Call(_, args) => {
            for a in args {
                read_vars(a, span, rule, binders, report);
            }
        }
        Expr::Binary(_, l, r) => {
            read_vars(l, span, rule, binders, report);
            read_vars(r, span, rule, binders, report);
        }
        Expr::Not(inner) | Expr::Neg(inner) => read_vars(inner, span, rule, binders, report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_matchlet::parse_rules;

    fn lint(src: &str) -> Report {
        check_rules(&parse_rules(src).unwrap())
    }

    fn codes(r: &Report) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_rule_is_clean() {
        let r = lint(
            r#"rule hot {
                on w: event weather(c: ?c, street: _)
                where ?c > 18.0
                emit alert(c: ?c)
            }"#,
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn unbound_variable_in_cond_and_emit() {
        let r = lint(
            r#"rule bad {
                on w: event weather(c: ?c)
                where ?missing > 1
                emit alert(c: ?c, x: ?ghost)
            }"#,
        );
        assert!(r.has_errors());
        assert_eq!(codes(&r), vec!["unbound-variable", "unbound-variable"]);
        assert!(r.to_string().contains("?missing"));
        assert!(r.to_string().contains("?ghost"));
        // Spans point at the offending clauses.
        assert_eq!(r.diagnostics[0].span.line, 3);
        assert_eq!(r.diagnostics[1].span.line, 4);
    }

    #[test]
    fn fact_goals_bind_in_order() {
        // ?u binds from the pattern, ?nat from the first fact goal, and
        // both are then readable.
        let r = lint(
            r#"rule f {
                on l: event loc(user: ?u)
                where fact(?u, nationality, ?nat) and ?nat = "scottish"
                emit out(user: ?u)
            }"#,
        );
        assert!(r.is_clean(), "{r}");
        // Reversed order: the condition runs before the fact goal binds.
        let r = lint(
            r#"rule f {
                on l: event loc(user: ?u)
                where ?nat = "scottish" and fact(?u, nationality, ?nat)
                emit out(user: ?u)
            }"#,
        );
        assert_eq!(codes(&r), vec!["unbound-variable"]);
    }

    #[test]
    fn unused_binding_warns() {
        let r = lint(
            r#"rule u {
                on w: event weather(c: ?c, street: ?street)
                where ?c > 18.0
                emit alert(c: ?c)
            }"#,
        );
        assert!(!r.has_errors());
        assert_eq!(codes(&r), vec!["unused-binding"]);
        assert!(r.to_string().contains("?street"), "{r}");
    }

    #[test]
    fn join_variables_count_as_read() {
        let r = lint(
            r#"rule j {
                on a: event k1(user: ?u)
                on b: event k2(user: ?u)
                emit both()
            }"#,
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn duplicate_names_and_bodies() {
        let r = lint(
            r#"
            rule a { on x: event k(v: ?v) emit out(v: ?v) }
            rule a { on x: event j() emit other() }
            "#,
        );
        assert_eq!(codes(&r), vec!["duplicate-rule"]);
        let r = lint(
            r#"
            rule a { on x: event k(v: ?v) emit out(v: ?v) }
            rule b { on x: event k(v: ?v) emit out(v: ?v) }
            "#,
        );
        assert_eq!(codes(&r), vec!["duplicate-body"]);
        assert!(!r.has_errors());
    }
}
