//! Prefix-sharing report: how much of a rule set's join work the shared
//! beta network collapses.
//!
//! The matchlet engine canonicalises every memo-eligible rule's goals
//! (see `gloss_matchlet::canonical`) and interns them into a prefix
//! trie, so rules whose chains start with the same canonical goals share
//! the join nodes — and the memoised partial solutions — for that
//! prefix. This pass computes the same trie statically at deploy time:
//! how many chain nodes the rule set *would* need unshared, how many
//! distinct trie nodes it actually needs, and which prefixes carry the
//! most rules (the hot shared state worth knowing about before deploy).

use gloss_matchlet::canonical::canonical_chain;
use gloss_matchlet::Rule;
use std::collections::BTreeMap;
use std::fmt;

/// One shared prefix of the static beta trie.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedPrefix {
    /// Number of canonical goals in the prefix.
    pub depth: usize,
    /// Rules whose chains pass through the prefix's last node.
    pub rules: usize,
    /// The predicates the prefix enumerates, in chain order (a readable
    /// proxy for the canonical encoding).
    pub predicates: Vec<String>,
}

/// Deploy-time view of beta-network sharing for one rule set.
#[derive(Debug, Clone, Default)]
pub struct SharingReport {
    /// Rules with a canonical chain (hosted on the shared network).
    pub memo_rules: usize,
    /// Rules solved directly every firing (dynamic-state conditions or
    /// no fact goals) — they share nothing by design.
    pub direct_rules: usize,
    /// Join nodes the memo rules would need without sharing (the sum of
    /// their chain lengths — one per-rule table per goal, as the
    /// pre-sharing engine kept).
    pub chain_nodes: usize,
    /// Distinct nodes in the shared prefix trie.
    pub trie_nodes: usize,
    /// Trie nodes hosting two or more rules.
    pub shared_nodes: usize,
    /// The most-shared prefixes, widest first (ties: deeper first);
    /// prefixes used by a single rule are omitted.
    pub top_prefixes: Vec<SharedPrefix>,
}

impl SharingReport {
    /// Join-state compression from sharing: chain nodes per trie node
    /// (1.0 = no sharing; N = the trie is N× smaller than per-rule
    /// tables would be).
    pub fn compression(&self) -> f64 {
        if self.trie_nodes == 0 {
            1.0
        } else {
            self.chain_nodes as f64 / self.trie_nodes as f64
        }
    }
}

impl fmt::Display for SharingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "beta sharing: {} memo rule(s) ({} direct), {} chain node(s) -> {} trie node(s) \
             ({} shared, {:.2}x compression)",
            self.memo_rules,
            self.direct_rules,
            self.chain_nodes,
            self.trie_nodes,
            self.shared_nodes,
            self.compression(),
        )?;
        for p in &self.top_prefixes {
            writeln!(
                f,
                "  {} rules share depth-{} prefix [{}]",
                p.rules,
                p.depth,
                p.predicates.join(" -> "),
            )?;
        }
        Ok(())
    }
}

/// Computes the sharing report for a rule set, listing at most
/// `top` shared prefixes.
pub fn sharing_report(rules: &[Rule], top: usize) -> SharingReport {
    // Trie node identity is the full canonical path to it, exactly as
    // the engine interns beta nodes (parent identity + goal encoding).
    let mut nodes: BTreeMap<String, (usize, usize, Vec<String>)> = BTreeMap::new();
    let mut report = SharingReport::default();
    for rule in rules {
        let Some(chain) = canonical_chain(rule) else {
            report.direct_rules += 1;
            continue;
        };
        report.memo_rules += 1;
        report.chain_nodes += chain.reprs.len();
        let mut path = String::new();
        let mut predicates: Vec<String> = Vec::new();
        for (depth, repr) in chain.reprs.iter().enumerate() {
            path.push('/');
            path.push_str(repr);
            if let Some(p) = repr.strip_prefix('F').and_then(|r| r.split('|').nth(1)) {
                // Fact goals carry their predicate in the encoding; keep
                // the readable name for the report.
                predicates.push(p.split_once(':').map_or(p, |(_, name)| name).to_string());
            }
            let entry =
                nodes.entry(path.clone()).or_insert_with(|| (0, depth + 1, predicates.clone()));
            entry.0 += 1;
        }
    }
    report.trie_nodes = nodes.len();
    let mut shared: Vec<SharedPrefix> = nodes
        .into_values()
        .filter(|(count, _, _)| *count >= 2)
        .map(|(count, depth, predicates)| SharedPrefix { depth, rules: count, predicates })
        .collect();
    report.shared_nodes = shared.len();
    shared.sort_by(|a, b| b.rules.cmp(&a.rules).then(b.depth.cmp(&a.depth)));
    shared.truncate(top);
    report.top_prefixes = shared;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_matchlet::parse_rules;

    fn rules(src: &str) -> Vec<Rule> {
        parse_rules(src).unwrap()
    }

    #[test]
    fn disjoint_rules_share_nothing() {
        let r = rules(
            r#"rule a { on w: event e(u: ?u) where fact(?u, likes, ?x) emit out(x: ?x) }
               rule b { on w: event e(u: ?u) where fact(?u, hates, ?x) emit out(x: ?x) }"#,
        );
        let rep = sharing_report(&r, 8);
        assert_eq!((rep.memo_rules, rep.chain_nodes, rep.trie_nodes), (2, 2, 2));
        assert_eq!(rep.shared_nodes, 0);
        assert!((rep.compression() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn common_prefixes_collapse() {
        // Three rules over the same likes ∧ nationality prefix, each
        // with a distinct leaf filter on the fact-bound variable.
        let src: String = (0..3)
            .map(|i| {
                format!(
                    r#"rule r{i} {{ on w: event e(u: ?u)
                        where fact(?u, likes, ?x) and fact(?u, nationality, ?n)
                          and ?n != "x{i}"
                        emit out(x: ?x) }}"#
                )
            })
            .collect();
        let rep = sharing_report(&rules(&src), 8);
        assert_eq!(rep.memo_rules, 3);
        assert_eq!(rep.chain_nodes, 9, "3 rules x 3 goals unshared");
        assert_eq!(rep.trie_nodes, 5, "2 shared prefix nodes + 3 leaf filters");
        assert_eq!(rep.shared_nodes, 2);
        assert!(rep.compression() > 1.7, "{}", rep.compression());
        // The widest shared prefix is reported deepest-first on ties.
        assert_eq!(rep.top_prefixes[0].rules, 3);
        assert_eq!(rep.top_prefixes[0].depth, 2);
        assert_eq!(rep.top_prefixes[0].predicates, vec!["likes", "nationality"]);
    }

    #[test]
    fn direct_rules_are_counted_separately() {
        let r = rules(
            r#"rule direct { on w: event e(u: ?u) where now() > 5 and fact(?u, likes, ?x) emit out(x: ?x) }
               rule pure { on w: event e(c: ?c) where ?c > 3 emit out(c: ?c) }"#,
        );
        let rep = sharing_report(&r, 8);
        assert_eq!(rep.memo_rules, 0);
        assert_eq!(rep.direct_rules, 2);
        assert_eq!(rep.trie_nodes, 0);
    }

    #[test]
    fn display_renders_summary_and_prefixes() {
        let r = rules(
            r#"rule a { on w: event e(u: ?u) where fact(?u, likes, ?x) emit out(x: ?x) }
               rule b { on w: event e(u: ?u) where fact(?u, likes, ?x) and fact(?u, age, ?a) emit out(x: ?a) }"#,
        );
        let rep = sharing_report(&r, 8);
        let text = rep.to_string();
        assert!(text.contains("2 memo rule(s)"), "{text}");
        assert!(text.contains("2 rules share depth-1 prefix [likes]"), "{text}");
    }
}
