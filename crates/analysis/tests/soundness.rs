//! Property tests: the analyzer's verdicts are sound.
//!
//! Every error-level verdict is a *proof*, so random search must never
//! find a counterexample:
//!
//! - a filter judged unsatisfiable matches no random event;
//! - when `covers` says yes, every event matching the covered filter
//!   matches the cover;
//! - `simplify` preserves the match set exactly;
//! - a `merge_cover` proposal covers both inputs (checked structurally
//!   *and* against random events);
//! - a rule flagged `unbound-variable`, `type-conflict` or `never-true`
//!   never emits, under random event streams through the real engine.
//!
//! Same harness style as `matchlet/tests/engine_equivalence.rs`:
//! strategies build small source strings / constraint sets over a shared
//! pool of attributes and values so collisions (and thus matches) are
//! common.

use gloss_analysis::{analyze_rules, merge_cover, simplify, unsatisfiable};
use gloss_event::{AttrValue, Constraint, Event, Filter, Op};
use gloss_knowledge::{Fact, InMemoryFacts, Term};
use gloss_matchlet::{parse_rules, MatchletEngine};
use gloss_sim::SimTime;
use proptest::prelude::*;

// --- generators ----------------------------------------------------------

fn arb_attr_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        (0i64..6).prop_map(AttrValue::Int),
        (0i64..8).prop_map(|n| AttrValue::Float(n as f64 / 2.0)),
        prop_oneof![
            Just("north"),
            Just("south"),
            Just("st"),
            Just("st andrews"),
            Just("5"),
            Just(""),
        ]
        .prop_map(|s| AttrValue::Str(s.into())),
        prop_oneof![Just(true), Just(false)].prop_map(AttrValue::Bool),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Eq),
        Just(Op::Ne),
        Just(Op::Lt),
        Just(Op::Le),
        Just(Op::Gt),
        Just(Op::Ge),
        Just(Op::Prefix),
        Just(Op::Suffix),
        Just(Op::Contains),
        Just(Op::Exists),
    ]
}

fn arb_constraint() -> impl Strategy<Value = Constraint> {
    ((0usize..3), arb_op(), arb_attr_value())
        .prop_map(|(a, op, v)| Constraint::new(format!("a{a}"), op, v))
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    (
        prop_oneof![Just(None), Just(Some("k0")), Just(Some("k1"))],
        proptest::collection::vec(arb_constraint(), 0..5),
    )
        .prop_map(|(kind, cs)| Filter::from_parts(kind.map(str::to_owned), cs))
}

fn arb_filter_event() -> impl Strategy<Value = Event> {
    ((0usize..2), proptest::collection::vec(((0usize..3), arb_attr_value()), 0..4)).prop_map(
        |(k, attrs)| {
            let mut ev = Event::new(format!("k{k}"));
            for (a, v) in attrs {
                ev.set_attr(format!("a{a}"), v);
            }
            ev
        },
    )
}

// --- filter soundness ----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn unsatisfiable_filters_match_nothing(
        filter in arb_filter(),
        events in proptest::collection::vec(arb_filter_event(), 1..12),
    ) {
        if let Some(reason) = unsatisfiable(&filter) {
            for ev in &events {
                prop_assert!(
                    !filter.matches(ev),
                    "filter `{}` judged unsatisfiable ({reason}) but matched {}",
                    filter, ev
                );
            }
        }
    }

    #[test]
    fn covers_implies_match_subset(
        wide in arb_filter(),
        narrow in arb_filter(),
        events in proptest::collection::vec(arb_filter_event(), 1..12),
    ) {
        if wide.covers(&narrow) {
            for ev in &events {
                if narrow.matches(ev) {
                    prop_assert!(
                        wide.matches(ev),
                        "`{}` covers `{}` but missed their shared match {}",
                        wide, narrow, ev
                    );
                }
            }
        }
    }

    #[test]
    fn simplify_preserves_match_set(
        filter in arb_filter(),
        events in proptest::collection::vec(arb_filter_event(), 1..12),
    ) {
        let (simpler, _) = simplify(&filter);
        prop_assert!(simpler.constraints().len() <= filter.constraints().len());
        for ev in &events {
            prop_assert_eq!(
                simpler.matches(ev),
                filter.matches(ev),
                "simplify changed the match set: `{}` vs `{}` on {}",
                &filter, &simpler, ev
            );
        }
    }

    #[test]
    fn merge_cover_covers_both(
        a in arb_filter(),
        b in arb_filter(),
        events in proptest::collection::vec(arb_filter_event(), 1..12),
    ) {
        if let Some(merged) = merge_cover(&a, &b) {
            prop_assert!(merged.covers(&a), "`{}` does not cover `{}`", merged, a);
            for ev in &events {
                if a.matches(ev) || b.matches(ev) {
                    prop_assert!(
                        merged.matches(ev),
                        "merge `{}` of `{}` and `{}` missed {}",
                        merged, a, b, ev
                    );
                }
            }
        }
    }
}

// --- rule soundness ------------------------------------------------------

fn arb_pat() -> impl Strategy<Value = String> {
    prop_oneof![
        (0usize..3).prop_map(|v| format!("?v{v}")),
        (0i64..3).prop_map(|n| n.to_string()),
        Just("_".to_string()),
        prop_oneof![Just("ua"), Just("ub"), Just("ice")].prop_map(|s| format!("\"{s}\"")),
    ]
}

fn arb_pattern() -> impl Strategy<Value = String> {
    (
        (0usize..3),
        proptest::collection::vec(
            ((0usize..3), arb_pat()).prop_map(|(f, p)| format!("f{f}: {p}")),
            0..3,
        ),
    )
        .prop_map(|(k, fields)| format!("on a: event k{k}({})", fields.join(", ")))
}

/// Deliberately sloppy pool: some clauses are clean, some provably
/// unbound, contradictory, or constant-false — exactly what the analyzer
/// must flag, and flagged rules must then never fire.
fn arb_where() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("where ?v0 > 0".to_string()),
        Just("where ?v0 != ?v1".to_string()),
        Just("where fact(?v0, likes, ?v2)".to_string()),
        Just("where ?v0 = 1 or ?v0 = \"ua\"".to_string()),
        Just("where ?ghost > 1".to_string()),
        Just("where ?v0 > 5 and ?v0 = \"ua\"".to_string()),
        Just("where ?v0 = \"ua\" and lat(?v0) > 50.0".to_string()),
        Just("where 1 > 2".to_string()),
        Just("where len(?v0) > 9000".to_string()),
    ]
}

fn arb_emit(idx: usize) -> impl Strategy<Value = String> {
    prop_oneof![
        Just(format!("emit out{idx}()")),
        Just(format!("emit out{idx}(x: ?v0)")),
        Just(format!("emit out{idx}(x: ?v0, y: ?ghost)")),
        Just(format!("emit out{idx}(x: ?v0 + 1)")),
    ]
}

fn arb_rule(idx: usize) -> impl Strategy<Value = String> {
    (proptest::collection::vec(arb_pattern(), 1..3), arb_where(), (5u64..40), arb_emit(idx))
        .prop_map(move |(patterns, cond, window, emit)| {
            format!("rule r{idx} {{ {} {cond} within {window} s {emit} }}", patterns.join(" "))
        })
}

fn arb_rule_event() -> impl Strategy<Value = (u64, Event)> {
    (
        (0usize..3),
        proptest::collection::vec(
            (
                (0usize..3),
                prop_oneof![
                    (0i64..3).prop_map(AttrValue::Int),
                    (0i64..5).prop_map(|i| AttrValue::Float(i as f64 / 2.0)),
                    prop_oneof![Just("ua"), Just("ub"), Just("ice")]
                        .prop_map(|s| AttrValue::Str(s.into())),
                ],
            ),
            0..3,
        ),
        (0u64..10),
    )
        .prop_map(|(k, fields, dt)| {
            let mut ev = Event::new(format!("k{k}"));
            for (f, v) in fields {
                ev.set_attr(format!("f{f}"), v);
            }
            (dt, ev)
        })
}

fn kb() -> InMemoryFacts {
    let mut kb = InMemoryFacts::new();
    kb.add(Fact::new("ua", "likes", Term::str("ice")));
    kb.add(Fact::new("ub", "likes", Term::str("tea")));
    kb.add(Fact::new("ua", "knows", Term::str("ub")));
    kb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn flagged_rules_never_fire(
        srcs in (arb_rule(0), arb_rule(1), arb_rule(2)),
        events in proptest::collection::vec(arb_rule_event(), 1..25),
    ) {
        let src = format!("{}\n{}\n{}", srcs.0, srcs.1, srcs.2);
        let rules = parse_rules(&src).expect("generated rules parse");
        let report = analyze_rules(&rules);
        // Each rule r{i} emits only out{i}: an error-flagged rule's emit
        // kind must never appear in the output stream. (Codes below are
        // the ones whose verdict is "this rule cannot successfully fire";
        // `or` is generated only over bound variables, so an unbound read
        // is always on a mandatory path.)
        let doomed: Vec<&str> = report
            .diagnostics
            .iter()
            .filter(|d| {
                matches!(d.code, "unbound-variable" | "type-conflict" | "never-true")
            })
            .filter_map(|d| d.rule.as_deref())
            .collect();

        let mut engine = MatchletEngine::new();
        for rule in rules {
            engine.add_rule(rule);
        }
        let kb = kb();
        let mut now = SimTime::ZERO;
        for (dt, ev) in &events {
            now += gloss_sim::SimDuration::from_secs(*dt);
            for fired in engine.on_event(now, ev, &kb) {
                for name in &doomed {
                    let emitted_by_doomed =
                        fired.kind() == format!("out{}", &name[1..]).as_str();
                    prop_assert!(
                        !emitted_by_doomed,
                        "rule `{name}` was flagged fatal but emitted {} (rules:\n{src})",
                        fired
                    );
                }
            }
        }
    }
}
