//! Criterion benches: the per-operation costs behind each experiment in
//! DESIGN.md §5 (one group per table/figure; the `report` binary produces
//! the full tables).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gloss_bench::THREAD_COLUMNS;
use gloss_event::{Architecture, Event, Filter, Op, PubSubConfig, PubSubNetwork};
use gloss_knowledge::{
    Fact, InMemoryFacts, LexicalMatcher, Ontology, ServiceDescription, Term, TextMatcher,
};
use gloss_matchlet::MatchletEngine;
use gloss_overlay::{Key, OverlayNetwork};
use gloss_sim::{NodeIndex, SimDuration, SimTime};
use gloss_store::{Document, ErasureCode, StoreConfig, StoreNetwork};
use gloss_xml::{parse, FieldType, ProjSpec, Schema};

/// E1: the matchlet engine's per-event cost (the inner loop of the global
/// matching service).
fn e1_matching(c: &mut Criterion) {
    let mut kb = InMemoryFacts::new();
    for i in 0..100 {
        kb.add(Fact::new(format!("user{i}"), "likes", Term::str("ice cream")));
        kb.add(Fact::new(format!("user{i}"), "nationality", Term::str("scottish")));
    }
    let mut engine = MatchletEngine::compile(
        r#"
        rule hot {
            on w: event weather.reading(celsius: ?c)
            where ?c >= 18.0
            within 1 m
            emit alert(celsius: ?c)
        }
        "#,
    )
    .unwrap();
    let ev = Event::new("weather.reading").with_attr("celsius", 20.0);
    let mut t = 0u64;
    c.bench_function("e1_matchlet_on_event", |b| {
        b.iter(|| {
            t += 1;
            engine.on_event(SimTime::from_micros(t), &ev, &kb)
        })
    });
}

/// E4: the delta-driven matching core under steady fact-join load.
///
/// A rule whose goals enumerate an *unbound* subject over a 200-user
/// knowledge base: every firing must either re-solve the join over all
/// 200 `likes` facts (a from-scratch engine) or replay memoised
/// solutions (the incremental engine). `steady` never mutates facts;
/// `churn` removes and re-adds one (non-matching) user's facts every 16
/// events, exercising delta repair and memo invalidation. Written
/// against APIs that exist in earlier engines too, so the same file
/// benches the before/after columns of BENCH_pr5.json.
fn e4_delta_matching(c: &mut Criterion) {
    const RULE: &str = r#"
        rule rare_flavor {
            on t: event tick(seq: ?s)
            where fact(?u, likes, "haggis ripple") and fact(?u, nationality, ?nat)
            within 1 m
            emit fan(user: ?u, nat: ?nat)
        }
    "#;
    let build_kb = || {
        let mut kb = InMemoryFacts::new();
        for i in 0..200 {
            let flavor = if i % 100 == 3 { "haggis ripple" } else { "vanilla" };
            kb.add(Fact::new(format!("user{i}"), "likes", Term::str(flavor)));
            kb.add(Fact::new(format!("user{i}"), "nationality", Term::str("scottish")));
        }
        kb
    };
    {
        let kb = build_kb();
        let mut engine = MatchletEngine::compile(RULE).unwrap();
        let ev = Event::new("tick").with_attr("seq", 1i64);
        let mut t = 0u64;
        c.bench_function("e4_fact_join_steady_200", |b| {
            b.iter(|| {
                t += 1;
                engine.on_event(SimTime::from_micros(t), &ev, &kb)
            })
        });
    }
    {
        let mut kb = build_kb();
        let mut engine = MatchletEngine::compile(RULE).unwrap();
        let ev = Event::new("tick").with_attr("seq", 1i64);
        let mut t = 0u64;
        c.bench_function("e4_fact_join_churn_200", |b| {
            b.iter(|| {
                t += 1;
                if t.is_multiple_of(16) {
                    // Churn an even-indexed user (the matching users are
                    // 3 and 103), so the solution set stays stationary.
                    let u = format!("user{}", ((t / 16) * 2) % 200);
                    kb.remove_subject(&u);
                    kb.add(Fact::new(u.clone(), "likes", Term::str("vanilla")));
                    kb.add(Fact::new(u, "nationality", Term::str("scottish")));
                }
                engine.on_event(SimTime::from_micros(t), &ev, &kb)
            })
        });
    }
}

/// C13: adversarial subscription churn — rules added/removed at a high
/// rate while events stream, the worst case for rule add/remove
/// invalidation (kind-index rebuilds, index coverage, memo lifecycle).
fn c13_rule_churn(c: &mut Criterion) {
    let mut kb = InMemoryFacts::new();
    for i in 0..100 {
        let flavor = if i % 10 == 0 { "ice cream" } else { "tea" };
        kb.add(Fact::new(format!("user{i}"), "likes", Term::str(flavor)));
    }
    let rule_src = |gen: u64| {
        format!(
            "rule churn{gen} {{ on t: event tick(seq: ?s) where fact(?u, likes, \"ice cream\") within 1 m emit hit{gen}(user: ?u) }}"
        )
    };
    // A resident population of 8 rules; each iteration retires the
    // oldest, installs a fresh one, and fires 4 events.
    let mut engine = MatchletEngine::new();
    let mut gen = 0u64;
    for _ in 0..8 {
        engine.add_rules(&rule_src(gen)).unwrap();
        gen += 1;
    }
    let ev = Event::new("tick").with_attr("seq", 1i64);
    let mut t = 0u64;
    c.bench_function("c13_rule_churn_8_resident", |b| {
        b.iter(|| {
            engine.remove_rule(&format!("churn{}", gen - 8));
            engine.add_rules(&rule_src(gen)).unwrap();
            gen += 1;
            let mut fired = 0usize;
            for _ in 0..4 {
                t += 1;
                fired += engine.on_event(SimTime::from_micros(t), &ev, &kb).len();
            }
            fired
        })
    });
}

/// E2: pushing one event through an assembled pipeline graph.
fn e2_pipeline_push(c: &mut Criterion) {
    use gloss_pipeline::standard::{Counter, KindFilter, MovementThreshold};
    use gloss_pipeline::PipelineGraph;
    let mut g = PipelineGraph::new();
    let a = g.add(Box::new(KindFilter::new("f", Filter::for_kind("user.location"))));
    let b2 = g.add(Box::new(MovementThreshold::new("m", 0.0)));
    let d = g.add(Box::new(Counter::new("c")));
    g.connect(a, b2);
    g.connect(b2, d);
    g.mark_entry(a);
    let ev = Event::new("user.location")
        .with_attr("user", "bob")
        .with_attr("lat", 56.34)
        .with_attr("lon", -2.8);
    c.bench_function("e2_pipeline_push_3_components", |b| {
        b.iter(|| g.push(SimTime::ZERO, ev.clone()))
    });
}

/// E3: sealing and verifying a code bundle (the deployment hot path).
fn e3_bundle_roundtrip(c: &mut Criterion) {
    use gloss_bundle::{AuthKey, Bundle};
    let key = AuthKey::new("ops", b"secret");
    let bundle =
        Bundle::matchlet("bench", r#"rule r { on a: event k(x: ?x) where ?x > 1 emit o(x: ?x) }"#)
            .issued_by("ops");
    c.bench_function("e3_bundle_seal", |b| b.iter(|| bundle.to_packet(&key)));
    let packet = bundle.to_packet(&key);
    c.bench_function("e3_bundle_verify", |b| {
        b.iter(|| Bundle::from_packet(&packet, &key).unwrap())
    });
}

/// C1: filter matching and covering (the broker's per-message work).
fn c1_filter_ops(c: &mut Criterion) {
    let filter = Filter::for_kind("user.location")
        .with_constraint("lat", Op::Gt, 56.0)
        .with_eq("user", "bob");
    let ev = Event::new("user.location").with_attr("user", "bob").with_attr("lat", 56.34);
    c.bench_function("c1_filter_match", |b| b.iter(|| filter.matches(&ev)));
    let broad = Filter::for_kind("user.location").with_constraint("lat", Op::Gt, 50.0);
    c.bench_function("c1_filter_covers", |b| b.iter(|| broad.covers(&filter)));
}

/// C1 (system): one publish through a settled acyclic-peer network.
fn c1_publish_through_network(c: &mut Criterion) {
    let mut net = PubSubNetwork::build(PubSubConfig {
        architecture: Architecture::AcyclicPeer,
        brokers: 4,
        clients_per_broker: 2,
        seed: 7,
        ..PubSubConfig::default()
    });
    let clients = net.clients().to_vec();
    for &cl in &clients {
        net.subscribe(cl, Filter::for_kind("k"));
    }
    net.run_for(SimDuration::from_secs(5));
    c.bench_function("c1_publish_and_settle", |b| {
        b.iter(|| {
            net.publish(clients[0], Event::new("k"));
            net.run_for(SimDuration::from_secs(2));
        })
    });
}

/// C2: one route through a settled 64-node overlay.
fn c2_overlay_route(c: &mut Criterion) {
    let mut net = OverlayNetwork::build(64, 5);
    net.run_for(SimDuration::from_secs(120));
    let mut i = 0u64;
    c.bench_function("c2_route_and_settle", |b| {
        b.iter(|| {
            i += 1;
            let from = net.random_node();
            net.route_from(from, Key::hash_of(format!("bench-{i}").as_bytes()));
            net.run_for(SimDuration::from_secs(2));
        })
    });
}

/// C3: cache insert/get at the storage layer.
fn c3_cache_ops(c: &mut Criterion) {
    use gloss_store::LruCache;
    let docs: Vec<Document> =
        (0..64).map(|i| Document::new(format!("d{i}"), vec![0u8; 512])).collect();
    c.bench_function("c3_cache_insert_get", |b| {
        b.iter_batched(
            || LruCache::new(16 * 1024),
            |mut cache| {
                for d in &docs {
                    cache.insert(d.clone());
                }
                for d in &docs {
                    let _ = cache.get(d.guid);
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
}

/// C3 (churn): eviction-heavy insert stream — 4096 inserts through a
/// cache holding ~32 entries, so nearly every insert evicts. The
/// intrusive-list LRU makes each eviction O(1); the seed cache's
/// `min_by_key` scan made this workload quadratic.
fn c3_cache_churn(c: &mut Criterion) {
    use gloss_store::LruCache;
    let docs: Vec<Document> =
        (0..4096).map(|i| Document::new(format!("churn{i}"), vec![0u8; 512])).collect();
    c.bench_function("c3_cache_churn_4096", |b| {
        b.iter_batched(
            || LruCache::new(16 * 1024),
            |mut cache| {
                for d in &docs {
                    cache.insert(d.clone());
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
}

/// M1: summary polling over a large histogram — the per-slice pattern of
/// measurement harnesses. The cached sorted view makes repeated polls
/// O(1); the seed version cloned and re-sorted all samples per call.
fn m1_histogram_polling(c: &mut Criterion) {
    use gloss_sim::Histogram;
    let mut h = Histogram::new();
    let mut x = 1u64;
    for _ in 0..65_536 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        h.record((x >> 11) as f64 / (1u64 << 53) as f64);
    }
    c.bench_function("m1_histogram_summary_poll_64k", |b| b.iter(|| h.summary()));
    // Steady-state invalidation cost: the clone resets the histogram per
    // batch so the sample count never drifts with iteration count.
    c.bench_function("m1_histogram_record_then_poll", |b| {
        b.iter_batched(
            || h.clone(),
            |mut fresh| {
                fresh.record(0.5);
                fresh.summary()
            },
            BatchSize::SmallInput,
        )
    });
}

/// C4/C5: the placement solver on a mid-sized violation.
fn c4_solver(c: &mut Criterion) {
    use gloss_deploy::{solver::plan_repairs, Constraint, Deployment, NodeResources};
    use std::collections::BTreeMap;
    let resources: BTreeMap<NodeIndex, NodeResources> = (0..50u32)
        .map(|i| {
            (
                NodeIndex(i),
                NodeResources {
                    node: NodeIndex(i),
                    region: ["scotland", "england", "europe"][i as usize % 3].into(),
                    geo: gloss_sim::GeoPoint::new(50.0 + i as f64 / 10.0, 0.0),
                    cpu: 1.0,
                    storage: 0,
                },
            )
        })
        .collect();
    let constraints = vec![
        Constraint::count("matcher", Some("scotland"), 8),
        Constraint::count("replicator", None, 12),
        Constraint::Capacity { max: 2 },
    ];
    let deployment = Deployment::new();
    c.bench_function("c4_plan_repairs_50_nodes", |b| {
        b.iter(|| plan_repairs(&constraints, &deployment, &resources))
    });
}

/// C6: the three binding strategies on one document.
fn c6_binding(c: &mut Criterion) {
    let doc = parse(
        r#"<event seq="9"><user id="bob"/><pos lat="56.34" lon="-2.80"/><extra><x/></extra></event>"#,
    )
    .unwrap();
    let spec = ProjSpec::new("loc").field("user", "user/@id", FieldType::Str).field(
        "lat",
        "pos/@lat",
        FieldType::Float,
    );
    c.bench_function("c6_project", |b| b.iter(|| spec.project(&doc).unwrap()));
    let plain =
        parse(r#"<event seq="9"><user id="bob"/><pos lat="56.34" lon="-2.80"/></event>"#).unwrap();
    let schema = Schema::infer(&[&plain]).unwrap();
    c.bench_function("c6_schema_bind", |b| b.iter(|| schema.bind(&plain).unwrap()));
    c.bench_function("c6_xml_parse", |b| {
        b.iter(|| {
            parse(r#"<event seq="9"><user id="bob"/><pos lat="56.34" lon="-2.80"/></event>"#)
                .unwrap()
        })
    });
}

/// C7: the multi-pattern join (two buffered streams + facts).
///
/// Time advances `window / DEPTH` per iteration, so after the pre-fill
/// each pattern's buffer holds a constant ~`DEPTH` partial matches and
/// every iteration does the same amount of join work. (The seed version
/// let the buffers grow with the iteration count, which made the mean
/// depend on how many iterations the harness happened to run.)
fn c7_join(c: &mut Criterion) {
    const DEPTH: u64 = 64;
    const WINDOW_MS: u64 = 5 * 60 * 1000;
    let mut kb = InMemoryFacts::new();
    kb.add(Fact::new("bob", "likes", Term::str("ice cream")));
    kb.add(Fact::new("bob", "nationality", Term::str("scottish")));
    let mut engine = MatchletEngine::compile(
        r#"
        rule pairup {
            on w: event weather.reading(celsius: ?t)
            on l: event user.location(user: ?u)
            where fact(?u, likes, "ice cream") and fact(?u, nationality, ?nat)
            where ?t >= hot_threshold(?nat)
            within 5 m
            emit suggestion(user: ?u)
        }
        "#,
    )
    .unwrap();
    let weather = Event::new("weather.reading").with_attr("celsius", 20.0);
    let loc = Event::new("user.location").with_attr("user", "bob");
    let step = WINDOW_MS / DEPTH;
    let mut t = 0u64;
    let tick = |engine: &mut MatchletEngine, t: &mut u64| {
        *t += step;
        engine.on_event(SimTime::from_millis(*t), &weather, &kb);
        engine.on_event(SimTime::from_millis(*t + 1), &loc, &kb)
    };
    for _ in 0..DEPTH {
        tick(&mut engine, &mut t);
    }
    c.bench_function("c7_two_pattern_join", |b| b.iter(|| tick(&mut engine, &mut t)));
}

/// S1: per-event cost as *unrelated* rules pile up. The kind index keeps
/// the engine from touching rules that cannot match, so 10× more rules
/// must cost roughly the same per event.
fn s1_rule_scaling(c: &mut Criterion) {
    let kb = InMemoryFacts::new();
    for &rules in &[20usize, 200] {
        let mut src = String::new();
        for i in 0..rules {
            src += &format!(
                "rule r{i} {{ on a: event kind{i}(x: ?x) where ?x > 1 emit out{i}(x: ?x) }}\n"
            );
        }
        let mut engine = MatchletEngine::compile(&src).unwrap();
        let ev = Event::new("kind7").with_attr("x", 5i64);
        let mut t = 0u64;
        c.bench_function(&format!("s1_on_event_{rules}_rules"), |b| {
            b.iter(|| {
                t += 1;
                engine.on_event(SimTime::from_micros(t), &ev, &kb)
            })
        });
    }
}

/// S2: a selective two-pattern join over a deep buffer (512 buffered
/// events across 128 users): the hash join visits only the ~4 compatible
/// entries instead of scanning all 512.
fn s2_join_deep_buffer(c: &mut Criterion) {
    let kb = InMemoryFacts::new();
    let mut engine = MatchletEngine::compile(
        r#"
        rule same_user {
            on a: event enter(user: ?u, n: ?n)
            on b: event exit(user: ?u)
            within 1 h
            emit visit(user: ?u, n: ?n)
        }
        "#,
    )
    .unwrap();
    for i in 0..512u64 {
        let ev = Event::new("enter")
            .with_attr("user", format!("user{}", i % 128))
            .with_attr("n", i as i64);
        engine.on_event(SimTime::from_millis(i), &ev, &kb);
    }
    let exits: Vec<Event> =
        (0..128).map(|i| Event::new("exit").with_attr("user", format!("user{i}"))).collect();
    let mut i = 0usize;
    let mut t = 600u64;
    c.bench_function("s2_join_512_deep_buffer", |b| {
        b.iter(|| {
            i += 1;
            t += 1;
            engine.on_event(SimTime::from_millis(t), &exits[i % 128], &kb)
        })
    });
}

/// S3: the sharded event plane at scale — wall time for a full overlay
/// build + settle (staggered joins, announce storm, probe steady state),
/// at 1 and 4 worker threads. `GLOSS_SCALE_MAX=2048` adds the 2048-node
/// row (the BENCH_pr4.json headline). Thread count never changes the
/// message counts — only wall time.
fn s3_overlay_scaling(c: &mut Criterion) {
    let smoke = std::env::var("GLOSS_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let mut sizes: Vec<usize> = if smoke { vec![512] } else { vec![256, 1024] };
    if let Ok(v) = std::env::var("GLOSS_SCALE_MAX") {
        if let Ok(extra) = v.parse::<usize>() {
            if !smoke && extra > 1024 {
                sizes.push(extra);
            }
        }
    }
    for &n in &sizes {
        for &threads in THREAD_COLUMNS {
            // The t1 name stays bare for comparability with BENCH_pr3.json.
            let name = if threads == 1 {
                format!("s3_overlay_settle_{n}")
            } else {
                format!("s3_overlay_settle_{n}_t{threads}")
            };
            c.bench_function(&name, |b| {
                b.iter(|| {
                    let mut net = OverlayNetwork::build(n, 42);
                    net.world_mut().set_threads(threads);
                    net.run_for(
                        SimDuration::from_millis(200) * n as u64 + SimDuration::from_secs(60),
                    );
                    assert!(net.joined_fraction() > 0.99, "overlay failed to settle");
                    net.world().metrics().counter("sim.messages_delivered")
                })
            });
        }
    }
}

/// S4: churn-heavy steady state — one crash/recover episode over a settled
/// overlay (an eighth of the nodes fail, detection + repair runs, they
/// return), at 1 and 4 worker threads. Exercises the link-state purge and
/// the control barriers (each crash/recover ends a threaded segment).
fn s4_churn_episode(c: &mut Criterion) {
    let smoke = std::env::var("GLOSS_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let n: usize = if smoke { 32 } else { 96 };
    for &threads in THREAD_COLUMNS {
        let mut net = OverlayNetwork::build(n, 77);
        net.world_mut().set_threads(threads);
        net.run_for(SimDuration::from_millis(200) * n as u64 + SimDuration::from_secs(60));
        let mut round = 0u32;
        let name = if threads == 1 {
            "s4_churn_episode".to_string()
        } else {
            format!("s4_churn_episode_t{threads}")
        };
        c.bench_function(&name, |b| {
            b.iter(|| {
                round += 1;
                for k in 0..(n / 8) {
                    let victim = NodeIndex((1 + ((round as usize * 7 + k * 3) % (n - 1))) as u32);
                    net.world_mut().crash(victim);
                }
                net.run_for(SimDuration::from_secs(30));
                for k in 0..(n / 8) {
                    let victim = NodeIndex((1 + ((round as usize * 7 + k * 3) % (n - 1))) as u32);
                    net.world_mut().recover(victim);
                }
                net.run_for(SimDuration::from_secs(30));
                net.world().metrics().counter("sim.crashes")
            })
        });
    }
}

/// S5: mobility-heavy event plane — a client roams to another broker while
/// publishers keep the bus busy; the proxy buffers, hands off, replays.
/// Runs at 1 and 4 worker threads.
fn s5_mobility_roam(c: &mut Criterion) {
    for &threads in THREAD_COLUMNS {
        let mut net = PubSubNetwork::build(PubSubConfig {
            architecture: Architecture::AcyclicPeer,
            brokers: 6,
            clients_per_broker: 3,
            seed: 17,
            ..PubSubConfig::default()
        });
        net.world_mut().set_threads(threads);
        let clients = net.clients().to_vec();
        let brokers = net.brokers().to_vec();
        for &cl in &clients {
            net.subscribe(cl, Filter::for_kind("m"));
        }
        net.run_for(SimDuration::from_secs(5));
        let mut i = 0usize;
        let name = if threads == 1 {
            "s5_mobility_roam".to_string()
        } else {
            format!("s5_mobility_roam_t{threads}")
        };
        c.bench_function(&name, |b| {
            b.iter(|| {
                i += 1;
                let mover = clients[i % clients.len()];
                let target = brokers[i % brokers.len()];
                net.move_client(mover, target, SimDuration::from_secs(2));
                for k in 0..4 {
                    net.publish(clients[(i + k + 1) % clients.len()], Event::new("m"));
                }
                net.run_for(SimDuration::from_secs(5));
                net.total_delivered()
            })
        });
    }
}

/// S6: one publish against a broker holding n subscriptions — the
/// counting index vs the pre-PR8 linear table scan. The indexed rows
/// should be near-flat in n; the linear rows grow with it. Smoke mode
/// caps the table at 100 k (and skips the 1 M rows).
fn s6_subscriber_publish(c: &mut Criterion) {
    use gloss_event::{Broker, BrokerMsg, BrokerTopology, LinearBroker, Subscription};
    use gloss_sim::Outbox;
    let smoke = std::env::var("GLOSS_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let sizes: &[usize] = if smoke { &[1_000, 100_000] } else { &[1_000, 100_000, 1_000_000] };
    for &n in sizes {
        let topology = BrokerTopology::Peer { neighbors: vec![] };
        let mut broker = Broker::new(NodeIndex(0), topology.clone());
        let mut out = Outbox::new();
        for i in 0..n {
            let client = NodeIndex(10 + i as u32);
            let filter = Filter::for_kind("ctx").with_eq("user", format!("u{i}"));
            broker.handle(SimTime::ZERO, client, BrokerMsg::Attach, &mut out);
            broker.handle(
                SimTime::ZERO,
                client,
                BrokerMsg::Subscribe(Subscription { id: i as u64 + 1, filter }),
                &mut out,
            );
        }
        let mut i = 0usize;
        c.bench_function(&format!("s6_publish_indexed_{n}"), |b| {
            b.iter(|| {
                i += 1;
                let e = Event::new("ctx").with_attr("user", format!("u{}", i * 7 % n));
                let mut out = Outbox::new();
                broker.handle(SimTime::ZERO, NodeIndex(5), BrokerMsg::Publish(e), &mut out);
                out
            })
        });
        // The linear baseline pays O(n) per publish; skip its 1 M row
        // (minutes of wall time for a number the 100 k row already shows).
        if n > 100_000 {
            continue;
        }
        let mut linear =
            LinearBroker::new(NodeIndex(0), BrokerTopology::Peer { neighbors: vec![] });
        for i in 0..n {
            let client = NodeIndex(10 + i as u32);
            let filter = Filter::for_kind("ctx").with_eq("user", format!("u{i}"));
            linear.handle(SimTime::ZERO, client, BrokerMsg::Attach, &mut out);
            linear.handle(
                SimTime::ZERO,
                client,
                BrokerMsg::Subscribe(Subscription { id: i as u64 + 1, filter }),
                &mut out,
            );
        }
        let mut i = 0usize;
        c.bench_function(&format!("s6_publish_linear_{n}"), |b| {
            b.iter(|| {
                i += 1;
                let e = Event::new("ctx").with_attr("user", format!("u{}", i * 7 % n));
                let mut out = Outbox::new();
                linear.handle(SimTime::ZERO, NodeIndex(5), BrokerMsg::Publish(e), &mut out);
                out
            })
        });
    }
}

/// S7: beta-network prefix sharing — n rules whose goal chains start
/// with the same two-goal fact join and differ only in a leaf filter
/// over a fact-bound variable.
///
/// `steady` replays memoised solutions (both engine generations are
/// near-flat here). `repair` mutates the knowledge base every iteration
/// so every rule's memo goes stale before the event fires: per-rule memo
/// tables re-solve the full two-goal join n times, while a shared beta
/// network computes the common prefix once and extends each rule's leaf
/// from it. Written against APIs that exist in the per-rule-memo engine
/// too, so the same file benches both columns of BENCH_pr9.json.
fn s7_shared_prefix(c: &mut Criterion) {
    let smoke = std::env::var("GLOSS_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let sizes: &[usize] = if smoke { &[500] } else { &[1_000, 10_000] };
    const USERS: u64 = 500;
    let build_kb = || {
        let mut kb = InMemoryFacts::new();
        for u in 0..USERS {
            // Two ice-cream fans (users 100 and 300); everyone else only
            // adds to the likes-facts the join prefix must enumerate.
            let flavor = if u % 200 == 100 { "ice cream" } else { "vanilla" };
            kb.add(Fact::new(format!("user{u}"), "likes", Term::str(flavor)));
            kb.add(Fact::new(format!("user{u}"), "nationality", Term::str("scottish")));
        }
        kb
    };
    for &n in sizes {
        let mut src = String::with_capacity(n * 170);
        for i in 0..n {
            src += &format!(
                "rule s{i} {{ on t: event tick(seq: ?s) where fact(?u, likes, \"ice cream\") and fact(?u, nationality, ?nat) and ?nat != \"x{i}\" within 1 m emit hit{i}(user: ?u) }}\n"
            );
        }
        {
            let kb = build_kb();
            let mut engine = MatchletEngine::compile(&src).unwrap();
            let ev = Event::new("tick").with_attr("seq", 1i64);
            let mut t = 0u64;
            c.bench_function(&format!("s7_beta_steady_{n}_rules"), |b| {
                b.iter(|| {
                    t += 1;
                    engine.on_event(SimTime::from_micros(t), &ev, &kb)
                })
            });
        }
        {
            let mut kb = build_kb();
            let mut engine = MatchletEngine::compile(&src).unwrap();
            let ev = Event::new("tick").with_attr("seq", 1i64);
            let mut t = 0u64;
            c.bench_function(&format!("s7_beta_repair_{n}_rules"), |b| {
                b.iter(|| {
                    t += 1;
                    // Churn an odd-indexed (never matching) user: every
                    // memo invalidates, the solution set stays put.
                    let u = format!("user{}", 1 + 2 * (t % (USERS / 2)));
                    kb.remove_subject(&u);
                    kb.add(Fact::new(u.clone(), "likes", Term::str("vanilla")));
                    kb.add(Fact::new(u, "nationality", Term::str("scottish")));
                    engine.on_event(SimTime::from_micros(t), &ev, &kb)
                })
            });
        }
    }
}

/// C17: a synchronized hot-topic burst through an acyclic-peer graph
/// whose forwarding tables covering/merging have collapsed.
fn c17_flash_crowd_burst(c: &mut Criterion) {
    let mut net = PubSubNetwork::build(PubSubConfig {
        architecture: Architecture::AcyclicPeer,
        brokers: 4,
        clients_per_broker: 8,
        seed: 53,
        ..PubSubConfig::default()
    });
    let clients = net.clients().to_vec();
    for (i, &cl) in clients.iter().enumerate() {
        net.subscribe(cl, Filter::for_kind("goal"));
        net.subscribe(
            cl,
            Filter::for_kind("ctx")
                .with_constraint("temp", Op::Gt, (i % 4) as i64)
                .with_eq("user", format!("u{i}")),
        );
    }
    net.run_for(SimDuration::from_secs(5));
    let mut i = 0usize;
    c.bench_function("c17_flash_burst", |b| {
        b.iter(|| {
            i += 1;
            for k in 0..10 {
                let p = clients[(i * 5 + k) % clients.len()];
                net.publish(p, Event::new("goal").with_attr("minute", 90i64));
            }
            net.run_for(SimDuration::from_secs(5));
            net.total_delivered()
        })
    });
}

/// C8: store lookup issue + conclusion (the discovery fetch path).
fn c8_store_lookup(c: &mut Criterion) {
    let mut net = StoreNetwork::build(12, StoreConfig::default(), 9);
    net.settle();
    let doc = Document::new("handler-code", vec![7u8; 256]);
    net.insert(NodeIndex(0), doc.clone());
    net.run_for(SimDuration::from_secs(30));
    let mut reader = 1u32;
    c.bench_function("c8_lookup_and_settle", |b| {
        b.iter(|| {
            reader = (reader + 1) % 12;
            let id = net.lookup(NodeIndex(reader), doc.guid);
            net.run_for(SimDuration::from_secs(2));
            id
        })
    });
}

/// C9: ontology-expanded retrieval over a small corpus.
fn c9_retrieval(c: &mut Criterion) {
    let corpus: Vec<ServiceDescription> = (0..50)
        .map(|i| {
            ServiceDescription::new(format!("s{i}"), format!("service number {i} selling gelato"))
                .with_facet("offers", if i % 2 == 0 { "gelato" } else { "espresso" })
        })
        .collect();
    let lexical = LexicalMatcher::new(Ontology::food_and_context());
    c.bench_function("c9_lexical_retrieve", |b| {
        b.iter(|| lexical.retrieve("offers", "ice cream", &corpus))
    });
    c.bench_function("c9_text_retrieve", |b| b.iter(|| TextMatcher.retrieve("ice cream", &corpus)));
}

/// C10: erasure encode/decode of a 16 KiB object.
fn c10_erasure(c: &mut Criterion) {
    let code = ErasureCode::new(4, 8).unwrap();
    let data: Vec<u8> = (0..16 * 1024).map(|i| (i % 251) as u8).collect();
    c.bench_function("c10_encode_16k_4of8", |b| b.iter(|| code.encode(&data)));
    let shards = code.encode(&data);
    let kept: Vec<(usize, Vec<u8>)> = (4..8).map(|i| (i, shards[i].clone())).collect();
    c.bench_function("c10_decode_16k_4of8", |b| b.iter(|| code.decode(&kept, data.len()).unwrap()));
}

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = e1_matching, e4_delta_matching, e2_pipeline_push, e3_bundle_roundtrip,
              c1_filter_ops, c1_publish_through_network, c2_overlay_route, c3_cache_ops,
              c3_cache_churn, c4_solver, c6_binding, c7_join, c8_store_lookup, c9_retrieval,
              c10_erasure, c13_rule_churn, m1_histogram_polling, s1_rule_scaling,
              s2_join_deep_buffer, s3_overlay_scaling, s4_churn_episode, s5_mobility_roam,
              s6_subscriber_publish, s7_shared_prefix, c17_flash_crowd_burst
}
criterion_main!(experiments);
