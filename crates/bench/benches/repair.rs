//! Storage-plane repair benches: the CPU-bound inner loops of the
//! self-healing pipeline (`s8_*`) and the end-to-end costs a client or a
//! background scanner pays on a live network (`c19_*`). The repair-storm
//! *scenario* itself lives in the `report` binary (C19 table) and the
//! `repairsmoke` bin; these benches isolate the per-operation costs so a
//! regression in any one layer shows up as a stable number.

use criterion::{criterion_group, criterion_main, Criterion};
use gloss_sim::{GeoPoint, NodeIndex, SimDuration};
use gloss_store::{
    plan_quota_targets, Document, ErasureCode, NodeCapacity, NodeSite, StoreConfig, StoreNetwork,
};
use std::collections::BTreeMap;

/// S8: quota- and diversity-aware target selection over a 256-node
/// directory — the planning step every repair put and insert pays.
fn s8_placement(c: &mut Criterion) {
    let regions = ["scotland", "england", "europe", "us-east", "us-west", "australia"];
    let directory: Vec<NodeSite> = (0..256u32)
        .map(|i| {
            NodeSite::new(
                NodeIndex(i),
                GeoPoint::new(0.0, 0.0),
                regions[i as usize % regions.len()],
            )
            .with_capacity(NodeCapacity {
                max_bytes: 8 * 1024 * 1024 + (i as u64) * 64 * 1024,
                ..NodeCapacity::default()
            })
        })
        .collect();
    let candidates: Vec<NodeIndex> = (0..256).map(NodeIndex).collect();
    let used: BTreeMap<NodeIndex, u64> =
        (0..256u32).map(|i| (NodeIndex(i), (i as u64) * 16 * 1024)).collect();
    c.bench_function("s8_placement_plan_256_candidates", |b| {
        b.iter(|| plan_quota_targets(64 * 1024, 4, &["us-east"], &candidates, &directory, &used))
    });
}

/// S8: the erasure repair inner loop — decode the object from `m`
/// survivors, then re-encode to recover the lost shards, 64 KiB 4-of-8
/// (what a fragment-audit coordinator does after a crash).
fn s8_reencode(c: &mut Criterion) {
    let code = ErasureCode::new(4, 8).unwrap();
    let data: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
    let shards = code.encode(&data);
    // Survivors: the four parity shards — the worst case for decode.
    let kept: Vec<(usize, Vec<u8>)> = (4..8).map(|i| (i, shards[i].clone())).collect();
    c.bench_function("s8_reencode_missing_shards_64k_4of8", |b| {
        b.iter(|| {
            let rebuilt = code.decode(&kept, data.len()).unwrap();
            code.encode(&rebuilt)
        })
    });
}

/// C19: a foreground lookup through the retry plane on a healthy
/// network — issue, route, conclude. The baseline the repair-storm p50
/// is judged against.
fn c19_lookup_retrying(c: &mut Criterion) {
    let mut net = StoreNetwork::build(12, StoreConfig::default(), 19);
    net.settle();
    let doc = Document::new("repair-bench-doc", vec![7u8; 256]);
    net.insert(NodeIndex(0), doc.clone());
    net.run_for(SimDuration::from_secs(30));
    let mut reader = 1u32;
    c.bench_function("c19_lookup_retrying_and_settle", |b| {
        b.iter(|| {
            reader = (reader + 1) % 12;
            let id = net.lookup_retrying(NodeIndex(reader), doc.guid);
            net.run_for(SimDuration::from_secs(2));
            id
        })
    });
}

/// C19: steady-state cost of the background repair scanner — ten
/// simulated seconds of a settled, fully-replicated network where every
/// scan concludes "nothing to do". This is the overhead the pipeline
/// adds when there is no crash to repair.
fn c19_repair_scan(c: &mut Criterion) {
    let cfg = StoreConfig {
        repair_interval: Some(SimDuration::from_secs(10)),
        heal_interval: SimDuration::from_secs(10),
        ..StoreConfig::default()
    };
    let mut net = StoreNetwork::build(16, cfg, 19);
    net.settle();
    for i in 0..8u64 {
        let d = Document::new(format!("scan-doc-{i}"), vec![i as u8; 512]);
        net.insert(NodeIndex((i % 16) as u32), d);
    }
    net.insert_erasure(NodeIndex(0), "scan-obj", &vec![9u8; 1200], 3, 6).unwrap();
    net.run_for(SimDuration::from_secs(120));
    c.bench_function("c19_repair_scan_steady_10s", |b| {
        b.iter(|| net.run_for(SimDuration::from_secs(10)))
    });
}

criterion_group! {
    name = repair;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = s8_placement, s8_reencode, c19_lookup_retrying, c19_repair_scan
}
criterion_main!(repair);
