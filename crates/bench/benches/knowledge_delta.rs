//! C18: knowledge replication cost under context churn — epoch-tagged
//! delta batches (`kbdelta/<subject>@<from..to>`) against whole-document
//! re-seeding, over the full active architecture.
//!
//! This bench lives in its own file because it drives the delta-plane
//! APIs (`knowledge_mut`/`update_knowledge`/`prefetch_deltas`); the
//! seed-worktree baseline runs of `experiments.rs` must still compile
//! against trees that predate them.
//!
//! Before timing anything, the harness runs the two modes side by side
//! for a fixed number of churn rounds and asserts the headline property:
//! every node converges to the identical fact set in both modes, and
//! delta shipping moves several times fewer kb bytes than re-seeding
//! the whole subject document.

use criterion::{criterion_group, criterion_main, Criterion};
use gloss_core::{ActiveArchitecture, ArchConfig};
use gloss_knowledge::{Fact, FactSource, Term};
use gloss_sim::{NodeIndex, SimDuration};

const SUBJECT: &str = "bob";
const FACTS: i64 = 40;
const WRITER: NodeIndex = NodeIndex(2);

/// An architecture with one 40-fact subject seeded and pulled onto every
/// node (all receivers anchored at the seeding snapshot's epoch).
fn seeded_arch(nodes: usize, seed: u64) -> ActiveArchitecture {
    let mut a = ActiveArchitecture::build(ArchConfig { nodes, seed, ..Default::default() });
    a.settle();
    let facts: Vec<Fact> =
        (0..FACTS).map(|i| Fact::new(SUBJECT, format!("attr{i}"), Term::Int(i))).collect();
    a.seed_knowledge(WRITER, SUBJECT, &facts);
    a.run_for(SimDuration::from_secs(30));
    a.prefetch_subject_everywhere(SUBJECT);
    a.run_for(SimDuration::from_secs(30));
    a
}

/// One churn round in delta mode: one fact changes, the unshipped tail
/// ships as a batch, every node pulls it.
fn delta_round(a: &mut ActiveArchitecture, round: i64) {
    a.knowledge_mut(SUBJECT).retract(SUBJECT, "attr0", &Term::Int(round - 1));
    a.knowledge_mut(SUBJECT).add(Fact::new(SUBJECT, "attr0", Term::Int(round)));
    a.update_knowledge(WRITER, SUBJECT);
    a.run_for(SimDuration::from_secs(5));
    a.prefetch_deltas_everywhere(SUBJECT);
    a.run_for(SimDuration::from_secs(10));
}

/// The same round in whole-document mode: the full 40-fact document is
/// re-seeded and re-pulled, as pre-delta trees replicated updates.
fn snapshot_round(a: &mut ActiveArchitecture, round: i64) {
    let facts: Vec<Fact> = (0..FACTS)
        .map(|i| {
            let v = if i == 0 { round } else { i };
            Fact::new(SUBJECT, format!("attr{i}"), Term::Int(v))
        })
        .collect();
    a.seed_knowledge(WRITER, SUBJECT, &facts);
    a.run_for(SimDuration::from_secs(5));
    a.prefetch_subject_everywhere(SUBJECT);
    a.run_for(SimDuration::from_secs(10));
}

/// A node's fact set for the subject, in canonical order.
fn fact_set(a: &ActiveArchitecture, node: u32) -> Vec<String> {
    let mut v: Vec<String> = a
        .node(NodeIndex(node))
        .kb
        .query(Some(SUBJECT), None)
        .map(|f| format!("{}={}", f.predicate, f.object))
        .collect();
    v.sort();
    v
}

/// The fixed-rounds experiment behind the C18 table: equal convergence,
/// fewer bytes.
fn assert_delta_mode_converges_cheaper(nodes: usize, rounds: i64) {
    let mut delta = seeded_arch(nodes, 31);
    let mut snap = seeded_arch(nodes, 31);
    let snap_base = snap.world().metrics().counter("gloss.kb_snapshot_bytes");
    for r in 1..=rounds {
        delta_round(&mut delta, r);
        snapshot_round(&mut snap, r);
    }
    for n in 0..nodes as u32 {
        assert_eq!(
            fact_set(&delta, n),
            fact_set(&snap, n),
            "node {n}: delta-fed and snapshot-fed replicas diverged"
        );
        assert_eq!(fact_set(&delta, n).len(), FACTS as usize, "node {n} incomplete");
    }
    let delta_bytes = delta.world().metrics().counter("gloss.kb_delta_bytes");
    let snap_bytes = snap.world().metrics().counter("gloss.kb_snapshot_bytes") - snap_base;
    assert!(delta_bytes > 0.0, "delta mode shipped nothing");
    let ratio = snap_bytes / delta_bytes;
    eprintln!(
        "c18: {rounds} churn rounds over {nodes} nodes: {snap_bytes:.0} snapshot bytes vs \
         {delta_bytes:.0} delta bytes ({ratio:.1}x)"
    );
    assert!(
        ratio >= 5.0,
        "delta propagation should move >=5x fewer kb bytes ({ratio:.1}x: \
         {snap_bytes:.0} vs {delta_bytes:.0})"
    );
}

fn c18_knowledge_churn(c: &mut Criterion) {
    let smoke = std::env::var("GLOSS_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let (nodes, rounds) = if smoke { (6, 4) } else { (8, 12) };
    assert_delta_mode_converges_cheaper(nodes, rounds);

    let mut a = seeded_arch(nodes, 32);
    let mut r = 0i64;
    c.bench_function("c18_delta_update_round", |b| {
        b.iter(|| {
            r += 1;
            delta_round(&mut a, r);
        })
    });
    let mut a = seeded_arch(nodes, 33);
    let mut r = 0i64;
    c.bench_function("c18_snapshot_update_round", |b| {
        b.iter(|| {
            r += 1;
            snapshot_round(&mut a, r);
        })
    });
}

criterion_group! {
    name = knowledge_delta;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = c18_knowledge_churn
}
criterion_main!(knowledge_delta);
