//! Distributed-delta determinism smoke for CI.
//!
//! Runs two seeded active architectures side by side over the same
//! knowledge-churn schedule — one replicating context updates as
//! epoch-tagged `kbdelta/…` batches, one re-seeding whole `kb/…`
//! documents — at the thread count given by `GLOSS_SIM_THREADS`, then
//! prints one digest line covering the traces, every `gloss.kb_*`
//! counter, and each node's final fact set. CI diffs the output at
//! threads 1/2/4: the delta plane must be schedule-preserving, and
//! delta-fed replicas must converge to the byte-identical fact sets the
//! snapshot-fed replicas hold.
//!
//! The schedule also injects one hand-crafted gap batch (a range
//! starting past every receiver's epoch), so the snapshot-fallback
//! path and its counters are part of the digested behaviour.
//!
//! Usage: deltasmoke [--nodes N] [--seed S] [--rounds K]

use gloss_core::{ActiveArchitecture, ArchConfig};
use gloss_knowledge::{DeltaBatch, Fact, FactDelta, FactSource, Term};
use gloss_overlay::Key;
use gloss_sim::{NodeIndex, SimDuration};
use gloss_store::Document;

const SUBJECT: &str = "bob";
const WRITER: NodeIndex = NodeIndex(2);

/// FNV-1a over a byte stream.
fn fnv(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x100_0000_01b3);
    }
}

fn seeded_arch(nodes: usize, seed: u64) -> ActiveArchitecture {
    let mut a = ActiveArchitecture::build(ArchConfig { nodes, seed, ..Default::default() });
    a.settle();
    a.world_mut().enable_tracing(1 << 22);
    let facts: Vec<Fact> =
        (0..16i64).map(|i| Fact::new(SUBJECT, format!("attr{i}"), Term::Int(i))).collect();
    a.seed_knowledge(WRITER, SUBJECT, &facts);
    a.run_for(SimDuration::from_secs(30));
    a.prefetch_subject_everywhere(SUBJECT);
    a.run_for(SimDuration::from_secs(30));
    a
}

/// A node's fact set for the subject, in canonical order.
fn fact_set(a: &ActiveArchitecture, node: u32) -> Vec<String> {
    let mut v: Vec<String> = a
        .node(NodeIndex(node))
        .kb
        .query(Some(SUBJECT), None)
        .map(|f| format!("{}={}", f.predicate, f.object))
        .collect();
    v.sort();
    v
}

fn main() {
    let mut nodes = 8usize;
    let mut seed = 2718u64;
    let mut rounds = 6i64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => nodes = args.next().and_then(|v| v.parse().ok()).expect("--nodes N"),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            "--rounds" => rounds = args.next().and_then(|v| v.parse().ok()).expect("--rounds K"),
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let start = std::time::Instant::now();

    let mut delta = seeded_arch(nodes, seed);
    let mut snap = seeded_arch(nodes, seed);
    for r in 1..=rounds {
        // Delta mode: one changed fact ships as a 2-delta batch.
        delta.knowledge_mut(SUBJECT).retract(SUBJECT, "attr0", &Term::Int(r - 1));
        delta.knowledge_mut(SUBJECT).add(Fact::new(SUBJECT, "attr0", Term::Int(r)));
        delta.update_knowledge(WRITER, SUBJECT);
        delta.run_for(SimDuration::from_secs(5));
        delta.prefetch_deltas_everywhere(SUBJECT);
        delta.run_for(SimDuration::from_secs(10));
        // Snapshot mode: the whole document re-seeds.
        let facts: Vec<Fact> = (0..16i64)
            .map(|i| Fact::new(SUBJECT, format!("attr{i}"), Term::Int(if i == 0 { r } else { i })))
            .collect();
        snap.seed_knowledge(WRITER, SUBJECT, &facts);
        snap.run_for(SimDuration::from_secs(5));
        snap.prefetch_subject_everywhere(SUBJECT);
        snap.run_for(SimDuration::from_secs(10));
    }

    // A gap batch nobody can apply: receivers must fall back to a full
    // fetch and still converge.
    let source = delta.knowledge_mut(SUBJECT).version().expect("versioned store").source;
    let gap = DeltaBatch {
        subject: SUBJECT.into(),
        source,
        from: 900,
        to: 901,
        deltas: vec![FactDelta::Insert(Fact::new(SUBJECT, "bogus", Term::Int(1)))],
    };
    let mut doc = Document::new(gap.doc_name(), gap.to_xml().to_xml().into_bytes());
    doc.guid = Key::hash_of_str(&format!("kbdelta/{SUBJECT}"));
    doc.version = 1000; // outrank every legitimate batch
    delta.insert_document(WRITER, doc);
    delta.run_for(SimDuration::from_secs(30));
    delta.prefetch_deltas_everywhere(SUBJECT);
    delta.run_for(SimDuration::from_secs(60));

    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for (label, a) in [("delta", &delta), ("snap", &snap)] {
        fnv(&mut digest, a.world().tracer().render().as_bytes());
        let m = a.world().metrics();
        for name in [
            "gloss.kb_ingested",
            "gloss.kb_reingest_skipped",
            "gloss.kb_snapshot_stale",
            "gloss.kb_snapshot_bytes",
            "gloss.kb_delta_applied",
            "gloss.kb_delta_facts",
            "gloss.kb_delta_stale",
            "gloss.kb_delta_fallback",
            "gloss.kb_delta_bytes",
            "sim.messages_delivered",
        ] {
            fnv(&mut digest, format!("{label}:{name}={}", m.counter(name)).as_bytes());
        }
    }
    let reference = fact_set(&snap, 0);
    assert_eq!(reference.len(), 16, "snapshot-fed node 0 incomplete");
    for n in 0..nodes as u32 {
        let d = fact_set(&delta, n);
        assert_eq!(d, fact_set(&snap, n), "node {n}: delta-fed replica diverged");
        assert_eq!(d, reference, "node {n}: replicas disagree");
        assert!(!d.iter().any(|f| f.starts_with("bogus")), "node {n}: gap batch applied");
        for f in &d {
            fnv(&mut digest, f.as_bytes());
        }
    }
    let dm = delta.world().metrics();
    assert!(dm.counter("gloss.kb_delta_applied") > 0.0, "no batch applied incrementally");
    assert!(dm.counter("gloss.kb_delta_fallback") > 0.0, "gap batch never forced a fallback");

    println!(
        "mode=kbdelta nodes={nodes} seed={seed} rounds={rounds} applied={} fallback={} \
         delta_bytes={} snapshot_bytes={} digest={digest:016x}",
        dm.counter("gloss.kb_delta_applied"),
        dm.counter("gloss.kb_delta_fallback"),
        dm.counter("gloss.kb_delta_bytes"),
        snap.world().metrics().counter("gloss.kb_snapshot_bytes"),
    );
    eprintln!(
        "threads={} wall={:.3}s",
        std::env::var("GLOSS_SIM_THREADS").unwrap_or_else(|_| "1".into()),
        start.elapsed().as_secs_f64()
    );
}
