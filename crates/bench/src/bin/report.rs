//! Regenerates every experiment table in EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run -p gloss-bench --bin report            # all experiments
//!   cargo run -p gloss-bench --bin report c2 c10     # a subset

use gloss_bench::{run_experiment, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match run_experiment(id) {
            Some((title, body)) => {
                println!("## {title}\n");
                println!("{body}");
            }
            None => eprintln!("unknown experiment `{id}` (known: {ALL_EXPERIMENTS:?})"),
        }
    }
}
