//! Fault-injection smoke for CI: a 512-node governed overlay takes a
//! two-region partition with mid-partition casualties, heals, and must
//! re-converge — every node re-joined, routes landing at the key-closest
//! live node — with **zero** evictions at loss 0. The governor's
//! phi-accrual detector is allowed to suspect and quarantine while the
//! cut holds, but evicting a healthy node in a lossless world is a bug
//! this binary exists to catch.
//!
//! Usage:
//!   faultsmoke [--nodes N] [--seed S]
//!
//! Exits nonzero (panics) on any violated invariant; prints a one-line
//! summary on success. Honors `GLOSS_SIM_THREADS` like every other
//! harness entry point.

use gloss_overlay::{GovernorConfig, Key, OverlayNetwork};
use gloss_sim::{NodeIndex, SimDuration};

fn main() {
    let mut nodes = 512usize;
    let mut seed = 4747u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => nodes = args.next().and_then(|v| v.parse().ok()).expect("--nodes N"),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let start = std::time::Instant::now();
    let mut net = OverlayNetwork::build_with(nodes, seed, Some(GovernorConfig::default()));
    net.run_for(SimDuration::from_millis(200) * nodes as u64 + SimDuration::from_secs(60));
    assert!(net.joined_fraction() > 0.99, "overlay failed to settle before the partition");

    // Cut off two regions (a third of the ring) for 25 seconds, with
    // casualties that crash behind the cut and must re-join through the
    // admission governor after the heal.
    let t0 = net.now() + SimDuration::from_secs(1);
    let heal = t0 + SimDuration::from_secs(25);
    net.world_mut().partition_regions_at(t0, Some(heal), &["us-west", "australia"]);
    let casualties: Vec<NodeIndex> =
        (1..nodes as u32).map(NodeIndex).filter(|x| x.0 % 6 >= 4).take(16).collect();
    for &c in &casualties {
        net.world_mut().crash_at(t0 + SimDuration::from_secs(2), c);
        net.world_mut().recover_at(t0 + SimDuration::from_secs(10), c);
    }
    net.run_for(heal.since(net.now()));

    // Re-convergence: every node (casualties included) back in the ring.
    let mut elapsed = 0u64;
    while elapsed < 120 && net.joined_fraction() < 1.0 {
        net.run_for(SimDuration::from_secs(2));
        elapsed += 2;
    }
    assert!(
        net.joined_fraction() >= 1.0,
        "overlay did not re-converge within 120 s of the heal (joined {:.4})",
        net.joined_fraction()
    );

    // Routes land at the key-closest live node. Quarantines opened
    // during the cut are allowed their cooldown + refutation window, so
    // probe in rounds until a whole batch is correct. Perturbed node
    // keys spread the probes over the whole ring (random hashes cluster
    // under FNV).
    let mut probe_count = 0usize;
    let mut whole = false;
    while elapsed < 240 && !whole {
        let mut batch = Vec::new();
        for j in (0..nodes as u32).step_by(7) {
            let target =
                Key(net.id_of(NodeIndex(j)).key.0 ^ (elapsed as u128 * 131 + j as u128 + 1));
            let from = net.random_node();
            batch.push((net.route_from(from, target), target));
        }
        probe_count = batch.len();
        net.run_for(SimDuration::from_secs(5));
        elapsed += 5;
        let outcomes = net.outcomes();
        whole = batch.iter().all(|(id, t)| {
            outcomes.get(id).is_some_and(|o| o.delivered_at == net.closest_alive(*t))
        });
    }
    assert!(whole, "routes still missing the key-closest live node {elapsed} s after the heal");

    // Zero false evictions: the world is lossless, every silence had a
    // cause (cut or crash) that ended well inside the eviction horizon.
    let evictions = net.world().metrics().counter("overlay.evictions");
    assert_eq!(evictions, 0.0, "evicted a healthy node in a lossless world");

    println!(
        "faultsmoke ok: nodes={nodes} seed={seed} converged_s={elapsed} probes={probe_count} evictions=0"
    );
    eprintln!(
        "threads={} wall={:.3}s",
        std::env::var("GLOSS_SIM_THREADS").unwrap_or_else(|_| "1".into()),
        start.elapsed().as_secs_f64()
    );
}
