//! CI smoke: build a 100 k-subscription counting index with every
//! constraint shape, run 1 k publishes through it, and spot-verify a
//! sample of events against the linear scan oracle. Exits nonzero on any
//! mismatch. Meant to finish in seconds even on one core.

use gloss_event::{Event, Filter, FilterIndex, Op, Subscription};
use gloss_sim::SimRng;

const SUBS: usize = 100_000;
const PUBLISHES: usize = 1_000;
const VERIFIED: usize = 20;

const OPS: [Op; 10] = [
    Op::Eq,
    Op::Ne,
    Op::Lt,
    Op::Le,
    Op::Gt,
    Op::Ge,
    Op::Prefix,
    Op::Suffix,
    Op::Contains,
    Op::Exists,
];

fn random_filter(rng: &mut SimRng) -> Filter {
    let mut f = match rng.index(4) {
        0 => Filter::for_kind("ctx"),
        1 => Filter::for_kind("goal"),
        2 => Filter::for_kind("weather"),
        _ => Filter::any(),
    };
    for _ in 0..1 + rng.index(3) {
        let attr = ["user", "temp", "place", "seq"][rng.index(4)];
        let op = OPS[rng.index(OPS.len())];
        if rng.chance(0.5) {
            f = f.with_constraint(attr, op, rng.index(1000) as i64);
        } else {
            f = f.with_constraint(attr, op, ["st", "st andrews", "dundee", ""][rng.index(4)]);
        }
    }
    f
}

fn random_event(rng: &mut SimRng) -> Event {
    let mut e = Event::new(["ctx", "goal", "weather", "other"][rng.index(4)]);
    for _ in 0..rng.index(4) {
        let attr = ["user", "temp", "place", "seq"][rng.index(4)];
        if rng.chance(0.5) {
            e = e.with_attr(attr, rng.index(1000) as i64);
        } else {
            e = e.with_attr(attr, ["st", "st andrews", "dundee", ""][rng.index(4)]);
        }
    }
    e
}

fn main() {
    let mut rng = SimRng::new(0xb8);
    let subs: Vec<Subscription> = (0..SUBS)
        .map(|i| Subscription { id: i as u64 + 1, filter: random_filter(&mut rng) })
        .collect();

    let t0 = std::time::Instant::now();
    let mut index = FilterIndex::new();
    for s in &subs {
        index.insert(s.clone());
    }
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let events: Vec<Event> = (0..PUBLISHES).map(|_| random_event(&mut rng)).collect();
    let t1 = std::time::Instant::now();
    let mut total_matches = 0usize;
    for e in &events {
        total_matches += index.matching_event(e).len();
    }
    let publish_ms = t1.elapsed().as_secs_f64() * 1e3;

    // Spot-verify a sample against the linear scan.
    let mut mismatches = 0usize;
    for k in 0..VERIFIED {
        let e = &events[k * (PUBLISHES / VERIFIED)];
        let got = index.matching_event(e);
        let want: Vec<u64> = subs.iter().filter(|s| s.filter.matches(e)).map(|s| s.id).collect();
        if got != want {
            mismatches += 1;
            eprintln!("MISMATCH for {e:?}: indexed {} ids, linear {} ids", got.len(), want.len());
        }
    }

    println!(
        "indexsmoke: {SUBS} subs built in {build_ms:.0} ms, {PUBLISHES} publishes in \
         {publish_ms:.1} ms ({total_matches} matches), {VERIFIED} events verified, \
         {mismatches} mismatches"
    );
    if mismatches > 0 {
        std::process::exit(1);
    }
}
