//! Storage-plane repair smoke for CI: a 48-node store network loses two
//! whole regions at once (a correlated machine-room crash taking out at
//! least a quarter of the nodes) and must self-heal — every surviving
//! document back at its tier's redundancy target, every erasure shard
//! re-encoded from survivors, and **zero data loss**: all document bytes
//! and the reconstructed erasure object byte-identical to what was
//! inserted.
//!
//! Prints one digest line covering repair counters, per-document
//! redundancy, and the time-to-redundancy; CI diffs the output at
//! `GLOSS_SIM_THREADS` 1/2/4, so the whole repair storm — scan order,
//! token-bucket grants, retry jitter — must be schedule-preserving.
//!
//! Usage: repairsmoke [--nodes N] [--seed S]

use gloss_sim::{NodeIndex, SimDuration};
use gloss_store::{Document, Priority, StoreConfig, StoreNetwork};

/// FNV-1a over a byte stream.
fn fnv(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x100_0000_01b3);
    }
}

/// Deterministic xorshift content.
fn fill(seed: u64, len: usize) -> Vec<u8> {
    let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s & 0xff) as u8
        })
        .collect()
}

fn first_alive(net: &StoreNetwork) -> NodeIndex {
    (0..net.len() as u32)
        .map(NodeIndex)
        .find(|&i| net.world().is_alive(i))
        .expect("someone survived")
}

fn main() {
    let mut nodes = 48usize;
    let mut seed = 1903u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => nodes = args.next().and_then(|v| v.parse().ok()).expect("--nodes N"),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let start = std::time::Instant::now();
    let cfg = StoreConfig {
        replicas: 3,
        heal_interval: SimDuration::from_secs(10),
        repair_interval: Some(SimDuration::from_secs(10)),
        tier_high_extra: 1,
        ..Default::default()
    };
    let mut net = StoreNetwork::build(nodes, cfg, seed);
    net.settle();

    // A tiered document population plus one erasure-coded object.
    let docs: Vec<Document> = (0..9u64)
        .map(|i| {
            Document::new(format!("smoke-doc-{i}"), fill(1000 + i, 300)).with_priority(
                match i % 3 {
                    0 => Priority::High,
                    1 => Priority::Normal,
                    _ => Priority::Low,
                },
            )
        })
        .collect();
    for (i, d) in docs.iter().enumerate() {
        net.insert(NodeIndex((i % nodes) as u32), d.clone());
    }
    let (m, n) = (3usize, 6usize);
    let obj = fill(42, 1200);
    let shard_guids = net.insert_erasure(NodeIndex(0), "smoke-obj", &obj, m, n).unwrap();
    net.run_for(SimDuration::from_secs(60));
    assert_eq!(net.shards_alive("smoke-obj", n), n, "erasure object incompletely placed");

    // Correlated loss: whole regions go dark together until at least a
    // quarter of the network is gone.
    let mut killed = 0usize;
    let mut regions_lost = Vec::new();
    for region in ["us-east", "australia", "europe", "us-west"] {
        if killed * 4 >= nodes {
            break;
        }
        killed += net.crash_region(region);
        regions_lost.push(region);
    }
    assert!(killed * 4 >= nodes, "only {killed}/{nodes} nodes crashed; smoke needs >= 1/4");

    // Additionally wipe every surviving holder of shard 0, so only
    // re-encoding from the other shards can bring it back — the smoke
    // must drive the erasure repair path, not just replica top-up.
    let g0 = shard_guids[0];
    let shard_victims: Vec<NodeIndex> = (0..nodes as u32)
        .map(NodeIndex)
        .filter(|&i| net.world().is_alive(i) && net.world().node(i).store.holds(g0))
        .collect();
    killed += shard_victims.len();
    for v in shard_victims {
        net.crash(v);
    }
    assert_eq!(net.replica_count(g0), 0, "shard 0 should be durably gone");

    // Redundancy targets per tier, judged from any survivor's config.
    let probe = first_alive(&net);
    let targets: Vec<usize> =
        docs.iter().map(|d| net.world().node(probe).store.target_replicas(d.priority)).collect();

    // Poll until every document is back at target and every shard has a
    // durable holder again.
    fn recovered(net: &StoreNetwork, docs: &[Document], targets: &[usize], n: usize) -> bool {
        docs.iter().zip(targets).all(|(d, t)| net.replica_count(d.guid) >= *t)
            && net.shards_alive("smoke-obj", n) == n
    }
    let deadline = 600u64;
    let mut elapsed = 0u64;
    while elapsed < deadline && !recovered(&net, &docs, &targets, n) {
        net.run_for(SimDuration::from_secs(10));
        elapsed += 10;
    }
    assert!(
        recovered(&net, &docs, &targets, n),
        "not back at redundancy {deadline} s after losing {killed} nodes ({regions_lost:?})"
    );
    let time_to_redundancy = elapsed;

    // Zero data loss: every document's bytes and the reconstructed
    // erasure object must match what was inserted.
    let reader = first_alive(&net);
    let doc_reqs: Vec<u64> = docs.iter().map(|d| net.lookup(reader, d.guid)).collect();
    let shard_reqs = net.lookup_erasure(reader, &shard_guids);
    net.run_for(SimDuration::from_secs(30));
    for (d, req) in docs.iter().zip(&doc_reqs) {
        let got = net
            .result(*req)
            .and_then(|r| r.doc.as_ref())
            .unwrap_or_else(|| panic!("{} lost after the crash", d.name));
        assert_eq!(got.content, d.content, "{} bytes corrupted by repair", d.name);
    }
    let rebuilt =
        net.reconstruct(&shard_reqs, m, n, obj.len()).expect("erasure object unrecoverable");
    assert_eq!(rebuilt, obj, "erasure object bytes corrupted by repair");
    assert!(
        net.counter("store.repair_shards") >= 1.0,
        "shard 0 came back without the erasure repair path firing"
    );

    // Digest: counters, redundancy, shard survival — diffed across
    // thread counts by CI.
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for d in &docs {
        fnv(&mut digest, format!("{}={}", d.name, net.replica_count(d.guid)).as_bytes());
    }
    for (i, g) in shard_guids.iter().enumerate() {
        fnv(&mut digest, format!("shard{i}={}", net.replica_count(*g)).as_bytes());
    }
    for c in [
        "store.repair_puts",
        "store.repair_bytes",
        "store.repair_shards",
        "store.repair_audits",
        "store.repair_deferred",
        "store.locations_purged",
        "store.lookups_retried",
        "store.lookups_timeout",
        "store.evictions",
        "sim.messages_sent",
    ] {
        fnv(&mut digest, format!("{c}={}", net.counter(c)).as_bytes());
    }
    fnv(&mut digest, format!("ttr={time_to_redundancy}").as_bytes());

    println!(
        "repairsmoke ok: nodes={nodes} seed={seed} killed={killed} ttr_s={time_to_redundancy} \
         repair_puts={} repair_shards={} repair_bytes={} retried={} digest={digest:016x}",
        net.counter("store.repair_puts"),
        net.counter("store.repair_shards"),
        net.counter("store.repair_bytes"),
        net.counter("store.lookups_retried"),
    );
    eprintln!(
        "threads={} wall={:.3}s",
        std::env::var("GLOSS_SIM_THREADS").unwrap_or_else(|_| "1".into()),
        start.elapsed().as_secs_f64()
    );
}
