//! Determinism cross-check and threaded scale smoke for CI.
//!
//! Runs a seeded multi-region workload at the thread count given by
//! `GLOSS_SIM_THREADS` and prints a digest of everything observable —
//! the full trace, per-node schedules, engine counters, and the settle
//! time. Running it twice (threads=1 and threads=4) and diffing the
//! output proves the worker pool is schedule-preserving.
//!
//! Usage:
//!   determinism [--nodes N] [--seed S] [--overlay | --faults]
//!
//! Default mode is a chattering multi-region protocol with loss and a
//! crash/recover schedule (traces enabled; the digest covers the trace
//! bytes). `--overlay` instead builds and settles an N-node overlay
//! network — no tracing, counters-only digest — which doubles as the
//! wall-clock scale smoke. `--faults` runs the full robustness plane —
//! governed overlay, regional partition + heal, byzantine ack-then-drop
//! peers, crash/recover casualties, and routed traffic — with tracing
//! on, proving the governor's suspicion scoring, quarantine, re-routing,
//! and eviction schedule are byte-identical at any thread count. Wall
//! time goes to stderr so stdout is diff-stable across runs.

use gloss_overlay::{GovernorConfig, Key, OverlayNetwork};
use gloss_sim::testkit::Chatter;
use gloss_sim::{ByzBehavior, NodeIndex, SimDuration, SimRng, SimTime, Topology, World};

/// FNV-1a over a byte stream.
fn fnv(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x100_0000_01b3);
    }
}

fn chatter_digest(nodes: usize, seed: u64) {
    let regions =
        &["scotland", "england", "europe", "us-east", "us-west", "brazil", "australia", "asia"];
    let topology = Topology::random(nodes, regions, seed);
    let machines: Vec<Chatter> = (0..nodes)
        .map(|i| Chatter::new(i as u32, nodes as u32, seed ^ (i as u64) << 9, 8))
        .collect();
    let mut w = World::new(topology, seed, machines);
    w.enable_tracing(1 << 22);
    w.set_loss(0.1);
    let mut rng = SimRng::new(seed).fork("digest-churn");
    for k in 0..nodes as u64 / 16 {
        let victim = NodeIndex(rng.index(nodes) as u32);
        let at = SimTime::from_millis(10 + 13 * k);
        w.crash_at(at, victim);
        w.recover_at(at + SimDuration::from_millis(20), victim);
    }
    w.run_until(SimTime::from_millis(30));
    for _ in 0..nodes / 4 {
        let a = NodeIndex(rng.index(nodes) as u32);
        let b = NodeIndex(rng.index(nodes) as u32);
        w.inject(a, b, 8);
    }
    // Push the whole crash/recover schedule and the event bulk through
    // `run_until` — the only path the worker pool runs on —
    // before the sequential per-event quiescence tail.
    w.run_until(SimTime::from_millis(400));
    let settle = w.run_to_quiescence(SimTime::from_secs(60));
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    fnv(&mut digest, w.tracer().render().as_bytes());
    for n in w.nodes() {
        fnv(&mut digest, n.log.join("\n").as_bytes());
    }
    let m = w.metrics();
    for name in ["chatter.msgs", "sim.messages_sent", "sim.messages_lost", "sim.crashes"] {
        fnv(&mut digest, format!("{name}={}", m.counter(name)).as_bytes());
    }
    println!(
        "mode=chatter nodes={nodes} seed={seed} trace_events={} settle={settle} digest={digest:016x}",
        w.tracer().events().len()
    );
}

fn overlay_digest(nodes: usize, seed: u64) {
    let mut net = OverlayNetwork::build(nodes, seed);
    net.run_for(SimDuration::from_millis(200) * nodes as u64 + SimDuration::from_secs(60));
    assert!(net.joined_fraction() > 0.99, "overlay failed to settle");
    let m = net.world().metrics();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for name in [
        "sim.messages_sent",
        "sim.messages_delivered",
        "sim.messages_lost",
        "sim.batches",
        "sim.batched_messages",
    ] {
        fnv(&mut digest, format!("{name}={}", m.counter(name)).as_bytes());
    }
    println!(
        "mode=overlay nodes={nodes} seed={seed} joined={:.4} delivered={} digest={digest:016x}",
        net.joined_fraction(),
        m.counter("sim.messages_delivered")
    );
}

/// Full robustness plane under one digest: a governed overlay survives a
/// regional partition with mid-partition casualties and byzantine
/// ack-then-drop peers while routing perturbed-key traffic throughout.
/// The digest covers the trace (every suspicion, quarantine, eviction,
/// and re-route lands there) plus the governor's counters.
fn faults_digest(nodes: usize, seed: u64) {
    let mut net = OverlayNetwork::build_with(nodes, seed, Some(GovernorConfig::default()));
    net.world_mut().enable_tracing(1 << 22);
    net.run_for(SimDuration::from_millis(200) * nodes as u64 + SimDuration::from_secs(60));
    assert!(net.joined_fraction() > 0.99, "governed overlay failed to settle");
    // Three byzantine peers spread across the index space.
    for i in 0..3u32 {
        net.set_byzantine(NodeIndex((5 + 11 * i) % nodes as u32), ByzBehavior::AckThenDrop);
    }
    // Regional partition with a scheduled heal, plus casualties that
    // crash behind it and rejoin through the admission governor.
    let t0 = net.now() + SimDuration::from_secs(1);
    let heal = t0 + SimDuration::from_secs(20);
    net.world_mut().partition_regions_at(t0, Some(heal), &["us-east", "us-west", "australia"]);
    for k in 0..(nodes as u32 / 24).max(2) {
        let victim = NodeIndex(1 + (7 * k) % (nodes as u32 - 1));
        net.world_mut().crash_at(t0 + SimDuration::from_secs(2), victim);
        net.world_mut().recover_at(t0 + SimDuration::from_secs(10), victim);
    }
    // Routed traffic across partition, heal, and recovery: perturbed
    // node keys spread payload over the whole ring (random hashes
    // cluster under FNV), exercising forwards through suspects.
    for round in 0..12u64 {
        for j in (0..nodes as u32).step_by(5) {
            let target = Key(net.id_of(NodeIndex(j)).key.0 ^ (round as u128 * 131 + j as u128 + 1));
            let from = net.random_node();
            net.route_from(from, target);
        }
        net.run_for(SimDuration::from_secs(5));
    }
    net.run_for(SimDuration::from_secs(30));
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    fnv(&mut digest, net.world().tracer().render().as_bytes());
    let m = net.world().metrics();
    for name in [
        "sim.messages_sent",
        "sim.messages_delivered",
        "sim.messages_partitioned",
        "sim.crashes",
        "overlay.suspected",
        "overlay.evictions",
        "overlay.reroutes",
        "overlay.refutations",
        "overlay.join_backoff",
        "overlay.byz_dropped",
        "overlay.delivered",
    ] {
        fnv(&mut digest, format!("{name}={}", m.counter(name)).as_bytes());
    }
    println!(
        "mode=faults nodes={nodes} seed={seed} trace_events={} evictions={} reroutes={} digest={digest:016x}",
        net.world().tracer().events().len(),
        m.counter("overlay.evictions"),
        m.counter("overlay.reroutes"),
    );
}

fn main() {
    let mut nodes = None;
    let mut seed = 4242u64;
    let mut overlay = false;
    let mut faults = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => nodes = Some(args.next().and_then(|v| v.parse().ok()).expect("--nodes N")),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            "--overlay" => overlay = true,
            "--faults" => faults = true,
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let start = std::time::Instant::now();
    if faults {
        // Smaller default: tracing is on and every route is digested.
        faults_digest(nodes.unwrap_or(96), seed);
    } else if overlay {
        overlay_digest(nodes.unwrap_or(192), seed);
    } else {
        chatter_digest(nodes.unwrap_or(192), seed);
    }
    eprintln!(
        "threads={} wall={:.3}s",
        std::env::var("GLOSS_SIM_THREADS").unwrap_or_else(|_| "1".into()),
        start.elapsed().as_secs_f64()
    );
}
