//! Determinism cross-check and threaded scale smoke for CI.
//!
//! Runs a seeded multi-region workload at the thread count given by
//! `GLOSS_SIM_THREADS` and prints a digest of everything observable —
//! the full trace, per-node schedules, engine counters, and the settle
//! time. Running it twice (threads=1 and threads=4) and diffing the
//! output proves the worker pool is schedule-preserving.
//!
//! Usage:
//!   determinism [--nodes N] [--seed S] [--overlay]
//!
//! Default mode is a chattering multi-region protocol with loss and a
//! crash/recover schedule (traces enabled; the digest covers the trace
//! bytes). `--overlay` instead builds and settles an N-node overlay
//! network — no tracing, counters-only digest — which doubles as the
//! wall-clock scale smoke. Wall time goes to stderr so stdout is
//! diff-stable across runs.

use gloss_overlay::OverlayNetwork;
use gloss_sim::testkit::Chatter;
use gloss_sim::{NodeIndex, SimDuration, SimRng, SimTime, Topology, World};

/// FNV-1a over a byte stream.
fn fnv(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x100_0000_01b3);
    }
}

fn chatter_digest(nodes: usize, seed: u64) {
    let regions =
        &["scotland", "england", "europe", "us-east", "us-west", "brazil", "australia", "asia"];
    let topology = Topology::random(nodes, regions, seed);
    let machines: Vec<Chatter> = (0..nodes)
        .map(|i| Chatter::new(i as u32, nodes as u32, seed ^ (i as u64) << 9, 8))
        .collect();
    let mut w = World::new(topology, seed, machines);
    w.enable_tracing(1 << 22);
    w.set_loss(0.1);
    let mut rng = SimRng::new(seed).fork("digest-churn");
    for k in 0..nodes as u64 / 16 {
        let victim = NodeIndex(rng.index(nodes) as u32);
        let at = SimTime::from_millis(10 + 13 * k);
        w.crash_at(at, victim);
        w.recover_at(at + SimDuration::from_millis(20), victim);
    }
    w.run_until(SimTime::from_millis(30));
    for _ in 0..nodes / 4 {
        let a = NodeIndex(rng.index(nodes) as u32);
        let b = NodeIndex(rng.index(nodes) as u32);
        w.inject(a, b, 8);
    }
    // Push the whole crash/recover schedule and the event bulk through
    // `run_until` — the only path the worker pool runs on —
    // before the sequential per-event quiescence tail.
    w.run_until(SimTime::from_millis(400));
    let settle = w.run_to_quiescence(SimTime::from_secs(60));
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    fnv(&mut digest, w.tracer().render().as_bytes());
    for n in w.nodes() {
        fnv(&mut digest, n.log.join("\n").as_bytes());
    }
    let m = w.metrics();
    for name in ["chatter.msgs", "sim.messages_sent", "sim.messages_lost", "sim.crashes"] {
        fnv(&mut digest, format!("{name}={}", m.counter(name)).as_bytes());
    }
    println!(
        "mode=chatter nodes={nodes} seed={seed} trace_events={} settle={settle} digest={digest:016x}",
        w.tracer().events().len()
    );
}

fn overlay_digest(nodes: usize, seed: u64) {
    let mut net = OverlayNetwork::build(nodes, seed);
    net.run_for(SimDuration::from_millis(200) * nodes as u64 + SimDuration::from_secs(60));
    assert!(net.joined_fraction() > 0.99, "overlay failed to settle");
    let m = net.world().metrics();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for name in [
        "sim.messages_sent",
        "sim.messages_delivered",
        "sim.messages_lost",
        "sim.batches",
        "sim.batched_messages",
    ] {
        fnv(&mut digest, format!("{name}={}", m.counter(name)).as_bytes());
    }
    println!(
        "mode=overlay nodes={nodes} seed={seed} joined={:.4} delivered={} digest={digest:016x}",
        net.joined_fraction(),
        m.counter("sim.messages_delivered")
    );
}

fn main() {
    let mut nodes = 192usize;
    let mut seed = 4242u64;
    let mut overlay = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => nodes = args.next().and_then(|v| v.parse().ok()).expect("--nodes N"),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            "--overlay" => overlay = true,
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let start = std::time::Instant::now();
    if overlay {
        overlay_digest(nodes, seed);
    } else {
        chatter_digest(nodes, seed);
    }
    eprintln!(
        "threads={} wall={:.3}s",
        std::env::var("GLOSS_SIM_THREADS").unwrap_or_else(|_| "1".into()),
        start.elapsed().as_secs_f64()
    );
}
