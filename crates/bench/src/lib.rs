//! Experiment harness: one function per experiment in DESIGN.md §5.
//!
//! `cargo run -p gloss-bench --bin report` regenerates every table in
//! EXPERIMENTS.md; the Criterion benches under `benches/` measure the
//! per-operation costs behind each experiment.

use gloss_core::{ActiveArchitecture, ArchConfig, IceCreamScenario, PopulationWorkload};
use gloss_deploy::{Constraint, DeploymentPlane};
use gloss_event::{Architecture, Event, Filter, PubSubConfig, PubSubNetwork};
use gloss_knowledge::{
    Fact, InMemoryFacts, LexicalMatcher, Ontology, RetrievalScores, ServiceDescription,
    SpecMatcher, Term, TextMatcher,
};
use gloss_matchlet::MatchletEngine;
use gloss_overlay::{FreenetNetwork, Key, OverlayNetwork};
use gloss_pipeline::{standard::Counter, DistributedPipeline, PipelineGraph};
use gloss_sim::{NodeIndex, SimDuration, SimRng, Zipf};
use gloss_store::{Document, ErasureCode, Priority, StoreConfig, StoreNetwork};
use gloss_xml::{Element, FieldType, ProjSpec, Schema};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Worker thread counts the scale benches and the report's s3 table run
/// at: 1 (the sequential path) plus the threaded column the CI
/// determinism cross-check pins.
pub const THREAD_COLUMNS: &[usize] = &[1, 4];

/// Renders an aligned table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(line, "| {:<w$} ", c, w = widths[i]);
        }
        line.push('|');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let mut sep = String::new();
    for w in &widths {
        let _ = write!(sep, "|{:-<w$}", "", w = w + 2);
    }
    sep.push('|');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

fn f(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// E1 (Figure 1): the global matching service distils a high event volume
/// into few meaningful events.
pub fn e1_matching_service() -> String {
    let mut rows = Vec::new();
    for users in [10usize, 20, 40] {
        let mut scenario = IceCreamScenario::setup(100 + users as u64);
        let workload = PopulationWorkload {
            users,
            duration: SimDuration::from_secs(300),
            ..Default::default()
        };
        workload.seed_population_knowledge(&mut scenario.arch, 1);
        scenario.arch.run_for(SimDuration::from_secs(30));
        let scheduled = workload.inject(&mut scenario.arch, 2);
        scenario.play_events();
        scenario.arch.run_for(SimDuration::from_secs(400));
        let sensed = scenario.arch.total_sensed();
        let meaningful = scenario.arch.total_synthesized();
        let suggestions = scenario.suggestions().len();
        rows.push(vec![
            users.to_string(),
            scheduled.to_string(),
            sensed.to_string(),
            meaningful.to_string(),
            f(sensed as f64 / meaningful.max(1) as f64),
            suggestions.to_string(),
        ]);
    }
    table(
        &["users", "scheduled", "events in", "events out", "distillation", "bob+anna suggestions"],
        &rows,
    )
}

/// E2 (Figure 2): distributed XML pipelines — intra- vs inter-node flow.
pub fn e2_pipelines() -> String {
    let mut rows = Vec::new();
    for (components, nodes) in [(4usize, 1usize), (4, 2), (8, 1), (8, 2), (8, 4)] {
        // Split the chain across `nodes` hosts.
        let per_node = components / nodes;
        let mut graphs = Vec::new();
        for n in 0..nodes {
            let mut g = PipelineGraph::new();
            let mut prev = None;
            for c in 0..per_node {
                let idx = g.add(Box::new(Counter::new(format!("c{n}-{c}"))));
                if let Some(p) = prev {
                    g.connect(p, idx);
                }
                prev = Some(idx);
            }
            g.mark_entry(g.index_of(&format!("c{n}-0")).expect("added above"));
            graphs.push(g);
        }
        let mut dp = DistributedPipeline::build(graphs, 11);
        for n in 0..nodes.saturating_sub(1) {
            dp.link(NodeIndex(n as u32), NodeIndex(n as u32 + 1));
        }
        for i in 0..200i64 {
            dp.put(NodeIndex(0), Event::new("e").with_attr("n", i));
        }
        dp.run_for(SimDuration::from_secs(30));
        let s = dp.world().metrics().summary("pipeline.end_to_end_ms");
        rows.push(vec![
            components.to_string(),
            nodes.to_string(),
            s.count.to_string(),
            f(s.mean),
            f(s.p99),
        ]);
    }
    table(&["components", "nodes", "events", "mean ms", "p99 ms"], &rows)
}

/// E3 (Figure 3): bundle deployment onto thin servers.
pub fn e3_deployment() -> String {
    let mut rows = Vec::new();
    for instances in [2usize, 4, 8] {
        let constraints = vec![Constraint::count("matcher", None, instances)];
        let mut plane = DeploymentPlane::build(10, constraints, 21);
        plane.run_for(SimDuration::from_secs(120));
        let sat = plane.evolution().satisfaction();
        let bundles = plane.world().metrics().counter("deploy.bundles_sent");
        let installs = plane.world().metrics().counter("deploy.installs");
        // Time of the initial rollout = last repair episode end.
        let rollout = plane
            .evolution()
            .repair_episodes
            .first()
            .map(|(a, b)| b.since(*a).as_secs_f64())
            .unwrap_or(0.0);
        rows.push(vec![
            instances.to_string(),
            f(sat * 100.0),
            bundles.to_string(),
            installs.to_string(),
            f(rollout),
        ]);
    }
    table(&["instances", "satisfied %", "bundles sent", "installs", "rollout s"], &rows)
}

/// C1: centralized vs hierarchical vs acyclic-peer event routing load.
pub fn c1_event_routing() -> String {
    let mut rows = Vec::new();
    for brokers in [2usize, 4, 8] {
        let mut cells = vec![brokers.to_string(), (brokers * 4).to_string()];
        for arch in
            [Architecture::Centralized, Architecture::Hierarchical, Architecture::AcyclicPeer]
        {
            let mut net = PubSubNetwork::build(PubSubConfig {
                architecture: arch,
                brokers,
                clients_per_broker: 4,
                seed: 31,
                ..PubSubConfig::default()
            });
            let clients = net.clients().to_vec();
            for &c in &clients {
                net.subscribe(c, Filter::for_kind("k").with_eq("shard", (c.0 % 4) as i64));
            }
            net.run_for(SimDuration::from_secs(5));
            for round in 0..5 {
                for &c in &clients {
                    net.publish(c, Event::new("k").with_attr("shard", ((c.0 + round) % 4) as i64));
                }
                net.run_for(SimDuration::from_secs(5));
            }
            cells.push(net.max_broker_load().to_string());
        }
        rows.push(cells);
    }
    table(&["brokers", "clients", "central max load", "hier max load", "peer max load"], &rows)
}

/// C2: deterministic Plaxton routing vs a Freenet-like walk.
pub fn c2_overlay_routing() -> String {
    let mut rows = Vec::new();
    for n in [16usize, 64, 256] {
        let mut net = OverlayNetwork::build(n, 41);
        net.run_for(SimDuration::from_millis(200) * n as u64 + SimDuration::from_secs(60));
        let mut ids = Vec::new();
        for i in 0..60 {
            let from = net.random_node();
            let target = Key::hash_of(format!("c2-{i}").as_bytes());
            ids.push((net.route_from(from, target), target));
        }
        net.run_for(SimDuration::from_secs(30));
        let outcomes = net.outcomes();
        let delivered = ids.iter().filter(|(id, _)| outcomes.contains_key(id)).count();
        let correct = ids
            .iter()
            .filter(|(id, t)| {
                outcomes.get(id).is_some_and(|o| o.delivered_at == net.closest_alive(*t))
            })
            .count();
        let mean_hops =
            outcomes.values().map(|o| o.hops as f64).sum::<f64>() / outcomes.len().max(1) as f64;

        // Freenet-like baseline with the same population.
        let mut fnet = FreenetNetwork::build(n, 5, 24, 41);
        let mut batch = Vec::new();
        for i in 0..60 {
            let key = Key::hash_of(format!("c2-{i}").as_bytes());
            fnet.store(key);
            batch.push(fnet.lookup(key));
        }
        fnet.run_for(SimDuration::from_secs(240));
        rows.push(vec![
            n.to_string(),
            format!("{delivered}/60"),
            format!("{correct}/60"),
            f(mean_hops),
            f((n as f64).log(16.0)),
            f(fnet.success_rate(&batch) * 100.0),
        ]);
    }
    table(
        &[
            "nodes",
            "plaxton delivered",
            "correct dest",
            "mean hops",
            "log16 N",
            "freenet success %",
        ],
        &rows,
    )
}

/// C3: promiscuous caching and self-healing replication.
pub fn c3_caching() -> String {
    let mut rows = Vec::new();
    for cache in [false, true] {
        let cfg = StoreConfig { cache_enabled: cache, ..Default::default() };
        let mut net = StoreNetwork::build(24, cfg, 51);
        net.settle();
        // 30 documents, Zipf-read 200 times from random nodes.
        let docs: Vec<Document> =
            (0..30).map(|i| Document::new(format!("doc-{i}"), vec![7u8; 256])).collect();
        for d in &docs {
            let node = net.random_node();
            net.insert(node, d.clone());
        }
        net.run_for(SimDuration::from_secs(60));
        let zipf = Zipf::new(docs.len(), 1.0);
        let mut rng = SimRng::new(51).fork("c3");
        for _ in 0..200 {
            let d = &docs[zipf.sample(&mut rng)];
            let reader = net.random_node();
            net.lookup(reader, d.guid);
            net.run_for(SimDuration::from_secs(2));
        }
        net.run_for(SimDuration::from_secs(30));
        let lat = net.world().metrics().summary("store.lookup_ms");
        let served_cache = net.world().metrics().counter("store.cache_served");
        let local = net.world().metrics().counter("store.lookups_local");
        rows.push(vec![
            if cache { "on" } else { "off" }.to_string(),
            f(lat.mean),
            f(lat.p99),
            f(served_cache),
            f(local),
        ]);
    }
    let mut out = String::from("Promiscuous caching (Zipf reads over 30 docs, 24 nodes):\n");
    out.push_str(&table(&["cache", "mean read ms", "p99 ms", "cache-served", "local hits"], &rows));

    // Healing: crash a replica holder, watch the count recover.
    let cfg = StoreConfig {
        replicas: 3,
        heal_interval: SimDuration::from_secs(10),
        ..Default::default()
    };
    let mut net = StoreNetwork::build(16, cfg, 52);
    net.settle();
    let doc = Document::new("healing-doc", vec![1u8; 128]);
    net.insert(NodeIndex(0), doc.clone());
    net.run_for(SimDuration::from_secs(60));
    let before = net.replica_count(doc.guid);
    let holder = (0..16u32)
        .map(NodeIndex)
        .find(|&i| net.world().node(i).store.holds(doc.guid))
        .expect("replicated");
    net.crash(holder);
    let mut elapsed = 0u64;
    while net.replica_count(doc.guid) < 3 && elapsed < 300 {
        net.run_for(SimDuration::from_secs(10));
        elapsed += 10;
    }
    let _ = writeln!(
        out,
        "\nSelf-healing: {before} replicas -> crash one -> back to {} within {elapsed} s (probe timeout + heal interval).",
        net.replica_count(doc.guid)
    );
    out
}

/// C4: evolution engine repair latency under churn.
pub fn c4_evolution() -> String {
    let mut rows = Vec::new();
    for crashes in [1usize, 2, 3] {
        let constraints = vec![Constraint::count("replicator", None, 4)];
        let mut plane = DeploymentPlane::build(10, constraints, 61);
        plane.run_for(SimDuration::from_secs(120));
        let hosts: Vec<NodeIndex> = plane
            .evolution()
            .deployment()
            .instances_of("replicator")
            .map(|(_, n)| n)
            .take(crashes)
            .collect();
        for h in &hosts {
            plane.crash(*h);
        }
        plane.run_for(SimDuration::from_secs(240));
        let sat = plane.evolution().satisfaction();
        let detect = plane.monitor().failures_detected;
        let repair = plane.world().metrics().summary("deploy.repair_ms");
        rows.push(vec![
            crashes.to_string(),
            f(sat * 100.0),
            detect.to_string(),
            f(repair.mean / 1000.0),
            f(repair.max / 1000.0),
        ]);
    }
    table(
        &[
            "simultaneous crashes",
            "final satisfied %",
            "failures detected",
            "mean repair s",
            "max repair s",
        ],
        &rows,
    )
}

/// C5: latency-reduction vs backup placement policies.
pub fn c5_placement() -> String {
    // Latency policy: Australian reads of a Scottish document.
    let run_reads = |threshold: Option<u64>| -> Vec<f64> {
        let cfg = StoreConfig {
            replicas: 1,
            cache_enabled: false,
            latency_policy_threshold: threshold,
            ..Default::default()
        };
        let mut net = StoreNetwork::build(18, cfg, 71);
        net.settle();
        let doc = Document::new("bob-personal-data", vec![2u8; 64]);
        net.insert(NodeIndex(0), doc.clone());
        net.run_for(SimDuration::from_secs(30));
        let reader = net.random_node_in("australia").expect("has australia");
        let mut latencies = Vec::new();
        for _ in 0..6 {
            let id = net.lookup(reader, doc.guid);
            net.run_for(SimDuration::from_secs(20));
            latencies
                .push(net.result(id).map(|r| r.latency.as_secs_f64() * 1e3).unwrap_or(f64::NAN));
        }
        latencies
    };
    let without = run_reads(None);
    let with = run_reads(Some(3));
    let mut rows = Vec::new();
    for i in 0..6 {
        rows.push(vec![(i + 1).to_string(), f(without[i]), f(with[i])]);
    }
    let mut out = String::from(
        "Latency-reduction policy (read #N from Australia, primary in Scotland, threshold 3):\n",
    );
    out.push_str(&table(&["read #", "policy off ms", "policy on ms"], &rows));

    // Backup policy: time to a geographically remote replica.
    let cfg =
        StoreConfig { replicas: 1, backup_policy_min_km: Some(5_000.0), ..Default::default() };
    let mut net = StoreNetwork::build(18, cfg, 72);
    net.settle();
    let doc = Document::new("fresh-data", vec![3u8; 64]);
    let t0 = net.now();
    net.insert(NodeIndex(0), doc.clone());
    let mut waited = 0u64;
    let far_exists = |net: &StoreNetwork| -> bool {
        let holders: Vec<NodeIndex> = (0..18u32)
            .map(NodeIndex)
            .filter(|&i| net.world().node(i).store.holds(doc.guid))
            .collect();
        holders.iter().any(|&a| {
            holders.iter().any(|&b| {
                net.world().topology().node(a).geo.distance_km(net.world().topology().node(b).geo)
                    >= 5_000.0
            })
        })
    };
    while !far_exists(&net) && waited < 120 {
        net.run_for(SimDuration::from_secs(5));
        waited += 5;
    }
    let _ = writeln!(
        out,
        "\nBackup policy: geographically remote (>=5000 km) replica exists {:.1} s after creation.",
        (net.now().since(t0)).as_secs_f64()
    );
    out
}

/// C6: type projection vs type generation vs naive tree walking.
pub fn c6_projection() -> String {
    // Corpus: location events with a known island plus variable extras.
    let make_doc = |i: usize, extra: bool| -> Element {
        let mut e = Element::new("event")
            .with_attr("seq", i.to_string())
            .with_child(Element::new("user").with_attr("id", format!("u{}", i % 50)))
            .with_child(
                Element::new("pos")
                    .with_attr("lat", format!("{}", 56.0 + (i % 100) as f64 / 1000.0))
                    .with_attr("lon", "-2.8"),
            );
        if extra {
            e.push(
                Element::new("vendor_extension")
                    .with_attr("firmware", "2.1")
                    .with_child(Element::new("diag").with_text("ok")),
            );
        }
        e
    };
    let regular: Vec<Element> = (0..200).map(|i| make_doc(i, false)).collect();
    let evolved: Vec<Element> = (0..200).map(|i| make_doc(i, true)).collect();

    let spec = ProjSpec::new("loc")
        .field("user", "user/@id", FieldType::Str)
        .field("lat", "pos/@lat", FieldType::Float)
        .field("lon", "pos/@lon", FieldType::Float);
    let schema = {
        let refs: Vec<&Element> = regular.iter().collect();
        Schema::infer(&refs).expect("regular corpus infers")
    };

    let time_per_doc = |f: &mut dyn FnMut(&Element) -> bool, docs: &[Element]| -> (f64, f64) {
        let start = std::time::Instant::now();
        let mut ok = 0usize;
        let reps = 50;
        for _ in 0..reps {
            for d in docs {
                if f(d) {
                    ok += 1;
                }
            }
        }
        let ns = start.elapsed().as_nanos() as f64 / (docs.len() * reps) as f64;
        (ns, ok as f64 / (docs.len() * reps) as f64 * 100.0)
    };

    let mut naive = |d: &Element| -> bool {
        // Hand-rolled tree walk: scan all descendants for the fields.
        let mut user = None;
        let mut lat = None;
        for el in d.descendants() {
            if el.name() == "user" {
                user = el.attr("id");
            }
            if el.name() == "pos" {
                lat = el.attr("lat");
            }
        }
        user.is_some() && lat.and_then(|l| l.parse::<f64>().ok()).is_some()
    };
    let mut proj = |d: &Element| -> bool { spec.project(d).is_ok() };
    let mut gen = |d: &Element| -> bool { schema.bind(d).is_ok() };

    let mut rows = Vec::new();
    for (name, func) in [
        ("naive tree walk", &mut naive as &mut dyn FnMut(&Element) -> bool),
        ("type projection", &mut proj),
        ("type generation", &mut gen),
    ] {
        let (ns_reg, ok_reg) = time_per_doc(func, &regular);
        let (ns_evo, ok_evo) = time_per_doc(func, &evolved);
        rows.push(vec![name.to_string(), f(ns_reg), f(ok_reg), f(ns_evo), f(ok_evo)]);
    }
    table(
        &["binding strategy", "regular ns/doc", "regular ok %", "evolved ns/doc", "evolved ok %"],
        &rows,
    )
}

/// C7: the ice-cream correlation inside its five-minute window, under
/// background noise.
pub fn c7_scenario() -> String {
    let mut rows = Vec::new();
    for noise_rate in [0.0f64, 2.0, 10.0] {
        let mut scenario = IceCreamScenario::setup(81);
        if noise_rate > 0.0 {
            let w = PopulationWorkload {
                users: 10,
                noise_rate,
                duration: SimDuration::from_secs(400),
                ..Default::default()
            };
            w.seed_population_knowledge(&mut scenario.arch, 3);
            scenario.arch.run_for(SimDuration::from_secs(20));
            w.inject(&mut scenario.arch, 4);
        }
        let before = scenario.arch.now();
        scenario.play_events();
        // The last enabling event lands 70 s after `before`.
        let enabling_done = before + SimDuration::from_secs(70);
        scenario.arch.run_for(SimDuration::from_secs(400));
        let first_suggestion = scenario
            .suggestions()
            .first()
            .map(|e| e.published_at())
            .unwrap_or(gloss_sim::SimTime::MAX);
        let latency_s = if first_suggestion == gloss_sim::SimTime::MAX {
            f64::NAN
        } else {
            first_suggestion.since(enabling_done).as_secs_f64()
        };
        rows.push(vec![
            f(noise_rate),
            scenario.arch.total_sensed().to_string(),
            scenario.suggestions().len().to_string(),
            f(latency_s),
            (latency_s < 300.0).to_string(),
        ]);
    }
    table(&["noise ev/s", "total events", "suggestions", "latency s", "within 5 min window"], &rows)
}

/// C8: discovery of handlers for unknown event kinds.
pub fn c8_discovery() -> String {
    let mut arch =
        ActiveArchitecture::build(ArchConfig { nodes: 8, seed: 91, ..Default::default() });
    arch.settle();
    arch.register_handler_code(
        NodeIndex(1),
        "air.quality",
        include_str!("matchlets/smog.matchlet"),
    );
    arch.run_for(SimDuration::from_secs(30));
    arch.subscribe_ui(NodeIndex(2), Filter::for_kind("smog_warning"));
    arch.run_for(SimDuration::from_secs(10));

    // Phase 1: events before discovery produce nothing.
    let t0 = arch.now();
    arch.publish(NodeIndex(6), Event::new("air.quality").with_attr("aqi", 140i64));
    arch.run_for(SimDuration::from_secs(60));
    let discovered = arch
        .node(NodeIndex(0))
        .coordinator_state
        .as_ref()
        .map(|c| c.discovered.clone())
        .unwrap_or_default();
    let matched_before = arch.node(NodeIndex(2)).ui_received.len();
    // Phase 2: post-discovery events are matched.
    arch.publish(NodeIndex(6), Event::new("air.quality").with_attr("aqi", 150i64));
    arch.run_for(SimDuration::from_secs(30));
    let matched_after = arch.node(NodeIndex(2)).ui_received.len();
    let lookups = arch.world().metrics().counter("gloss.discovery_lookups");

    let rows = vec![vec![
        discovered.join(","),
        f(lookups),
        matched_before.to_string(),
        (matched_after - matched_before).to_string(),
        f(arch.now().since(t0).as_secs_f64()),
    ]];
    table(
        &["discovered kinds", "store lookups", "matched before", "matched after", "elapsed s"],
        &rows,
    )
}

/// C9: text vs lexical vs specification description matching.
pub fn c9_description_match() -> String {
    // A corpus of 40 services: half genuinely about ice cream (with
    // controlled facet terms), half lexically confusable prose.
    let ontology = Ontology::food_and_context();
    let mut corpus = Vec::new();
    let mut relevant: BTreeSet<String> = BTreeSet::new();
    let variants = ["gelato", "sorbet", "ice cream"];
    for i in 0..20 {
        let term = variants[i % variants.len()];
        let name = format!("cold-{i}");
        relevant.insert(name.clone());
        corpus.push(
            ServiceDescription::new(
                &name,
                format!("shop number {i} selling quality {term} near the beach"),
            )
            .with_facet("offers", term),
        );
    }
    for i in 0..20 {
        corpus.push(
            ServiceDescription::new(
                format!("decoy-{i}"),
                "we repair ice damaged cream colored phone screens",
            )
            .with_facet("offers", "phone repair"),
        );
    }
    let text = RetrievalScores::compute(&TextMatcher.retrieve("ice cream", &corpus), &relevant);
    let lexical = RetrievalScores::compute(
        &LexicalMatcher::new(ontology).retrieve("offers", "ice cream", &corpus),
        &relevant,
    );
    let spec = RetrievalScores::compute(
        &SpecMatcher::new().require("offers", "ice cream").retrieve(&corpus),
        &relevant,
    );
    let rows = vec![
        vec!["text".into(), f(text.precision), f(text.recall), f(text.f1())],
        vec![
            "lexical (faceted+ontology)".into(),
            f(lexical.precision),
            f(lexical.recall),
            f(lexical.f1()),
        ],
        vec!["specification".into(), f(spec.precision), f(spec.recall), f(spec.f1())],
    ];
    table(&["strategy", "precision", "recall", "F1"], &rows)
}

/// C10: erasure coding vs replication — overhead and availability.
pub fn c10_erasure() -> String {
    let mut rng = SimRng::new(101).fork("c10");
    let mut rows = Vec::new();
    let object: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
    for (m, n) in [(1usize, 3usize), (4, 6), (4, 8), (8, 12)] {
        let code = ErasureCode::new(m, n).expect("valid params");
        // Availability under independent node loss p=0.2 (Monte Carlo).
        let p = 0.2;
        let trials = 5_000;
        let mut survived = 0;
        for _ in 0..trials {
            let alive = (0..n).filter(|_| !rng.chance(p)).count();
            if alive >= m {
                survived += 1;
            }
        }
        // Encode/decode timing.
        let start = std::time::Instant::now();
        let shards = code.encode(&object);
        let enc_us = start.elapsed().as_micros();
        let kept: Vec<(usize, Vec<u8>)> = (n - m..n).map(|i| (i, shards[i].clone())).collect();
        let start = std::time::Instant::now();
        let restored = code.decode(&kept, object.len()).expect("decodes");
        let dec_us = start.elapsed().as_micros();
        assert_eq!(restored, object);
        rows.push(vec![
            format!("({m},{n})"),
            f(code.overhead()),
            (n - m).to_string(),
            f(survived as f64 / trials as f64 * 100.0),
            enc_us.to_string(),
            dec_us.to_string(),
        ]);
    }
    table(
        &[
            "(m,n)",
            "storage overhead",
            "tolerated losses",
            "availability % @ p=0.2",
            "encode us (64 KiB)",
            "decode us",
        ],
        &rows,
    )
}

/// S3: node-count scaling of the simulation event plane — wall-clock and
/// throughput for a full overlay build + settle at 64–1024 nodes (2048 with
/// `GLOSS_SCALE_MAX=2048`), at 1 and 4 worker threads. Identical message
/// counts across thread counts double as a determinism check.
pub fn s3_scaling() -> String {
    let smoke = std::env::var("GLOSS_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let mut sizes: Vec<usize> = if smoke { vec![64, 128] } else { vec![64, 256, 512, 1024] };
    if let Ok(v) = std::env::var("GLOSS_SCALE_MAX") {
        if let Ok(extra) = v.parse::<usize>() {
            if !smoke && extra > 1024 {
                sizes.push(extra);
            }
        }
    }
    let mut rows = Vec::new();
    for n in sizes {
        // Thread column: 1 is the sequential engine; 4 exercises the
        // scoped worker pool (identical message counts by construction —
        // the schedule is thread-count invariant).
        for &threads in THREAD_COLUMNS {
            let start = std::time::Instant::now();
            let mut net = OverlayNetwork::build(n, 42);
            net.world_mut().set_threads(threads);
            let horizon = SimDuration::from_millis(200) * n as u64 + SimDuration::from_secs(60);
            net.run_for(horizon);
            let wall = start.elapsed().as_secs_f64();
            let m = net.world().metrics();
            let delivered = m.counter("sim.messages_delivered");
            rows.push(vec![
                n.to_string(),
                net.world().region_count().to_string(),
                threads.to_string(),
                f(net.joined_fraction() * 100.0),
                f(horizon.as_secs_f64()),
                f(wall * 1e3),
                f(delivered),
                f(delivered / wall / 1e6),
            ]);
        }
    }
    table(
        &["nodes", "regions", "threads", "joined %", "sim s", "wall ms", "messages", "Mmsg/s wall"],
        &rows,
    )
}

/// C11: churn-heavy overlay — sustained crash/recover churn while routing
/// keeps running; measures routing health and failure detection under
/// membership change.
pub fn c11_churn_heavy() -> String {
    use gloss_sim::{ChurnKind, ChurnModel, SimTime};
    let mut rows = Vec::new();
    for (mtbf_s, mttr_s) in [(240u64, 30u64), (120, 20), (60, 15)] {
        let n = 48usize;
        let mut net = OverlayNetwork::build(n, 43);
        net.run_for(SimDuration::from_millis(200) * n as u64 + SimDuration::from_secs(60));
        // Churn every node but the bootstrap for five minutes.
        let horizon = SimDuration::from_secs(300);
        let nodes: Vec<NodeIndex> = (1..n as u32).map(NodeIndex).collect();
        let model = ChurnModel::new(SimDuration::from_secs(mtbf_s), SimDuration::from_secs(mttr_s));
        let mut rng = SimRng::new(43).fork("c11");
        let base = net.now();
        let events = model.generate(&nodes, SimTime::ZERO + horizon, &mut rng);
        let mut churn_count = 0usize;
        for e in &events {
            let at = base + e.at.since(SimTime::ZERO);
            match e.kind {
                ChurnKind::Crash | ChurnKind::GracefulLeave => {
                    net.world_mut().crash_at(at, e.node);
                    churn_count += 1;
                }
                ChurnKind::Recover => net.world_mut().recover_at(at, e.node),
            }
        }
        // Route batches every 30 s while the churn plays out.
        let mut ids = Vec::new();
        for round in 0..10 {
            for i in 0..8 {
                let mut from = net.random_node();
                while !net.world().is_alive(from) {
                    from = net.random_node();
                }
                let target = Key::hash_of(format!("churn-{round}-{i}").as_bytes());
                ids.push((net.route_from(from, target), target));
            }
            net.run_for(SimDuration::from_secs(30));
        }
        net.run_for(SimDuration::from_secs(60));
        let outcomes = net.outcomes();
        let delivered = ids.iter().filter(|(id, _)| outcomes.contains_key(id)).count();
        let correct = ids
            .iter()
            .filter(|(id, t)| {
                outcomes.get(id).is_some_and(|o| o.delivered_at == net.closest_alive(*t))
            })
            .count();
        let m = net.world().metrics();
        rows.push(vec![
            format!("{mtbf_s}/{mttr_s}"),
            churn_count.to_string(),
            format!("{delivered}/{}", ids.len()),
            f(correct as f64 / ids.len().max(1) as f64 * 100.0),
            f(m.counter("overlay.failures_detected")),
            f(m.counter("sim.recoveries")),
            f(net.joined_fraction() * 100.0),
        ]);
    }
    table(
        &[
            "mtbf/mttr s",
            "failures",
            "routes delivered",
            "at closest-alive %",
            "detections",
            "re-starts",
            "final joined %",
        ],
        &rows,
    )
}

/// C12: mobility-heavy event plane — clients roam between brokers under a
/// steady publish load; measures broker handoff under sustained membership
/// change (move-out proxying, buffered replay, duplicate/false-positive
/// rates).
pub fn c12_mobility_heavy() -> String {
    let mut rows = Vec::new();
    for move_every_s in [60u64, 20, 5] {
        let mut net = PubSubNetwork::build(PubSubConfig {
            architecture: Architecture::AcyclicPeer,
            brokers: 8,
            clients_per_broker: 3,
            seed: 23,
            ..PubSubConfig::default()
        });
        let clients = net.clients().to_vec();
        let brokers = net.brokers().to_vec();
        for &c in &clients {
            net.subscribe(c, Filter::for_kind("m"));
        }
        net.run_for(SimDuration::from_secs(5));
        let mut rng = SimRng::new(23).fork("c12");
        let total_secs = 240u64;
        let mut moves = 0u64;
        let mut t = 0u64;
        while t < total_secs {
            let step = move_every_s.min(total_secs - t);
            // Publish from two random clients each second of the step.
            for _ in 0..step {
                for _ in 0..2 {
                    let p = clients[rng.index(clients.len())];
                    net.publish(p, Event::new("m"));
                }
                net.run_for(SimDuration::from_secs(1));
            }
            t += step;
            if t < total_secs {
                let mover = clients[rng.index(clients.len())];
                let target = brokers[rng.index(brokers.len())];
                net.move_client(mover, target, SimDuration::from_secs(2));
                moves += 1;
            }
        }
        net.run_for(SimDuration::from_secs(30));
        let m = net.world().metrics();
        let lat = m.summary("pubsub.delivery_ms");
        rows.push(vec![
            move_every_s.to_string(),
            moves.to_string(),
            f(m.counter("pubsub.delivered")),
            f(m.counter("pubsub.handoff_events")),
            f(m.counter("pubsub.duplicates")),
            f(m.counter("pubsub.false_deliveries")),
            f(lat.p50),
            f(lat.p99),
        ]);
    }
    table(
        &[
            "move every s",
            "moves",
            "delivered",
            "handoff replays",
            "dups",
            "false",
            "p50 ms",
            "p99 ms",
        ],
        &rows,
    )
}

/// C13: adversarial subscription churn — matchlet rules are added and
/// removed at a high rate while the contextual facts churn underneath:
/// the worst case for the incremental matching core's add/remove
/// invalidation (kind-index rebuilds, alpha coverage, beta memo
/// lifecycle). Eight rules stay resident; every N events the oldest is
/// retired and a fresh one installed, and every 8 events one user's
/// facts are removed and re-seeded (flavour preserved, so the workload
/// is stationary). Reports wall-clock throughput and memo behaviour per
/// churn rate.
pub fn c13_subscription_churn() -> String {
    use gloss_sim::SimTime;
    let rule_src = churn_rule_src;
    let flavor = |i: usize| if i.is_multiple_of(20) { "ice cream" } else { "tea" };
    let mut rows = Vec::new();
    for rule_churn_every in [64usize, 16, 4] {
        let mut kb = InMemoryFacts::new();
        for i in 0..200 {
            kb.add(Fact::new(format!("user{i}"), "likes", Term::str(flavor(i))));
            kb.add(Fact::new(format!("user{i}"), "nationality", Term::str("scottish")));
        }
        let mut engine = MatchletEngine::new();
        let mut gen = 0usize;
        for _ in 0..8 {
            engine.add_rules(&rule_src(gen)).expect("churn rule compiles");
            gen += 1;
        }
        let events = 20_000usize;
        let ev = Event::new("tick").with_attr("seq", 1i64);
        let start = std::time::Instant::now();
        for t in 1..=events {
            if t % rule_churn_every == 0 {
                engine.remove_rule(&format!("churn{}", gen - 8));
                engine.add_rules(&rule_src(gen)).expect("churn rule compiles");
                gen += 1;
            }
            if t % 8 == 0 {
                let i = (t / 8) % 200;
                let u = format!("user{i}");
                kb.remove_subject(&u);
                kb.add(Fact::new(u.clone(), "likes", Term::str(flavor(i))));
                kb.add(Fact::new(u, "nationality", Term::str("scottish")));
            }
            engine.on_event(SimTime::from_micros(t as u64), &ev, &kb);
        }
        let wall = start.elapsed().as_secs_f64();
        let s = engine.stats;
        let hit_rate = s.memo_hits as f64 / (s.memo_hits + s.memo_misses).max(1) as f64 * 100.0;
        rows.push(vec![
            rule_churn_every.to_string(),
            (events / rule_churn_every).to_string(),
            f(wall * 1e3),
            f(events as f64 / wall / 1e3),
            f(hit_rate),
            s.events_out.to_string(),
        ]);
    }
    table(
        &["rule churn every", "rule churns", "wall ms", "k events/s", "memo hit %", "events out"],
        &rows,
    )
}

/// C14: regional partition and heal — a 25 s two-way partition isolates
/// half the overlay; ten minority-side nodes crash and restart
/// mid-partition, turning the heal into a reconnection stampede. The
/// governed overlay wins twice: joiners cut off from their bootstraps
/// retry on the admission plane's short jittered backoff (vs. the
/// legacy blind fixed interval), so re-joins complete quickly after the
/// heal; and unreachable peers sit behind open circuits instead of
/// being purged, so the pre-partition routing state survives the
/// outage. Reports per-casualty re-join completion time after the heal,
/// the time to full re-convergence (every node joined *and* a 16-route
/// probe batch all delivered at the globally closest node), and
/// eviction counts. Loss is zero and the partition is shorter than the
/// evict escalation, so any eviction is a false one — the governed row
/// must show zero.
pub fn c14_partition_heal() -> String {
    use gloss_overlay::GovernorConfig;
    let mut rows = Vec::new();
    for governed in [true, false] {
        let n = 48usize;
        let seed = 47u64;
        let mut net = OverlayNetwork::build_with(n, seed, governed.then(GovernorConfig::default));
        net.run_for(SimDuration::from_millis(200) * n as u64 + SimDuration::from_secs(60));
        let t0 = net.now() + SimDuration::from_secs(1);
        let heal = t0 + SimDuration::from_secs(25);
        net.world_mut().partition_regions_at(t0, Some(heal), &["us-east", "us-west", "australia"]);
        // Ten minority-side casualties: down 2 s into the cut, back 8 s
        // later. Their re-join attempts go unanswered while the cut holds
        // (bootstraps across the partition stay silent), so the heal
        // releases a reconnection stampede: governed joiners are already
        // retrying on the short jittered backoff cadence, ungoverned ones
        // sit out the blind fixed retry interval.
        let casualties: Vec<NodeIndex> =
            (1..n as u32).map(NodeIndex).filter(|x| x.0 % 6 >= 3).take(10).collect();
        for &c in &casualties {
            net.world_mut().crash_at(t0 + SimDuration::from_secs(2), c);
            net.world_mut().recover_at(t0 + SimDuration::from_secs(10), c);
        }
        net.run_for(heal.since(net.now()));
        // Post-heal: when does each casualty complete its re-join?
        let mut join_done: BTreeMap<u32, u64> = BTreeMap::new();
        let mut elapsed = 0u64;
        while elapsed < 60 && join_done.len() < casualties.len() {
            net.run_for(SimDuration::from_secs(1));
            elapsed += 1;
            for &c in &casualties {
                if net.world().node(c).overlay.is_joined() {
                    join_done.entry(c.0).or_insert(elapsed);
                }
            }
        }
        let joins: Vec<f64> =
            casualties.iter().map(|c| join_done.get(&c.0).copied().unwrap_or(60) as f64).collect();
        let mean_join = joins.iter().sum::<f64>() / joins.len() as f64;
        let max_join = joins.iter().cloned().fold(0.0f64, f64::max);
        // Then probe every 2 s until the overlay is whole again.
        let mut reconverged_s: Option<u64> = None;
        while elapsed < 120 {
            let mut batch = Vec::new();
            for i in 0..16 {
                let mut from = net.random_node();
                while !net.world().is_alive(from) {
                    from = net.random_node();
                }
                let target = Key::hash_of(format!("c14-{elapsed}-{i}").as_bytes());
                batch.push((net.route_from(from, target), target));
            }
            net.run_for(SimDuration::from_secs(2));
            elapsed += 2;
            let outcomes = net.outcomes();
            let whole = batch.iter().all(|(id, t)| {
                outcomes.get(id).is_some_and(|o| o.delivered_at == net.closest_alive(*t))
            });
            if whole && net.joined_fraction() >= 1.0 {
                reconverged_s = Some(elapsed);
                break;
            }
        }
        // Steady-state correctness well after the heal.
        let mut finals = Vec::new();
        for i in 0..32 {
            let mut from = net.random_node();
            while !net.world().is_alive(from) {
                from = net.random_node();
            }
            let target = Key::hash_of(format!("c14-final-{i}").as_bytes());
            finals.push((net.route_from(from, target), target));
        }
        net.run_for(SimDuration::from_secs(30));
        let outcomes = net.outcomes();
        let correct = finals
            .iter()
            .filter(|(id, t)| {
                outcomes.get(id).is_some_and(|o| o.delivered_at == net.closest_alive(*t))
            })
            .count();
        let m = net.world().metrics();
        rows.push(vec![
            if governed { "governor" } else { "three-strikes" }.to_string(),
            f(mean_join),
            f(max_join),
            reconverged_s.map_or(">120 (cap)".to_string(), |s| format!("{s}")),
            f(correct as f64 / finals.len() as f64 * 100.0),
            f(m.counter("overlay.evictions")),
            f(m.counter("overlay.failures_detected")),
            f(net.joined_fraction() * 100.0),
        ]);
    }
    table(
        &[
            "detector",
            "mean rejoin s",
            "max rejoin s",
            "re-converge s",
            "routes correct %",
            "evictions",
            "table purges",
            "joined %",
        ],
        &rows,
    )
}

/// C15: byzantine ack-then-drop peers — a subset of nodes keeps
/// answering probes (so naive liveness detection never fires) while
/// silently swallowing every routed payload handed to them. The
/// governor's conduct channel (unacked forwards) opens their circuits,
/// half-open trials fail, and they are evicted network-wide. Reports how
/// many byzantine peers got evicted, the mean time to first eviction,
/// honest-node false evictions (must be zero), and the delivery rate for
/// routes whose true destination is honest once the quarantine settles.
pub fn c15_byzantine() -> String {
    use gloss_sim::ByzBehavior;
    let mut rows = Vec::new();
    for byz_count in [2usize, 4, 6] {
        let n = 48usize;
        let mut net = OverlayNetwork::build(n, 31);
        net.world_mut().enable_tracing(262_144);
        net.run_for(SimDuration::from_millis(200) * n as u64 + SimDuration::from_secs(60));
        let byz: Vec<NodeIndex> = (0..byz_count).map(|i| NodeIndex((5 + 7 * i) as u32)).collect();
        for &b in &byz {
            net.set_byzantine(b, ByzBehavior::AckThenDrop);
        }
        let start = net.now();
        // Sustained routing with payload traffic terminating all over the
        // ring: targets are low-bit perturbations of every node's own key
        // (FNV keys cluster in a narrow band of the 128-bit space, so
        // uniformly random targets would concentrate on a handful of
        // nodes and most peers — byzantine ones included — would never
        // see a payload).
        let mut phase_ids = Vec::new();
        for round in 0..36u128 {
            for j in 0..n as u32 {
                let mut from = net.random_node();
                while !net.world().is_alive(from) || byz.contains(&from) {
                    from = net.random_node();
                }
                let target = Key(net.id_of(NodeIndex(j)).key.0 ^ (round * 48 + j as u128 + 1));
                if !byz.contains(&net.closest_alive(target)) {
                    phase_ids.push((net.route_from(from, target), target));
                } else {
                    net.route_from(from, target);
                }
            }
            net.run_for(SimDuration::from_secs(5));
        }
        let outcomes = net.outcomes();
        let phase_ok = phase_ids
            .iter()
            .filter(|(id, t)| {
                outcomes.get(id).is_some_and(|o| o.delivered_at == net.closest_alive(*t))
            })
            .count();
        let phase_pct = phase_ok as f64 / phase_ids.len().max(1) as f64 * 100.0;
        // First eviction time per peer, from the trace.
        let mut first_evict: BTreeMap<u32, f64> = BTreeMap::new();
        for ev in net.world().tracer().events() {
            if ev.kind == "overlay.evict" {
                if let Ok(peer) = ev.detail.parse::<u32>() {
                    first_evict.entry(peer).or_insert(ev.at.since(start).as_secs_f64());
                }
            }
        }
        let evicted: Vec<f64> = byz.iter().filter_map(|b| first_evict.get(&b.0)).copied().collect();
        let honest_evicted = first_evict.keys().filter(|k| !byz.iter().any(|b| b.0 == **k)).count();
        let mean_tte = if evicted.is_empty() {
            f64::NAN
        } else {
            evicted.iter().sum::<f64>() / evicted.len() as f64
        };
        // Honest delivery once the quarantine settles: routes whose true
        // closest node is honest must still arrive there.
        let mut finals = Vec::new();
        let mut salt = 1000u128;
        while finals.len() < 100 {
            let j = (salt % n as u128) as u32;
            let target = Key(net.id_of(NodeIndex(j)).key.0 ^ salt);
            salt += 1;
            if byz.contains(&net.closest_alive(target)) {
                continue;
            }
            let mut from = net.random_node();
            while !net.world().is_alive(from) || byz.contains(&from) {
                from = net.random_node();
            }
            finals.push((net.route_from(from, target), target));
        }
        net.run_for(SimDuration::from_secs(30));
        let outcomes = net.outcomes();
        let delivered = finals
            .iter()
            .filter(|(id, t)| {
                outcomes.get(id).is_some_and(|o| o.delivered_at == net.closest_alive(*t))
            })
            .count();
        rows.push(vec![
            byz_count.to_string(),
            format!("{}/{byz_count}", evicted.len()),
            if mean_tte.is_nan() { "-".to_string() } else { f(mean_tte) },
            honest_evicted.to_string(),
            f(phase_pct),
            f(delivered as f64 / finals.len() as f64 * 100.0),
            f(net.world().metrics().counter("overlay.byz_dropped")),
        ]);
    }
    table(
        &[
            "byz nodes",
            "byz evicted",
            "mean evict s",
            "honest evicted",
            "honest del (phase) %",
            "honest del (settled) %",
            "payloads dropped",
        ],
        &rows,
    )
}

/// C16: broker overload — a sustained publication burst runs well above
/// the brokers' service rate, with a thin stream of high-priority events
/// mixed in. Unbounded brokers accept everything (unbounded queueing in a
/// real deployment); load-shedding brokers shed low-priority
/// publications at the watermark, keep admitting the high-priority
/// stream, and reject new subscriptions while overloaded.
pub fn c16_overload() -> String {
    use gloss_event::ShedConfig;
    let mut rows = Vec::new();
    for bounded in [false, true] {
        let shed = bounded.then(|| ShedConfig {
            capacity: 64.0,
            high_watermark: 32.0,
            drain_per_sec: 40.0,
            priority_floor: 4.0,
            fair_window: SimDuration::from_secs(1),
            fair_share: 64,
        });
        let mut net = PubSubNetwork::build(PubSubConfig {
            architecture: Architecture::AcyclicPeer,
            brokers: 4,
            clients_per_broker: 4,
            seed: 29,
            shedding: shed,
            ..PubSubConfig::default()
        });
        let clients = net.clients().to_vec();
        for &c in &clients {
            net.subscribe(c, Filter::for_kind("lo"));
            net.subscribe(c, Filter::for_kind("hi"));
        }
        net.run_for(SimDuration::from_secs(5));
        let mut rng = SimRng::new(29).fork("c16");
        let (mut sent_lo, mut sent_hi) = (0u64, 0u64);
        for s in 0..60u64 {
            // 40 low-priority + 2 high-priority publications per second,
            // against a 40 msg/s drain rate: persistently overloaded.
            for _ in 0..40 {
                let p = clients[rng.index(clients.len())];
                net.publish(p, Event::new("lo").with_attr("prio", 1i64));
                sent_lo += 1;
            }
            for _ in 0..2 {
                let p = clients[rng.index(clients.len())];
                net.publish(p, Event::new("hi").with_attr("prio", 9i64));
                sent_hi += 1;
            }
            if s == 30 {
                // A subscription arriving mid-overload: bounded brokers
                // refuse it rather than grow matching state.
                net.subscribe(clients[0], Filter::for_kind("late"));
            }
            net.run_for(SimDuration::from_secs(1));
        }
        net.run_for(SimDuration::from_secs(30));
        let (mut got_lo, mut got_hi) = (0u64, 0u64);
        for &c in &clients {
            got_lo += net.client(c).received_of_kind("lo").count() as u64;
            got_hi += net.client(c).received_of_kind("hi").count() as u64;
        }
        let m = net.world().metrics();
        // A publisher is not notified of its own event, so each event has
        // `clients - 1` expected deliveries.
        let expect_lo = sent_lo * (clients.len() as u64 - 1);
        let expect_hi = sent_hi * (clients.len() as u64 - 1);
        rows.push(vec![
            if bounded { "shedding" } else { "unbounded" }.to_string(),
            f(got_hi as f64 / expect_hi.max(1) as f64 * 100.0),
            f(got_lo as f64 / expect_lo.max(1) as f64 * 100.0),
            f(m.counter("pubsub.shed")),
            f(m.counter("pubsub.subs_rejected")),
            if bounded { f(m.summary("pubsub.queue_delay_us").p99 / 1e3) } else { "-".to_string() },
            net.max_broker_load().to_string(),
        ]);
    }
    table(
        &[
            "broker",
            "high-prio delivered %",
            "low-prio delivered %",
            "shed",
            "subs rejected",
            "queue p99 ms",
            "max broker msgs",
        ],
        &rows,
    )
}

/// C17: flash crowd — every client holds the same hot-topic subscription
/// (covering collapses them to one forwarded filter per link) plus an
/// overlapping personal range filter (SIENA merging collapses those into
/// broader covers). A synchronized burst on the hot topic then hits the
/// collapsed tables. Reports delivery completeness, latency percentiles
/// and how much forwarding state covering/merging actually saved.
pub fn c17_flash_crowd() -> String {
    let mut rows = Vec::new();
    for (brokers, per_broker) in [(4usize, 8usize), (8, 16), (8, 48)] {
        let mut net = PubSubNetwork::build(PubSubConfig {
            architecture: Architecture::AcyclicPeer,
            brokers,
            clients_per_broker: per_broker,
            seed: 53,
            ..PubSubConfig::default()
        });
        let clients = net.clients().to_vec();
        for (i, &c) in clients.iter().enumerate() {
            // The hot topic everyone watches.
            net.subscribe(c, Filter::for_kind("goal"));
            // A personal context filter overlapping its neighbours':
            // same kind and a shared range shape, distinct user.
            net.subscribe(
                c,
                Filter::for_kind("ctx")
                    .with_constraint("temp", gloss_event::Op::Gt, (i % 4) as i64)
                    .with_eq("user", format!("u{i}")),
            );
        }
        net.run_for(SimDuration::from_secs(5));
        let mut rng = SimRng::new(53).fork("c17");
        // The flash crowd: one burst of hot events, all in the same
        // instant, from publishers scattered across the graph.
        let burst = 50usize;
        for _ in 0..burst {
            let p = clients[rng.index(clients.len())];
            net.publish(p, Event::new("goal").with_attr("minute", 90i64));
        }
        // Background personal traffic riding the same burst window.
        let mut personal_expect = 0u64;
        for _ in 0..clients.len() * 4 {
            let u = rng.index(clients.len());
            let p = clients[rng.index(clients.len())];
            if p != clients[u] {
                personal_expect += 1;
            }
            net.publish(
                p,
                Event::new("ctx").with_attr("user", format!("u{u}")).with_attr("temp", 10i64),
            );
        }
        net.run_for(SimDuration::from_secs(30));
        let hot_got: u64 =
            clients.iter().map(|&c| net.client(c).received_of_kind("goal").count() as u64).sum();
        let personal_got: u64 =
            clients.iter().map(|&c| net.client(c).received_of_kind("ctx").count() as u64).sum();
        // A publisher is not notified of its own event.
        let hot_expect = burst as u64 * (clients.len() as u64 - 1);
        let m = net.world().metrics();
        let lat = m.summary("pubsub.delivery_ms");
        rows.push(vec![
            clients.len().to_string(),
            f(hot_got as f64 / hot_expect as f64 * 100.0),
            f(personal_got as f64 / personal_expect.max(1) as f64 * 100.0),
            f(lat.p50),
            f(lat.p99),
            f(m.counter("pubsub.subs_pruned")),
            f(m.counter("pubsub.subs_merged")),
        ]);
    }
    table(
        &[
            "clients",
            "hot delivered %",
            "personal delivered %",
            "delivery p50 ms",
            "p99 ms",
            "subs pruned",
            "subs merged",
        ],
        &rows,
    )
}

/// S6: subscriber scaling — the cost of one publish on a broker holding
/// 1 k to 1 M subscriptions. The counting index resolves a publish with
/// one probe per event attribute, so the cost is near-flat in table
/// size; the pre-PR8 linear broker ([`LinearBroker`], kept as the
/// baseline) pays a full table scan. `GLOSS_BENCH_SMOKE=1` trims the
/// sizes for CI.
pub fn s6_subscriber_scaling() -> String {
    use gloss_event::{Broker, BrokerMsg, BrokerTopology, LinearBroker, Subscription};
    use gloss_sim::{Outbox, SimTime};
    let smoke = std::env::var("GLOSS_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let sizes: &[usize] = if smoke { &[1_000, 10_000] } else { &[1_000, 100_000, 1_000_000] };
    let filter_for = |i: usize| Filter::for_kind("ctx").with_eq("user", format!("u{i}"));
    let percentiles = |lat: &mut Vec<f64>| {
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        (lat[lat.len() / 2], lat[lat.len() * 99 / 100])
    };
    // The linear baseline stops at 100 k: its own subscribe dup-check is
    // an O(N) table scan, so merely *building* its 1 M table is
    // quadratic (hours). The 100 k row already pins the linear slope.
    let linear_max = 100_000usize;
    let mut rows = Vec::new();
    let mut base_p50: Option<f64> = None;
    for &n in sizes {
        let topology = BrokerTopology::Peer { neighbors: vec![] };
        let mut broker = Broker::new(NodeIndex(0), topology.clone());
        let mut out = Outbox::new();
        let t0 = std::time::Instant::now();
        for i in 0..n {
            let client = NodeIndex(10 + i as u32);
            let s = Subscription { id: i as u64 + 1, filter: filter_for(i) };
            broker.handle(SimTime::ZERO, client, BrokerMsg::Attach, &mut out);
            broker.handle(SimTime::ZERO, client, BrokerMsg::Subscribe(s), &mut out);
        }
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mut rng = SimRng::new(86).fork("s6");
        let publisher = NodeIndex(5);
        let probes = 256usize;
        let mut lat = Vec::with_capacity(probes);
        for _ in 0..probes {
            let e = Event::new("ctx").with_attr("user", format!("u{}", rng.index(n)));
            let mut out = Outbox::new();
            let t = std::time::Instant::now();
            broker.handle(SimTime::ZERO, publisher, BrokerMsg::Publish(e), &mut out);
            lat.push(t.elapsed().as_nanos() as f64 / 1e3);
        }
        let (p50, p99) = percentiles(&mut lat);
        let lin_p50 = (n <= linear_max).then(|| {
            let mut linear = LinearBroker::new(NodeIndex(0), topology);
            for i in 0..n {
                let client = NodeIndex(10 + i as u32);
                let s = Subscription { id: i as u64 + 1, filter: filter_for(i) };
                linear.handle(SimTime::ZERO, client, BrokerMsg::Attach, &mut out);
                linear.handle(SimTime::ZERO, client, BrokerMsg::Subscribe(s), &mut out);
            }
            let lin_probes = 64usize;
            let mut lin_lat = Vec::with_capacity(lin_probes);
            for _ in 0..lin_probes {
                let e = Event::new("ctx").with_attr("user", format!("u{}", rng.index(n)));
                let mut out = Outbox::new();
                let t = std::time::Instant::now();
                linear.handle(SimTime::ZERO, publisher, BrokerMsg::Publish(e), &mut out);
                lin_lat.push(t.elapsed().as_nanos() as f64 / 1e3);
            }
            percentiles(&mut lin_lat).0
        });
        let base = *base_p50.get_or_insert(p50);
        rows.push(vec![
            n.to_string(),
            f(build_ms),
            f(p50),
            f(p99),
            lin_p50.map_or_else(|| "-".to_string(), f),
            lin_p50.map_or_else(|| "-".to_string(), |l| f(l / p50.max(1e-9))),
            f(p50 / base.max(1e-9)),
        ]);
    }
    table(
        &[
            "subs",
            "build ms",
            "indexed publish p50 us",
            "p99 us",
            "linear p50 us",
            "speedup",
            "p50 vs 1k",
        ],
        &rows,
    )
}

/// C19: crash-driven repair storm. A correlated regional crash kills at
/// least a quarter of the store nodes; the repair pipeline must return
/// every surviving document to its tier's redundancy target with zero
/// data loss, while its token bucket keeps foreground lookups usable
/// mid-storm. Rows sweep the repair rate budget: a bigger budget
/// shortens time-to-redundancy, the cap bounds what the storm does to
/// concurrent reads. `GLOSS_BENCH_SMOKE=1` trims the sweep for CI.
pub fn c19_repair_storm() -> String {
    let smoke = std::env::var("GLOSS_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let nodes = if smoke { 32usize } else { 48 };
    // The low end is deliberately throttled into deferral (burst rides
    // the rate): the table shows pacing trading time-to-redundancy for a
    // bounded repair-traffic rate, not three unthrottled reruns.
    let rates: &[f64] = if smoke { &[8.0] } else { &[0.1, 1.0, 8.0] };
    let fill = |seed: u64, len: usize| -> Vec<u8> {
        let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s & 0xff) as u8
            })
            .collect()
    };
    let mut rows = Vec::new();
    for &rate in rates {
        let cfg = StoreConfig {
            replicas: 3,
            tier_high_extra: 1,
            heal_interval: SimDuration::from_secs(10),
            repair_interval: Some(SimDuration::from_secs(10)),
            repair_rate_per_sec: rate,
            repair_burst: (rate * 2.0).max(1.0),
            ..Default::default()
        };
        let mut net = StoreNetwork::build(nodes, cfg, 1907);
        net.settle();
        let docs: Vec<Document> = (0..12u64)
            .map(|i| {
                Document::new(format!("c19-doc-{i}"), fill(500 + i, 400)).with_priority(
                    match i % 3 {
                        0 => Priority::High,
                        1 => Priority::Normal,
                        _ => Priority::Low,
                    },
                )
            })
            .collect();
        for (i, d) in docs.iter().enumerate() {
            net.insert(NodeIndex((i % nodes) as u32), d.clone());
        }
        let (m, n) = (3usize, 6usize);
        let obj = fill(4242, 1500);
        let shard_guids = net.insert_erasure(NodeIndex(0), "c19-obj", &obj, m, n).unwrap();
        net.run_for(SimDuration::from_secs(60));

        // The correlated crash: whole regions until >= 1/4 of nodes die.
        let mut killed = 0usize;
        for region in ["us-east", "australia", "europe", "us-west"] {
            if killed * 4 >= nodes {
                break;
            }
            killed += net.crash_region(region);
        }
        assert!(killed * 4 >= nodes, "crash script killed only {killed}/{nodes}");
        let alive: Vec<NodeIndex> =
            (0..nodes as u32).map(NodeIndex).filter(|&i| net.world().is_alive(i)).collect();
        let targets: Vec<usize> = docs
            .iter()
            .map(|d| net.world().node(alive[0]).store.target_replicas(d.priority))
            .collect();

        // Poll in 10 s steps, riding foreground lookups on the storm.
        let mut rng = SimRng::new(1907).fork("c19-fg");
        let mut fg_reqs = Vec::new();
        let mut ttr = None;
        let mut elapsed = 0u64;
        while elapsed < 600 {
            for _ in 0..4 {
                let reader = alive[rng.index(alive.len())];
                let target = &docs[rng.index(docs.len())];
                fg_reqs.push(net.lookup_retrying(reader, target.guid));
            }
            net.run_for(SimDuration::from_secs(10));
            elapsed += 10;
            let recovered = docs.iter().zip(&targets).all(|(d, t)| net.replica_count(d.guid) >= *t)
                && net.shards_alive("c19-obj", n) == n;
            if recovered {
                ttr = Some(elapsed);
                break;
            }
        }
        let ttr = ttr.expect("repair never restored redundancy within 600 s");
        // Let stragglers conclude, then split outcomes.
        net.run_for(SimDuration::from_secs(30));
        let mut lat_ms: Vec<f64> = Vec::new();
        let mut fg_timeouts = 0u64;
        for id in &fg_reqs {
            match net.result(*id) {
                Some(r) if r.doc.is_some() => {
                    lat_ms.push(r.latency.as_secs_f64() * 1e3);
                }
                _ => fg_timeouts += 1,
            }
        }
        lat_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pct = |v: &[f64], p: usize| {
            if v.is_empty() {
                0.0
            } else {
                v[(v.len() * p / 100).min(v.len() - 1)]
            }
        };

        // Zero data loss: every document's bytes and the reconstructed
        // erasure object must match what was inserted.
        let reader = alive[0];
        let doc_reqs: Vec<u64> = docs.iter().map(|d| net.lookup_retrying(reader, d.guid)).collect();
        let shard_reqs = net.lookup_erasure(reader, &shard_guids);
        net.run_for(SimDuration::from_secs(30));
        let mut lost = 0usize;
        for (d, req) in docs.iter().zip(&doc_reqs) {
            let ok = net
                .result(*req)
                .and_then(|r| r.doc.as_ref())
                .is_some_and(|got| got.content == d.content);
            if !ok {
                lost += 1;
            }
        }
        if net.reconstruct(&shard_reqs, m, n, obj.len()).map(|b| b == obj) != Ok(true) {
            lost += 1;
        }
        rows.push(vec![
            f(rate),
            killed.to_string(),
            ttr.to_string(),
            f(net.counter("store.repair_puts")),
            f(net.counter("store.repair_bytes") / 1024.0),
            f(net.counter("store.repair_deferred")),
            fg_reqs.len().to_string(),
            f(pct(&lat_ms, 50)),
            f(pct(&lat_ms, 99)),
            fg_timeouts.to_string(),
            lost.to_string(),
        ]);
    }
    table(
        &[
            "repair rate/s",
            "killed",
            "time-to-redundancy s",
            "repair puts",
            "repair KiB",
            "deferred",
            "fg lookups",
            "fg p50 ms",
            "fg p99 ms",
            "fg timeouts",
            "objects lost",
        ],
        &rows,
    )
}

/// The generated C13 churn rule for generation `g` (kept lint-clean:
/// wildcards where nothing reads the binding).
fn churn_rule_src(g: usize) -> String {
    format!(
        "rule churn{g} {{ on t: event tick(seq: _) where fact(?u, likes, \"ice cream\") and fact(?u, nationality, _) within 1 m emit hit{g}(user: ?u) }}"
    )
}

/// Runs one experiment by id, returning its rendered output.
pub fn run_experiment(id: &str) -> Option<(String, String)> {
    let (title, body) = match id {
        "e1" => ("E1 (Figure 1): global matching service distillation", e1_matching_service()),
        "e2" => ("E2 (Figure 2): distributed XML pipelines", e2_pipelines()),
        "e3" => ("E3 (Figure 3): bundle deployment infrastructure", e3_deployment()),
        "c1" => ("C1: event routing — centralized vs hierarchical vs peer", c1_event_routing()),
        "c2" => ("C2: Plaxton routing vs non-deterministic baseline", c2_overlay_routing()),
        "c3" => ("C3: promiscuous caching and self-healing", c3_caching()),
        "c4" => ("C4: evolution engine repair under churn", c4_evolution()),
        "c5" => ("C5: data placement policies", c5_placement()),
        "c6" => ("C6: type projection vs generation vs tree walking", c6_projection()),
        "c7" => ("C7: ice-cream correlation within its window", c7_scenario()),
        "c8" => ("C8: discovery matchlets for unknown kinds", c8_discovery()),
        "c9" => ("C9: description matching strategies", c9_description_match()),
        "c10" => ("C10: erasure coding vs replication", c10_erasure()),
        "c11" => ("C11: overlay routing under churn-heavy membership", c11_churn_heavy()),
        "c12" => ("C12: broker handoff under mobility-heavy clients", c12_mobility_heavy()),
        "c13" => ("C13: adversarial subscription churn (rules + facts)", c13_subscription_churn()),
        "c14" => {
            ("C14: regional partition + heal — governor vs three-strikes", c14_partition_heal())
        }
        "c15" => ("C15: byzantine ack-then-drop peers — conduct-channel eviction", c15_byzantine()),
        "c16" => ("C16: broker overload — load shedding vs unbounded ingress", c16_overload()),
        "c17" => (
            "C17: flash crowd — synchronized burst over covering-collapsed tables",
            c17_flash_crowd(),
        ),
        "c19" => (
            "C19: repair storm — regional crash, rate-limited re-replication, zero loss",
            c19_repair_storm(),
        ),
        "s3" => ("S3: event-plane scaling, 64-1024 nodes at 1 and 4 threads", s3_scaling()),
        "s6" => (
            "S6: subscriber scaling — publish cost from 1k to 1M subscriptions",
            s6_subscriber_scaling(),
        ),
        _ => return None,
    };
    Some((title.to_string(), body))
}

/// All experiment ids in order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "e1", "e2", "e3", "c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8", "c9", "c10", "c11", "c12",
    "c13", "c14", "c15", "c16", "c17", "c19", "s3", "s6",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_rules_are_lint_clean() {
        // Every matchlet a report-binary workload deploys must survive
        // the same analysis gate the thin servers now enforce.
        for (name, src) in [
            ("smog", include_str!("matchlets/smog.matchlet").to_string()),
            ("churn", churn_rule_src(0)),
            ("ice-cream", gloss_core::scenario::ICE_CREAM_RULES.to_string()),
        ] {
            let report = gloss_analysis::analyze_source(&src)
                .unwrap_or_else(|e| panic!("{name} fails to parse: {e}"));
            assert!(report.is_clean(), "{name} has findings:\n{report}");
        }
    }
}
