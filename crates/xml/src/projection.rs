//! Type projection: binding program-side record types to XML data.
//!
//! The paper (§3) adopts *type projection* — "the type is taken from the
//! program context and matched against the data" — because it "handles
//! partial data model specifications ... structured 'islands' whose
//! structure is known a priori" inside documents whose overall structure is
//! not tightly specified. A [`ProjSpec`] names exactly the fields a
//! matchlet needs; everything else in the document is ignored, so new event
//! producers can extend formats without breaking deployed consumers.
//!
//! # Example
//!
//! ```
//! use gloss_xml::{parse, project, FieldType, ProjSpec};
//!
//! let spec = ProjSpec::new("location")
//!     .field("user", "user/@id", FieldType::Str)
//!     .field("lat", "pos/@lat", FieldType::Float)
//!     .optional_field("floor", "pos/@floor", FieldType::Int);
//!
//! // The document carries extra structure the spec knows nothing about.
//! let doc = parse(r#"<event><user id="bob"/><extra><x/></extra><pos lat="56.3" lon="-2.8"/></event>"#)?;
//! let rec = project(&doc, &spec)?;
//! assert_eq!(rec.str("user"), Some("bob"));
//! assert_eq!(rec.float("lat"), Some(56.3));
//! assert_eq!(rec.int("floor"), None); // optional, absent
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::document::Element;
use crate::path::{Path, PathError};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A value produced by projection.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A boolean (`true`/`false`/`1`/`0` in the data).
    Bool(bool),
    /// A nested record.
    Record(Record),
    /// A homogeneous list.
    List(Vec<Value>),
}

impl Value {
    /// The string inside, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float inside; integers widen.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The boolean inside, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The record inside, if this is a `Record`.
    pub fn as_record(&self) -> Option<&Record> {
        match self {
            Value::Record(r) => Some(r),
            _ => None,
        }
    }

    /// The list inside, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Record(r) => write!(f, "{r}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// The result of projecting a spec onto a document: named fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    fields: BTreeMap<String, Value>,
}

impl Record {
    /// Creates an empty record.
    pub fn new() -> Self {
        Record::default()
    }

    /// Inserts a field.
    pub fn insert(&mut self, name: impl Into<String>, value: Value) {
        self.fields.insert(name.into(), value);
    }

    /// The raw value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.get(name)
    }

    /// String field accessor.
    pub fn str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// Integer field accessor.
    pub fn int(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(Value::as_int)
    }

    /// Float field accessor (integers widen).
    pub fn float(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(Value::as_float)
    }

    /// Boolean field accessor.
    pub fn bool(&self, name: &str) -> Option<bool> {
        self.get(name).and_then(Value::as_bool)
    }

    /// Nested record accessor.
    pub fn record(&self, name: &str) -> Option<&Record> {
        self.get(name).and_then(Value::as_record)
    }

    /// List accessor.
    pub fn list(&self, name: &str) -> Option<&[Value]> {
        self.get(name).and_then(Value::as_list)
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterates over fields in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

/// The expected type of a projected field.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldType {
    /// Bind the matched text as a string.
    Str,
    /// Parse the matched text as an integer.
    Int,
    /// Parse the matched text as a float.
    Float,
    /// Parse the matched text as a boolean.
    Bool,
    /// Project a nested spec onto the first matched element.
    Record(ProjSpec),
    /// Collect *all* matches, each projected with the inner type.
    List(Box<FieldType>),
}

impl FieldType {
    fn type_name(&self) -> &'static str {
        match self {
            FieldType::Str => "str",
            FieldType::Int => "int",
            FieldType::Float => "float",
            FieldType::Bool => "bool",
            FieldType::Record(_) => "record",
            FieldType::List(_) => "list",
        }
    }
}

/// One field of a [`ProjSpec`]: a name, a path into the data, a type, and
/// whether the field must be present.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldSpec {
    /// The field name in the resulting [`Record`].
    pub name: String,
    /// Where in the document the value lives.
    pub path: Path,
    /// The expected type.
    pub ty: FieldType,
    /// Whether projection fails if the path matches nothing.
    pub required: bool,
}

/// A projection specification: the program-side record type, expressed as
/// named, typed paths into the data.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjSpec {
    name: String,
    fields: Vec<FieldSpec>,
}

/// A projection failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjError {
    /// A required field's path matched nothing.
    Missing {
        /// The spec name.
        spec: String,
        /// The field name.
        field: String,
    },
    /// A matched value could not be coerced to the declared type.
    TypeMismatch {
        /// The spec name.
        spec: String,
        /// The field name.
        field: String,
        /// The declared type.
        expected: &'static str,
        /// The text that failed to parse.
        text: String,
    },
    /// A path expression inside a spec failed to compile (only reachable
    /// when specs are deserialised from XML).
    BadPath(PathError),
}

impl fmt::Display for ProjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjError::Missing { spec, field } => {
                write!(f, "projection `{spec}`: required field `{field}` not found")
            }
            ProjError::TypeMismatch { spec, field, expected, text } => {
                write!(f, "projection `{spec}`: field `{field}` expected {expected}, got `{text}`")
            }
            ProjError::BadPath(e) => write!(f, "projection spec: {e}"),
        }
    }
}

impl Error for ProjError {}

impl From<PathError> for ProjError {
    fn from(e: PathError) -> Self {
        ProjError::BadPath(e)
    }
}

impl ProjSpec {
    /// Creates an empty spec with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProjSpec { name: name.into(), fields: Vec::new() }
    }

    /// The spec name (used in error messages).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fields of the spec.
    pub fn fields(&self) -> &[FieldSpec] {
        &self.fields
    }

    /// Adds a required field.
    ///
    /// # Panics
    ///
    /// Panics if `path` does not parse; specs are typically written as
    /// literals, so this is a programming error. Use
    /// [`try_field`](Self::try_field) for dynamic paths.
    pub fn field(self, name: &str, path: &str, ty: FieldType) -> Self {
        self.try_field(name, path, ty, true).expect("invalid path literal in spec")
    }

    /// Adds an optional field (absent fields are simply omitted).
    ///
    /// # Panics
    ///
    /// Panics if `path` does not parse (see [`field`](Self::field)).
    pub fn optional_field(self, name: &str, path: &str, ty: FieldType) -> Self {
        self.try_field(name, path, ty, false).expect("invalid path literal in spec")
    }

    /// Adds a field with a dynamically supplied path.
    ///
    /// # Errors
    ///
    /// Returns [`ProjError::BadPath`] if the path fails to compile.
    pub fn try_field(
        mut self,
        name: &str,
        path: &str,
        ty: FieldType,
        required: bool,
    ) -> Result<Self, ProjError> {
        let path = Path::parse(path)?;
        self.fields.push(FieldSpec { name: name.to_string(), path, ty, required });
        Ok(self)
    }

    /// Projects this spec onto `doc`. See [`project`].
    ///
    /// # Errors
    ///
    /// Returns [`ProjError`] when a required field is absent or a value
    /// cannot be coerced.
    pub fn project(&self, doc: &Element) -> Result<Record, ProjError> {
        let mut rec = Record::new();
        for field in &self.fields {
            match self.project_field(field, doc)? {
                Some(v) => rec.insert(field.name.clone(), v),
                None => {
                    if field.required {
                        return Err(ProjError::Missing {
                            spec: self.name.clone(),
                            field: field.name.clone(),
                        });
                    }
                }
            }
        }
        Ok(rec)
    }

    fn project_field(&self, field: &FieldSpec, doc: &Element) -> Result<Option<Value>, ProjError> {
        match &field.ty {
            FieldType::List(inner) => {
                let values = match inner.as_ref() {
                    FieldType::Record(spec) => field
                        .path
                        .select(doc)
                        .into_iter()
                        .map(|el| spec.project(el).map(Value::Record))
                        .collect::<Result<Vec<_>, _>>()?,
                    scalar => field
                        .path
                        .select_text(doc)
                        .into_iter()
                        .map(|t| self.coerce(&field.name, scalar, &t))
                        .collect::<Result<Vec<_>, _>>()?,
                };
                // A list with zero matches is a present-but-empty value;
                // `required` does not force at least one element.
                Ok(Some(Value::List(values)))
            }
            FieldType::Record(spec) => match field.path.select_first(doc) {
                Some(el) => Ok(Some(Value::Record(spec.project(el)?))),
                None => Ok(None),
            },
            scalar => match field.path.select_text_first(doc) {
                Some(text) => Ok(Some(self.coerce(&field.name, scalar, &text)?)),
                None => Ok(None),
            },
        }
    }

    fn coerce(&self, field: &str, ty: &FieldType, text: &str) -> Result<Value, ProjError> {
        let mismatch = || ProjError::TypeMismatch {
            spec: self.name.clone(),
            field: field.to_string(),
            expected: ty.type_name(),
            text: text.to_string(),
        };
        match ty {
            FieldType::Str => Ok(Value::Str(text.to_string())),
            FieldType::Int => text.trim().parse::<i64>().map(Value::Int).map_err(|_| mismatch()),
            FieldType::Float => {
                text.trim().parse::<f64>().map(Value::Float).map_err(|_| mismatch())
            }
            FieldType::Bool => match text.trim() {
                "true" | "1" => Ok(Value::Bool(true)),
                "false" | "0" => Ok(Value::Bool(false)),
                _ => Err(mismatch()),
            },
            FieldType::Record(_) | FieldType::List(_) => {
                unreachable!("containers handled in project_field")
            }
        }
    }

    /// Serialises the spec to XML, so projection types can travel inside
    /// code bundles (§4.3).
    pub fn to_xml(&self) -> Element {
        let mut el = Element::new("projection").with_attr("name", &self.name);
        for f in &self.fields {
            el.push(Self::field_to_xml(f));
        }
        el
    }

    fn field_to_xml(f: &FieldSpec) -> Element {
        let mut el = Element::new("field")
            .with_attr("name", &f.name)
            .with_attr("path", f.path.to_string())
            .with_attr("required", if f.required { "true" } else { "false" });
        el.push(Self::type_to_xml(&f.ty));
        el
    }

    fn type_to_xml(ty: &FieldType) -> Element {
        match ty {
            FieldType::Str => Element::new("str"),
            FieldType::Int => Element::new("int"),
            FieldType::Float => Element::new("float"),
            FieldType::Bool => Element::new("bool"),
            FieldType::Record(spec) => {
                let mut el = Element::new("record").with_attr("name", spec.name());
                for f in &spec.fields {
                    el.push(Self::field_to_xml(f));
                }
                el
            }
            FieldType::List(inner) => {
                let mut el = Element::new("list");
                el.push(Self::type_to_xml(inner));
                el
            }
        }
    }

    /// Deserialises a spec previously produced by [`to_xml`](Self::to_xml).
    ///
    /// # Errors
    ///
    /// Returns [`ProjError::BadPath`] for malformed paths; malformed
    /// structure yields a `Missing` error naming the offending piece.
    pub fn from_xml(el: &Element) -> Result<ProjSpec, ProjError> {
        let name = el.attr("name").unwrap_or("anonymous").to_string();
        let mut spec = ProjSpec::new(name);
        for f in el.children_named("field") {
            let fname = f.attr("name").ok_or_else(|| ProjError::Missing {
                spec: spec.name.clone(),
                field: "field/@name".into(),
            })?;
            let fpath = f.attr("path").ok_or_else(|| ProjError::Missing {
                spec: spec.name.clone(),
                field: format!("{fname}/@path"),
            })?;
            let required = f.attr("required") != Some("false");
            let ty =
                f.children().next().map(Self::type_from_xml).transpose()?.unwrap_or(FieldType::Str);
            spec = spec.try_field(fname, fpath, ty, required)?;
        }
        Ok(spec)
    }

    fn type_from_xml(el: &Element) -> Result<FieldType, ProjError> {
        Ok(match el.name() {
            "int" => FieldType::Int,
            "float" => FieldType::Float,
            "bool" => FieldType::Bool,
            "record" => FieldType::Record(ProjSpec::from_xml(el)?),
            "list" => {
                let inner = el
                    .children()
                    .next()
                    .map(Self::type_from_xml)
                    .transpose()?
                    .unwrap_or(FieldType::Str);
                FieldType::List(Box::new(inner))
            }
            _ => FieldType::Str,
        })
    }
}

/// Projects `spec` onto `doc`, producing a [`Record`].
///
/// Free-function form of [`ProjSpec::project`]; see the
/// [module docs](self) for an example.
///
/// # Errors
///
/// Returns [`ProjError`] when a required field is absent or a value cannot
/// be coerced to its declared type.
pub fn project(doc: &Element, spec: &ProjSpec) -> Result<Record, ProjError> {
    spec.project(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn location_doc() -> Element {
        parse(
            r#"<event kind="location" seq="9">
                 <user id="bob"/>
                 <pos lat="56.34" lon="-2.80" indoor="false"/>
                 <unmodelled><junk deep="yes"/></unmodelled>
                 <tags><tag>a</tag><tag>b</tag></tags>
               </event>"#,
        )
        .unwrap()
    }

    fn location_spec() -> ProjSpec {
        ProjSpec::new("location")
            .field("user", "user/@id", FieldType::Str)
            .field("lat", "pos/@lat", FieldType::Float)
            .field("lon", "pos/@lon", FieldType::Float)
            .field("indoor", "pos/@indoor", FieldType::Bool)
            .field("seq", "@seq", FieldType::Int)
            .optional_field("floor", "pos/@floor", FieldType::Int)
            .field("tags", "tags/tag/text()", FieldType::List(Box::new(FieldType::Str)))
    }

    #[test]
    fn full_projection() {
        let rec = project(&location_doc(), &location_spec()).unwrap();
        assert_eq!(rec.str("user"), Some("bob"));
        assert!((rec.float("lat").unwrap() - 56.34).abs() < 1e-9);
        assert_eq!(rec.bool("indoor"), Some(false));
        assert_eq!(rec.int("seq"), Some(9));
        assert_eq!(rec.int("floor"), None);
        let tags: Vec<&str> = rec.list("tags").unwrap().iter().filter_map(Value::as_str).collect();
        assert_eq!(tags, vec!["a", "b"]);
    }

    #[test]
    fn ignores_unmodelled_islands() {
        // The spec knows nothing about <unmodelled>; projection succeeds.
        let rec = project(&location_doc(), &location_spec()).unwrap();
        assert!(rec.get("unmodelled").is_none());
    }

    #[test]
    fn missing_required_field_fails() {
        let spec = ProjSpec::new("s").field("x", "absent/@x", FieldType::Str);
        let err = project(&location_doc(), &spec).unwrap_err();
        assert!(matches!(err, ProjError::Missing { ref field, .. } if field == "x"));
    }

    #[test]
    fn type_mismatch_reports_text() {
        let spec = ProjSpec::new("s").field("n", "user/@id", FieldType::Int);
        let err = project(&location_doc(), &spec).unwrap_err();
        match err {
            ProjError::TypeMismatch { expected, text, .. } => {
                assert_eq!(expected, "int");
                assert_eq!(text, "bob");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bool_coercions() {
        let doc = parse(r#"<a t="1" f="0" y="true" n="false" bad="yep"/>"#).unwrap();
        let spec = ProjSpec::new("b")
            .field("t", "@t", FieldType::Bool)
            .field("f", "@f", FieldType::Bool)
            .field("y", "@y", FieldType::Bool)
            .field("n", "@n", FieldType::Bool);
        let rec = project(&doc, &spec).unwrap();
        assert_eq!(rec.bool("t"), Some(true));
        assert_eq!(rec.bool("f"), Some(false));
        assert_eq!(rec.bool("y"), Some(true));
        assert_eq!(rec.bool("n"), Some(false));
        let bad = ProjSpec::new("b").field("x", "@bad", FieldType::Bool);
        assert!(project(&doc, &bad).is_err());
    }

    #[test]
    fn nested_record_projection() {
        let spec = ProjSpec::new("outer").field(
            "pos",
            "pos",
            FieldType::Record(ProjSpec::new("pos").field("lat", "@lat", FieldType::Float).field(
                "lon",
                "@lon",
                FieldType::Float,
            )),
        );
        let rec = project(&location_doc(), &spec).unwrap();
        let pos = rec.record("pos").unwrap();
        assert!((pos.float("lon").unwrap() + 2.80).abs() < 1e-9);
    }

    #[test]
    fn list_of_records() {
        let doc = parse(r#"<m><r s="gps" v="1"/><r s="temp" v="2"/></m>"#).unwrap();
        let spec = ProjSpec::new("m").field(
            "rs",
            "r",
            FieldType::List(Box::new(FieldType::Record(
                ProjSpec::new("r").field("s", "@s", FieldType::Str).field(
                    "v",
                    "@v",
                    FieldType::Int,
                ),
            ))),
        );
        let rec = project(&doc, &spec).unwrap();
        let rs = rec.list("rs").unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[1].as_record().unwrap().int("v"), Some(2));
    }

    #[test]
    fn empty_list_is_ok_even_when_required() {
        let spec =
            ProjSpec::new("s").field("xs", "nothing/x", FieldType::List(Box::new(FieldType::Int)));
        let rec = project(&location_doc(), &spec).unwrap();
        assert_eq!(rec.list("xs").unwrap().len(), 0);
    }

    #[test]
    fn spec_xml_round_trip() {
        let spec = location_spec();
        let xml = spec.to_xml();
        let back = ProjSpec::from_xml(&xml).unwrap();
        assert_eq!(back, spec);
        // And the round-tripped spec still projects.
        let rec = project(&location_doc(), &back).unwrap();
        assert_eq!(rec.str("user"), Some("bob"));
    }

    #[test]
    fn spec_xml_round_trip_nested() {
        let spec = ProjSpec::new("outer").field(
            "items",
            "items/item",
            FieldType::List(Box::new(FieldType::Record(ProjSpec::new("item").field(
                "id",
                "@id",
                FieldType::Int,
            )))),
        );
        let back = ProjSpec::from_xml(&spec.to_xml()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn from_xml_rejects_nameless_field() {
        let el = parse(r#"<projection name="p"><field path="a"/></projection>"#).unwrap();
        assert!(ProjSpec::from_xml(&el).is_err());
    }

    #[test]
    fn record_display() {
        let rec = project(&location_doc(), &location_spec()).unwrap();
        let s = rec.to_string();
        assert!(s.contains("user: bob"), "{s}");
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(4).as_float(), Some(4.0));
        assert_eq!(Value::Str("x".into()).as_int(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::List(vec![]).as_list().unwrap().is_empty());
    }
}
