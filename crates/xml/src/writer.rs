//! Serialisation of the document model back to XML text.

use crate::document::{Element, Node};
use std::fmt::Write;

/// Escapes text content (`&`, `<`, `>`).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes an attribute value (`&`, `<`, `>`, `"`).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Serialises an element compactly (no added whitespace); the output parses
/// back to an equal tree.
pub fn to_xml(el: &Element) -> String {
    let mut out = String::new();
    write_compact(el, &mut out);
    out
}

fn write_compact(el: &Element, out: &mut String) {
    out.push('<');
    out.push_str(el.name());
    for (k, v) in el.attrs() {
        let _ = write!(out, " {k}=\"{}\"", escape_attr(v));
    }
    if el.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for node in el.nodes() {
        match node {
            Node::Text(t) => out.push_str(&escape_text(t)),
            Node::Element(c) => write_compact(c, out),
        }
    }
    out.push_str("</");
    out.push_str(el.name());
    out.push('>');
}

/// Serialises with two-space indentation for human reading.
///
/// Elements whose children are exclusively text stay on one line; mixed
/// content is emitted compactly to avoid changing its meaning.
pub fn to_pretty_xml(el: &Element) -> String {
    let mut out = String::new();
    write_pretty(el, 0, &mut out);
    out.push('\n');
    out
}

fn has_element_children(el: &Element) -> bool {
    el.children().next().is_some()
}

fn has_text_children(el: &Element) -> bool {
    el.nodes().iter().any(|n| matches!(n, Node::Text(t) if !t.trim().is_empty()))
}

fn write_pretty(el: &Element, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    out.push_str(&indent);
    if has_element_children(el) && has_text_children(el) {
        // Mixed content: whitespace is significant, emit compactly.
        write_compact(el, out);
        return;
    }
    out.push('<');
    out.push_str(el.name());
    for (k, v) in el.attrs() {
        let _ = write!(out, " {k}=\"{}\"", escape_attr(v));
    }
    if el.is_empty() {
        out.push_str("/>");
    } else if !has_element_children(el) {
        out.push('>');
        out.push_str(&escape_text(&el.text()));
        out.push_str("</");
        out.push_str(el.name());
        out.push('>');
    } else {
        out.push_str(">\n");
        for child in el.children() {
            write_pretty(child, depth + 1, out);
            out.push('\n');
        }
        out.push_str(&indent);
        out.push_str("</");
        out.push_str(el.name());
        out.push('>');
    }
}

impl Element {
    /// Compact XML serialisation. Round-trips through [`crate::parse`].
    pub fn to_xml(&self) -> String {
        to_xml(self)
    }

    /// Indented XML serialisation for logs and documentation.
    pub fn to_pretty_xml(&self) -> String {
        to_pretty_xml(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn compact_round_trip() {
        let src = r#"<a x="1"><b>hi &amp; bye</b><c/></a>"#;
        let e = parse(src).unwrap();
        assert_eq!(parse(&e.to_xml()).unwrap(), e);
    }

    #[test]
    fn escaping_in_text_and_attrs() {
        let e = Element::new("a").with_attr("v", "a\"<>&b").with_text("<&>");
        let s = e.to_xml();
        assert_eq!(s, r#"<a v="a&quot;&lt;&gt;&amp;b">&lt;&amp;&gt;</a>"#);
        assert_eq!(parse(&s).unwrap(), e);
    }

    #[test]
    fn empty_element_self_closes() {
        assert_eq!(Element::new("e").to_xml(), "<e/>");
    }

    #[test]
    fn pretty_indents_nested_elements() {
        let e = Element::new("a")
            .with_child(Element::new("b").with_text("x"))
            .with_child(Element::new("c"));
        let s = e.to_pretty_xml();
        assert!(s.contains("\n  <b>x</b>\n"), "{s}");
        assert!(s.contains("\n  <c/>\n"), "{s}");
    }

    #[test]
    fn pretty_preserves_mixed_content_semantics() {
        let e = parse("<a>pre<b/>post</a>").unwrap();
        let pretty = e.to_pretty_xml();
        assert_eq!(parse(pretty.trim()).unwrap(), e);
    }

    #[test]
    fn pretty_round_trips_ignoring_layout() {
        let e = Element::new("root").with_child(
            Element::new("user")
                .with_attr("id", "bob")
                .with_child(Element::new("likes").with_text("ice cream")),
        );
        let reparsed = parse(e.to_pretty_xml().trim()).unwrap();
        // Text content of leaves survives; structural whitespace differs.
        assert_eq!(reparsed.child("user").unwrap().child("likes").unwrap().text(), "ice cream");
    }
}
