//! Type generation baseline: inferring a rigid schema from sample
//! documents and binding against it.
//!
//! The paper (§3) contrasts two strategies for binding programs to XML:
//! *type generation* ("a programming language type is obtained by analysis
//! of either the data itself or a metadata description of it", as in JAXB
//! or Castor) versus *type projection*. Generation produces a **complete**
//! binding — fast to use, but brittle: documents that deviate from the
//! inferred shape are rejected outright, so evolving formats break deployed
//! consumers. Experiment **C6** measures both sides of that trade-off
//! against [`crate::projection`].

use crate::document::Element;
use crate::projection::{Record, Value};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// How often a child or attribute appears across the sample set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Multiplicity {
    /// Exactly once in every sample.
    One,
    /// At most once.
    Optional,
    /// Any number of times.
    Many,
}

/// The scalar type inferred for an attribute or text content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarKind {
    /// All observed values parsed as integers.
    Int,
    /// All observed values parsed as floats.
    Float,
    /// All observed values were `true`/`false`/`1`/`0`.
    Bool,
    /// Anything else.
    Str,
}

impl ScalarKind {
    fn of(text: &str) -> ScalarKind {
        let t = text.trim();
        if t.parse::<i64>().is_ok() {
            ScalarKind::Int
        } else if t.parse::<f64>().is_ok() {
            ScalarKind::Float
        } else if matches!(t, "true" | "false") {
            ScalarKind::Bool
        } else {
            ScalarKind::Str
        }
    }

    /// The least upper bound of two inferred kinds.
    fn unify(self, other: ScalarKind) -> ScalarKind {
        use ScalarKind::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Int, Float) | (Float, Int) => Float,
            _ => Str,
        }
    }

    fn coerce(self, text: &str) -> Option<Value> {
        let t = text.trim();
        match self {
            ScalarKind::Int => t.parse().ok().map(Value::Int),
            ScalarKind::Float => t.parse().ok().map(Value::Float),
            ScalarKind::Bool => match t {
                "true" | "1" => Some(Value::Bool(true)),
                "false" | "0" => Some(Value::Bool(false)),
                _ => None,
            },
            ScalarKind::Str => Some(Value::Str(text.to_string())),
        }
    }
}

/// A schema inferred from sample documents (the "generated type").
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    name: String,
    attrs: BTreeMap<String, (ScalarKind, Multiplicity)>,
    children: BTreeMap<String, (Schema, Multiplicity)>,
    text: Option<ScalarKind>,
}

/// A schema inference or binding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// `infer` was called with no samples.
    NoSamples,
    /// Samples had differing root element names.
    RootMismatch {
        /// The first root name seen.
        expected: String,
        /// The conflicting root name.
        got: String,
    },
    /// A document carried an attribute the schema does not know.
    UnknownAttr {
        /// Element name.
        element: String,
        /// Attribute name.
        attr: String,
    },
    /// A document carried a child element the schema does not know.
    UnknownChild {
        /// Element name.
        element: String,
        /// Child name.
        child: String,
    },
    /// A required attribute or child was missing, or multiplicity was
    /// violated.
    Cardinality {
        /// Element name.
        element: String,
        /// The offending member.
        member: String,
        /// Description of the violation.
        detail: String,
    },
    /// A value did not parse as the inferred scalar kind.
    BadScalar {
        /// Element name.
        element: String,
        /// The member (attribute name or `#text`).
        member: String,
        /// The offending text.
        text: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::NoSamples => write!(f, "schema inference needs at least one sample"),
            SchemaError::RootMismatch { expected, got } => {
                write!(f, "sample root `{got}` differs from `{expected}`")
            }
            SchemaError::UnknownAttr { element, attr } => {
                write!(f, "element `{element}`: unknown attribute `{attr}`")
            }
            SchemaError::UnknownChild { element, child } => {
                write!(f, "element `{element}`: unknown child `{child}`")
            }
            SchemaError::Cardinality { element, member, detail } => {
                write!(f, "element `{element}`, member `{member}`: {detail}")
            }
            SchemaError::BadScalar { element, member, text } => {
                write!(f, "element `{element}`, member `{member}`: bad value `{text}`")
            }
        }
    }
}

impl Error for SchemaError {}

impl Schema {
    /// Infers a schema from one or more sample documents.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::NoSamples`] on an empty sample set and
    /// [`SchemaError::RootMismatch`] when samples disagree on the root name.
    pub fn infer(samples: &[&Element]) -> Result<Schema, SchemaError> {
        let first = samples.first().ok_or(SchemaError::NoSamples)?;
        for s in samples {
            if s.name() != first.name() {
                return Err(SchemaError::RootMismatch {
                    expected: first.name().to_string(),
                    got: s.name().to_string(),
                });
            }
        }
        Ok(Self::infer_unchecked(first.name(), samples))
    }

    fn infer_unchecked(name: &str, samples: &[&Element]) -> Schema {
        let mut attrs: BTreeMap<String, (ScalarKind, usize)> = BTreeMap::new();
        let mut child_groups: BTreeMap<String, (Vec<&Element>, usize, bool)> = BTreeMap::new();
        let mut text_kind: Option<ScalarKind> = None;

        for sample in samples {
            for (k, v) in sample.attrs() {
                let kind = ScalarKind::of(v);
                attrs
                    .entry(k.to_string())
                    .and_modify(|(sk, n)| {
                        *sk = sk.unify(kind);
                        *n += 1;
                    })
                    .or_insert((kind, 1));
            }
            let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
            for c in sample.children() {
                *counts.entry(c.name()).or_insert(0) += 1;
                let entry = child_groups
                    .entry(c.name().to_string())
                    .or_insert_with(|| (Vec::new(), 0, false));
                entry.0.push(c);
            }
            for (cname, n) in counts {
                let entry = child_groups.get_mut(cname).expect("inserted above");
                entry.1 += 1; // number of samples containing this child
                if n > 1 {
                    entry.2 = true; // repeats within one sample
                }
            }
            let t = sample.text();
            if !t.trim().is_empty() {
                let kind = ScalarKind::of(&t);
                text_kind = Some(match text_kind {
                    Some(k) => k.unify(kind),
                    None => kind,
                });
            }
        }

        let total = samples.len();
        let attrs = attrs
            .into_iter()
            .map(|(k, (kind, n))| {
                let m = if n == total { Multiplicity::One } else { Multiplicity::Optional };
                (k, (kind, m))
            })
            .collect();
        let children = child_groups
            .into_iter()
            .map(|(cname, (elems, present_in, repeats))| {
                let m = if repeats {
                    Multiplicity::Many
                } else if present_in == total {
                    Multiplicity::One
                } else {
                    Multiplicity::Optional
                };
                let sub = Self::infer_unchecked(&cname, &elems);
                (cname, (sub, m))
            })
            .collect();
        Schema { name: name.to_string(), attrs, children, text: text_kind }
    }

    /// The root element name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of members (attributes + child kinds) at the top level.
    pub fn member_count(&self) -> usize {
        self.attrs.len() + self.children.len()
    }

    /// Validates a document strictly against the schema.
    ///
    /// Unknown attributes or children are errors — this is the brittleness
    /// of generation-based binding that the paper contrasts with
    /// projection.
    ///
    /// # Errors
    ///
    /// Returns the first [`SchemaError`] found.
    pub fn validate(&self, doc: &Element) -> Result<(), SchemaError> {
        if doc.name() != self.name {
            return Err(SchemaError::RootMismatch {
                expected: self.name.clone(),
                got: doc.name().to_string(),
            });
        }
        for (k, v) in doc.attrs() {
            match self.attrs.get(k) {
                None => {
                    return Err(SchemaError::UnknownAttr {
                        element: self.name.clone(),
                        attr: k.to_string(),
                    })
                }
                Some((kind, _)) => {
                    if kind.coerce(v).is_none() {
                        return Err(SchemaError::BadScalar {
                            element: self.name.clone(),
                            member: k.to_string(),
                            text: v.to_string(),
                        });
                    }
                }
            }
        }
        for (k, (_, m)) in &self.attrs {
            if *m == Multiplicity::One && doc.attr(k).is_none() {
                return Err(SchemaError::Cardinality {
                    element: self.name.clone(),
                    member: k.clone(),
                    detail: "required attribute missing".into(),
                });
            }
        }
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for c in doc.children() {
            *counts.entry(c.name()).or_insert(0) += 1;
            match self.children.get(c.name()) {
                None => {
                    return Err(SchemaError::UnknownChild {
                        element: self.name.clone(),
                        child: c.name().to_string(),
                    })
                }
                Some((sub, _)) => sub.validate(c)?,
            }
        }
        for (k, (_, m)) in &self.children {
            let n = counts.get(k.as_str()).copied().unwrap_or(0);
            let bad = match m {
                Multiplicity::One => n != 1,
                Multiplicity::Optional => n > 1,
                Multiplicity::Many => false,
            };
            if bad {
                return Err(SchemaError::Cardinality {
                    element: self.name.clone(),
                    member: k.clone(),
                    detail: format!("expected {m:?}, found {n}"),
                });
            }
        }
        Ok(())
    }

    /// Binds a document to a fully materialised [`Record`] — the
    /// generated-type access path. Validates implicitly.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError`] when the document deviates from the schema.
    pub fn bind(&self, doc: &Element) -> Result<Record, SchemaError> {
        self.validate(doc)?;
        Ok(self.bind_unchecked(doc))
    }

    fn bind_unchecked(&self, doc: &Element) -> Record {
        let mut rec = Record::new();
        for (k, (kind, _)) in &self.attrs {
            if let Some(v) = doc.attr(k) {
                if let Some(val) = kind.coerce(v) {
                    rec.insert(k.clone(), val);
                }
            }
        }
        for (k, (sub, m)) in &self.children {
            match m {
                Multiplicity::Many => {
                    let items: Vec<Value> = doc
                        .children_named(k)
                        .map(|c| Value::Record(sub.bind_unchecked(c)))
                        .collect();
                    rec.insert(k.clone(), Value::List(items));
                }
                _ => {
                    if let Some(c) = doc.child(k) {
                        rec.insert(k.clone(), Value::Record(sub.bind_unchecked(c)));
                    }
                }
            }
        }
        if let Some(kind) = self.text {
            let t = doc.text();
            if !t.trim().is_empty() {
                if let Some(v) = kind.coerce(&t) {
                    rec.insert("#text".to_string(), v);
                }
            }
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn samples() -> Vec<Element> {
        vec![
            parse(r#"<ev seq="1"><u id="a"/><r v="1.5"/><r v="2"/></ev>"#).unwrap(),
            parse(r#"<ev seq="2" opt="x"><u id="b"/><r v="3"/></ev>"#).unwrap(),
        ]
    }

    #[test]
    fn infer_multiplicities_and_kinds() {
        let docs = samples();
        let refs: Vec<&Element> = docs.iter().collect();
        let schema = Schema::infer(&refs).unwrap();
        assert_eq!(schema.name(), "ev");
        assert_eq!(schema.attrs["seq"], (ScalarKind::Int, Multiplicity::One));
        assert_eq!(schema.attrs["opt"].1, Multiplicity::Optional);
        assert_eq!(schema.children["u"].1, Multiplicity::One);
        assert_eq!(schema.children["r"].1, Multiplicity::Many);
        // 1.5 and 2 and 3 unify to Float.
        assert_eq!(schema.children["r"].0.attrs["v"].0, ScalarKind::Float);
    }

    #[test]
    fn validate_accepts_conforming_documents() {
        let docs = samples();
        let refs: Vec<&Element> = docs.iter().collect();
        let schema = Schema::infer(&refs).unwrap();
        let ok = parse(r#"<ev seq="7"><u id="z"/><r v="9.9"/></ev>"#).unwrap();
        assert!(schema.validate(&ok).is_ok());
    }

    #[test]
    fn validate_rejects_unknown_members() {
        let docs = samples();
        let refs: Vec<&Element> = docs.iter().collect();
        let schema = Schema::infer(&refs).unwrap();
        let extra_attr = parse(r#"<ev seq="7" new="1"><u id="z"/></ev>"#).unwrap();
        assert!(matches!(schema.validate(&extra_attr), Err(SchemaError::UnknownAttr { .. })));
        let extra_child = parse(r#"<ev seq="7"><u id="z"/><brand_new/></ev>"#).unwrap();
        assert!(matches!(schema.validate(&extra_child), Err(SchemaError::UnknownChild { .. })));
    }

    #[test]
    fn validate_enforces_cardinality() {
        let docs = samples();
        let refs: Vec<&Element> = docs.iter().collect();
        let schema = Schema::infer(&refs).unwrap();
        let missing_u = parse(r#"<ev seq="7"/>"#).unwrap();
        assert!(matches!(schema.validate(&missing_u), Err(SchemaError::Cardinality { .. })));
        let two_u = parse(r#"<ev seq="7"><u id="a"/><u id="b"/></ev>"#).unwrap();
        assert!(matches!(schema.validate(&two_u), Err(SchemaError::Cardinality { .. })));
    }

    #[test]
    fn validate_checks_scalar_kinds() {
        let docs = samples();
        let refs: Vec<&Element> = docs.iter().collect();
        let schema = Schema::infer(&refs).unwrap();
        let bad = parse(r#"<ev seq="not-a-number"><u id="z"/></ev>"#).unwrap();
        assert!(matches!(schema.validate(&bad), Err(SchemaError::BadScalar { .. })));
    }

    #[test]
    fn bind_materialises_everything() {
        let docs = samples();
        let refs: Vec<&Element> = docs.iter().collect();
        let schema = Schema::infer(&refs).unwrap();
        let rec = schema.bind(&docs[0]).unwrap();
        assert_eq!(rec.int("seq"), Some(1));
        assert_eq!(rec.record("u").unwrap().str("id"), Some("a"));
        assert_eq!(rec.list("r").unwrap().len(), 2);
    }

    #[test]
    fn bind_rejects_evolved_format_where_projection_would_not() {
        // The core of C6: a producer adds a field; generated bindings break.
        let docs = samples();
        let refs: Vec<&Element> = docs.iter().collect();
        let schema = Schema::infer(&refs).unwrap();
        let evolved = parse(r#"<ev seq="7"><u id="z"/><r v="1"/><weather t="20"/></ev>"#).unwrap();
        assert!(schema.bind(&evolved).is_err());
        // Projection of the known island still works.
        let spec = crate::projection::ProjSpec::new("p").field(
            "id",
            "u/@id",
            crate::projection::FieldType::Str,
        );
        assert!(crate::projection::project(&evolved, &spec).is_ok());
    }

    #[test]
    fn text_content_inference() {
        let a = parse("<n>42</n>").unwrap();
        let b = parse("<n>17</n>").unwrap();
        let schema = Schema::infer(&[&a, &b]).unwrap();
        let rec = schema.bind(&a).unwrap();
        assert_eq!(rec.int("#text"), Some(42));
    }

    #[test]
    fn infer_errors() {
        assert_eq!(Schema::infer(&[]), Err(SchemaError::NoSamples));
        let a = parse("<a/>").unwrap();
        let b = parse("<b/>").unwrap();
        assert!(matches!(Schema::infer(&[&a, &b]), Err(SchemaError::RootMismatch { .. })));
    }

    #[test]
    fn scalar_unification() {
        assert_eq!(ScalarKind::Int.unify(ScalarKind::Int), ScalarKind::Int);
        assert_eq!(ScalarKind::Int.unify(ScalarKind::Float), ScalarKind::Float);
        assert_eq!(ScalarKind::Bool.unify(ScalarKind::Int), ScalarKind::Str);
        assert_eq!(ScalarKind::of("3"), ScalarKind::Int);
        assert_eq!(ScalarKind::of("3.5"), ScalarKind::Float);
        assert_eq!(ScalarKind::of("true"), ScalarKind::Bool);
        assert_eq!(ScalarKind::of("bob"), ScalarKind::Str);
    }
}
