//! XPath-lite: compact path expressions for selecting inside documents.
//!
//! Supported grammar (a pragmatic subset sufficient for event routing and
//! projection):
//!
//! ```text
//! path     := step ('/' step)* ('/' terminal)? | terminal
//! step     := '/'? name-or-* predicate*          (leading '//' = descendant)
//! pred     := '[@attr]' | '[@attr="v"]' | '[child="v"]' | '[n]'
//! terminal := '@attr' | 'text()'
//! ```
//!
//! Examples: `user/@id`, `pos/@lat`, `//sensor[@kind="gps"]/reading`,
//! `items/item[2]/name/text()`.

use crate::document::Element;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// A parse failure for a path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathError {
    /// Byte offset of the problem in the source expression.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path error at byte {}: {}", self.at, self.message)
    }
}

impl Error for PathError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Axis {
    Child,
    Descendant,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum NameTest {
    Any,
    Named(String),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Pred {
    AttrExists(String),
    AttrEquals(String, String),
    ChildTextEquals(String, String),
    Position(usize),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Step {
    axis: Axis,
    test: NameTest,
    preds: Vec<Pred>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Terminal {
    Attr(String),
    Text,
}

/// A compiled path expression.
///
/// # Example
///
/// ```
/// use gloss_xml::{parse, Path};
/// let doc = parse(r#"<m><u id="a"/><u id="b"/></m>"#)?;
/// let ids = Path::parse("u/@id")?.select_text(&doc);
/// assert_eq!(ids, vec!["a", "b"]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    steps: Vec<Step>,
    terminal: Option<Terminal>,
    source: String,
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

impl FromStr for Path {
    type Err = PathError;
    fn from_str(s: &str) -> Result<Path, PathError> {
        Path::parse(s)
    }
}

impl Path {
    /// Compiles a path expression.
    ///
    /// # Errors
    ///
    /// Returns [`PathError`] on syntax errors.
    pub fn parse(expr: &str) -> Result<Path, PathError> {
        let mut p = PathParser { bytes: expr.as_bytes(), pos: 0 };
        let mut steps = Vec::new();
        let mut terminal = None;

        if p.at_end() {
            return Err(p.fail("empty path"));
        }
        loop {
            let axis = if p.eat("//") {
                Axis::Descendant
            } else {
                // A single leading '/' is allowed and means child (the
                // context element's children), same as no slash.
                p.eat("/");
                Axis::Child
            };
            if p.at_end() {
                return Err(p.fail("expected step"));
            }
            if p.peek() == Some(b'@') {
                p.bump();
                let name = p.name()?;
                terminal = Some(Terminal::Attr(name));
                break;
            }
            if p.eat("text()") {
                terminal = Some(Terminal::Text);
                break;
            }
            let test = if p.eat("*") { NameTest::Any } else { NameTest::Named(p.name()?) };
            let mut preds = Vec::new();
            while p.peek() == Some(b'[') {
                preds.push(p.predicate()?);
            }
            steps.push(Step { axis, test, preds });
            if p.at_end() {
                break;
            }
            if p.peek() != Some(b'/') {
                return Err(p.fail("expected `/` between steps"));
            }
        }
        if !p.at_end() {
            return Err(p.fail("trailing characters in path"));
        }
        if steps.is_empty() && terminal.is_none() {
            return Err(p.fail("path selects nothing"));
        }
        Ok(Path { steps, terminal, source: expr.to_string() })
    }

    /// Selects matching elements relative to `context` (its children for
    /// the first step; `//` searches the whole subtree).
    ///
    /// If the path ends in a terminal (`@attr` / `text()`), the elements
    /// *owning* the terminal are returned.
    pub fn select<'a>(&self, context: &'a Element) -> Vec<&'a Element> {
        let mut current: Vec<&'a Element> = vec![context];
        for step in &self.steps {
            let mut next = Vec::new();
            for ctx in current {
                // Candidates matching the name test, in document order.
                let mut candidates: Vec<&'a Element> = match step.axis {
                    Axis::Child => {
                        ctx.children().filter(|c| Self::test_matches(&step.test, c)).collect()
                    }
                    Axis::Descendant => DescendantsOrdered::new(ctx)
                        .filter(|d| Self::test_matches(&step.test, d))
                        .collect(),
                };
                // Predicates apply left to right, each filtering the list
                // and re-deriving positions — XPath's semantics.
                for pred in &step.preds {
                    candidates = candidates
                        .into_iter()
                        .enumerate()
                        .filter(|(i, el)| Self::pred_matches(pred, el, i + 1))
                        .map(|(_, el)| el)
                        .collect();
                }
                next.extend(candidates);
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        current
    }

    /// Selects the first matching element, if any.
    pub fn select_first<'a>(&self, context: &'a Element) -> Option<&'a Element> {
        self.select(context).into_iter().next()
    }

    /// Evaluates the path to strings: attribute values for `@attr`
    /// terminals, text content for `text()` or element results.
    pub fn select_text(&self, context: &Element) -> Vec<String> {
        let owners = self.select(context);
        match &self.terminal {
            Some(Terminal::Attr(name)) => {
                owners.iter().filter_map(|e| e.attr(name)).map(str::to_string).collect()
            }
            Some(Terminal::Text) | None => owners.iter().map(|e| e.text()).collect(),
        }
    }

    /// The first string result, if any.
    pub fn select_text_first(&self, context: &Element) -> Option<String> {
        self.select_text(context).into_iter().next()
    }

    fn test_matches(test: &NameTest, el: &Element) -> bool {
        match test {
            NameTest::Any => true,
            NameTest::Named(n) => el.name() == n,
        }
    }

    fn pred_matches(pred: &Pred, el: &Element, position: usize) -> bool {
        match pred {
            Pred::AttrExists(a) => el.attr(a).is_some(),
            Pred::AttrEquals(a, v) => el.attr(a) == Some(v.as_str()),
            Pred::ChildTextEquals(c, v) => el.children_named(c).any(|ch| ch.text() == *v),
            Pred::Position(n) => position == *n,
        }
    }
}

/// Document-order depth-first traversal (unlike `Element::descendants`,
/// which is unordered for speed).
struct DescendantsOrdered<'a> {
    stack: Vec<&'a Element>,
}

impl<'a> DescendantsOrdered<'a> {
    fn new(root: &'a Element) -> Self {
        let mut stack: Vec<&'a Element> = root.children().collect();
        stack.reverse();
        DescendantsOrdered { stack }
    }
}

impl<'a> Iterator for DescendantsOrdered<'a> {
    type Item = &'a Element;
    fn next(&mut self) -> Option<&'a Element> {
        let next = self.stack.pop()?;
        let children: Vec<&'a Element> = next.children().collect();
        for c in children.into_iter().rev() {
            self.stack.push(c);
        }
        Some(next)
    }
}

struct PathParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PathParser<'a> {
    fn fail(&self, message: impl Into<String>) -> PathError {
        PathError { at: self.pos, message: message.into() }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn name(&mut self) -> Result<String, PathError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':'))
        {
            self.bump();
        }
        if self.pos == start {
            return Err(self.fail("expected name"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii").to_string())
    }

    fn quoted(&mut self) -> Result<String, PathError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.fail("expected quoted value")),
        };
        self.bump();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.fail("invalid utf-8 in predicate value"))?
                    .to_string();
                self.bump();
                return Ok(s);
            }
            self.bump();
        }
        Err(self.fail("unterminated quoted value"))
    }

    fn predicate(&mut self) -> Result<Pred, PathError> {
        self.bump(); // '['
        let pred = match self.peek() {
            Some(b'@') => {
                self.bump();
                let name = self.name()?;
                if self.eat("=") {
                    Pred::AttrEquals(name, self.quoted()?)
                } else {
                    Pred::AttrExists(name)
                }
            }
            Some(b) if b.is_ascii_digit() => {
                let start = self.pos;
                while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                    self.bump();
                }
                let n: usize = std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("digits")
                    .parse()
                    .map_err(|_| self.fail("bad position index"))?;
                if n == 0 {
                    return Err(self.fail("position index is 1-based"));
                }
                Pred::Position(n)
            }
            _ => {
                let name = self.name()?;
                if !self.eat("=") {
                    return Err(self.fail("expected `=` in child-text predicate"));
                }
                Pred::ChildTextEquals(name, self.quoted()?)
            }
        };
        if !self.eat("]") {
            return Err(self.fail("expected `]`"));
        }
        Ok(pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn doc() -> Element {
        parse(
            r#"<event kind="loc">
                 <user id="bob"><role>tourist</role></user>
                 <readings>
                   <r sensor="gps" q="hi">1</r>
                   <r sensor="temp">2</r>
                   <r sensor="gps">3</r>
                 </readings>
               </event>"#,
        )
        .unwrap()
    }

    #[test]
    fn child_steps() {
        let d = doc();
        let sel = Path::parse("readings/r").unwrap().select(&d);
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn attribute_terminal() {
        let d = doc();
        assert_eq!(Path::parse("user/@id").unwrap().select_text(&d), vec!["bob"]);
        assert_eq!(
            Path::parse("readings/r/@sensor").unwrap().select_text(&d),
            vec!["gps", "temp", "gps"]
        );
    }

    #[test]
    fn text_terminal() {
        let d = doc();
        assert_eq!(Path::parse("user/role/text()").unwrap().select_text(&d), vec!["tourist"]);
    }

    #[test]
    fn attr_equals_predicate() {
        let d = doc();
        let texts = Path::parse(r#"readings/r[@sensor="gps"]/text()"#).unwrap().select_text(&d);
        assert_eq!(texts, vec!["1", "3"]);
    }

    #[test]
    fn attr_exists_predicate() {
        let d = doc();
        let texts = Path::parse("readings/r[@q]").unwrap().select_text(&d);
        assert_eq!(texts, vec!["1"]);
    }

    #[test]
    fn position_predicate() {
        let d = doc();
        assert_eq!(Path::parse("readings/r[2]/text()").unwrap().select_text(&d), vec!["2"]);
    }

    #[test]
    fn position_counts_after_name_filter() {
        let d = doc();
        // Second *gps* reading, not second reading overall.
        assert_eq!(
            Path::parse(r#"readings/r[@sensor="gps"][2]/text()"#).unwrap().select_text(&d),
            vec!["3"]
        );
    }

    #[test]
    fn child_text_predicate() {
        let d = doc();
        let sel = Path::parse(r#"user[role="tourist"]/@id"#).unwrap().select_text(&d);
        assert_eq!(sel, vec!["bob"]);
    }

    #[test]
    fn descendant_axis() {
        let d = doc();
        let sel = Path::parse("//r").unwrap().select(&d);
        assert_eq!(sel.len(), 3);
        let roles = Path::parse("//role/text()").unwrap().select_text(&d);
        assert_eq!(roles, vec!["tourist"]);
    }

    #[test]
    fn descendant_axis_mid_path() {
        let d = parse("<a><b><c><t x=\"1\"/></c></b><t x=\"2\"/></a>").unwrap();
        let sel = Path::parse("//t/@x").unwrap().select_text(&d);
        assert_eq!(sel, vec!["1", "2"]); // document order
    }

    #[test]
    fn wildcard_step() {
        let d = doc();
        let sel = Path::parse("readings/*").unwrap().select(&d);
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn no_match_is_empty() {
        let d = doc();
        assert!(Path::parse("nope/way").unwrap().select(&d).is_empty());
        assert!(Path::parse("user/@missing").unwrap().select_text(&d).is_empty());
    }

    #[test]
    fn element_result_yields_text() {
        let d = doc();
        assert_eq!(Path::parse("user/role").unwrap().select_text(&d), vec!["tourist"]);
    }

    #[test]
    fn parse_errors() {
        assert!(Path::parse("").is_err());
        assert!(Path::parse("a/").is_err());
        assert!(Path::parse("a[").is_err());
        assert!(Path::parse("a[0]").is_err());
        assert!(Path::parse("a[@x=unquoted]").is_err());
        assert!(Path::parse("a]").is_err());
        assert!(Path::parse("@").is_err());
    }

    #[test]
    fn display_round_trip() {
        let p = Path::parse(r#"readings/r[@sensor="gps"]/@q"#).unwrap();
        assert_eq!(p.to_string(), r#"readings/r[@sensor="gps"]/@q"#);
        assert_eq!(Path::parse(&p.to_string()).unwrap(), p);
    }

    #[test]
    fn from_str_impl() {
        let p: Path = "user/@id".parse().unwrap();
        assert_eq!(p.select_text(&doc()), vec!["bob"]);
    }
}
