//! XML subset used throughout the Gloss architecture.
//!
//! The paper (§3, §4.7) standardises on XML for events, knowledge, and code
//! bundles, and argues for **type projection** — matching a type taken from
//! the program context against the data — rather than type *generation*
//! from schemas, because projection "handles partial data model
//! specifications": documents with structured *islands* inside loosely
//! specified surroundings.
//!
//! This crate provides:
//!
//! * [`Element`]/[`Node`] — an ordered-tree document model,
//! * [`parse`]/[`parse_document`] — a parser for a pragmatic XML subset
//!   (elements, attributes, text, comments, CDATA, the five named entities
//!   and numeric character references),
//! * a writer with compact and pretty forms ([`Element::to_xml`],
//!   [`Element::to_pretty_xml`]),
//! * [`Path`] — XPath-lite selection (`a/b[@k='v']//c/@attr`),
//! * [`ProjSpec`]/[`project`] — the type-projection binder, and
//! * [`schema`] — a type-generation baseline for experiment **C6**.
//!
//! # Example
//!
//! ```
//! use gloss_xml::{parse, Path};
//!
//! let doc = parse(r#"<event kind="location"><user id="bob"/><pos lat="56.34" lon="-2.80"/></event>"#)?;
//! let lat = Path::parse("pos/@lat")?.select_text(&doc);
//! assert_eq!(lat, vec!["56.34"]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod document;
pub mod parser;
pub mod path;
pub mod projection;
pub mod schema;
pub mod writer;

pub use document::{Document, Element, Node};
pub use parser::{parse, parse_document, ParseError};
pub use path::{Path, PathError};
pub use projection::{project, FieldSpec, FieldType, ProjError, ProjSpec, Record, Value};
pub use schema::{Schema, SchemaError};
