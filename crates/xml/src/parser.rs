//! A hand-written parser for the XML subset used by the architecture.
//!
//! Supported: elements, attributes (single- or double-quoted), text,
//! comments, CDATA sections, the five named entities (`&lt; &gt; &amp;
//! &quot; &apos;`) and numeric character references (`&#nn;`, `&#xhh;`),
//! and an optional leading `<?xml ...?>` declaration. Not supported (and
//! not needed by the architecture): DTDs, namespaces-as-semantics
//! (prefixed names are treated as opaque), and processing instructions
//! other than the declaration.

use crate::document::{Document, Element, Node};
use std::error::Error;
use std::fmt;

/// A parse failure, with 1-based line and column of the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl Error for ParseError {}

/// Parses a string holding exactly one element (plus optional declaration,
/// comments, and whitespace) and returns the root element.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing content.
pub fn parse(input: &str) -> Result<Element, ParseError> {
    parse_document(input).map(|d| d.root)
}

/// Parses a complete document.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing content.
pub fn parse_document(input: &str) -> Result<Document, ParseError> {
    let mut p = Parser::new(input);
    p.skip_ws_and_comments()?;
    let has_declaration = p.try_declaration()?;
    p.skip_ws_and_comments()?;
    let root = p.element()?;
    p.skip_ws_and_comments()?;
    if !p.at_end() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(Document { has_declaration, root })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { bytes: input.as_bytes(), pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError { line, col, message: message.into() }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.comment()?;
            } else {
                return Ok(());
            }
        }
    }

    fn comment(&mut self) -> Result<(), ParseError> {
        self.expect("<!--")?;
        while !self.at_end() {
            if self.eat("-->") {
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err("unterminated comment"))
    }

    fn try_declaration(&mut self) -> Result<bool, ParseError> {
        if !self.starts_with("<?xml") {
            return Ok(false);
        }
        while !self.at_end() {
            if self.eat("?>") {
                return Ok(true);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated xml declaration"))
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':'
    }

    fn is_name_char(b: u8) -> bool {
        b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'-' | b'.')
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if Self::is_name_start(b) => {
                self.pos += 1;
            }
            _ => return Err(self.err("expected name")),
        }
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.pos += 1;
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("name chars are ascii")
            .to_string())
    }

    fn entity(&mut self) -> Result<char, ParseError> {
        // Caller consumed '&'.
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                let body = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("non-utf8 entity"))?;
                self.pos += 1;
                return match body {
                    "lt" => Ok('<'),
                    "gt" => Ok('>'),
                    "amp" => Ok('&'),
                    "quot" => Ok('"'),
                    "apos" => Ok('\''),
                    _ if body.starts_with("#x") || body.starts_with("#X") => {
                        let code = u32::from_str_radix(&body[2..], 16)
                            .map_err(|_| self.err(format!("bad character reference &{body};")))?;
                        char::from_u32(code)
                            .ok_or_else(|| self.err(format!("invalid codepoint &{body};")))
                    }
                    _ if body.starts_with('#') => {
                        let code = body[1..]
                            .parse::<u32>()
                            .map_err(|_| self.err(format!("bad character reference &{body};")))?;
                        char::from_u32(code)
                            .ok_or_else(|| self.err(format!("invalid codepoint &{body};")))
                    }
                    _ => Err(self.err(format!("unknown entity &{body};"))),
                };
            }
            if self.pos - start > 10 {
                break;
            }
            self.pos += 1;
        }
        Err(self.err("unterminated entity reference"))
    }

    fn attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated attribute value")),
                Some(b) if b == quote => return Ok(out),
                Some(b'&') => out.push(self.entity()?),
                Some(b'<') => return Err(self.err("`<` in attribute value")),
                Some(b) => {
                    // Collect full UTF-8 sequences.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump().ok_or_else(|| self.err("truncated utf-8"))?;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn element(&mut self) -> Result<Element, ParseError> {
        self.expect("<")?;
        let name = self.name()?;
        let mut el = Element::new(&name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(el);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b) if Self::is_name_start(b) => {
                    let key = self.name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.attr_value()?;
                    if el.attr(&key).is_some() {
                        return Err(self.err(format!("duplicate attribute `{key}`")));
                    }
                    el.set_attr(key, value);
                }
                _ => return Err(self.err("malformed start tag")),
            }
        }
        // Content until matching close tag.
        loop {
            if self.starts_with("</") {
                self.expect("</")?;
                let close = self.name()?;
                if close != name {
                    return Err(
                        self.err(format!("mismatched close tag `{close}`, open was `{name}`"))
                    );
                }
                self.skip_ws();
                self.expect(">")?;
                return Ok(el);
            } else if self.starts_with("<!--") {
                self.comment()?;
            } else if self.starts_with("<![CDATA[") {
                self.pos += "<![CDATA[".len();
                let start = self.pos;
                loop {
                    if self.starts_with("]]>") {
                        let text = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8 in CDATA"))?;
                        el.push(Node::Text(text.to_string()));
                        self.pos += 3;
                        break;
                    }
                    if self.bump().is_none() {
                        return Err(self.err("unterminated CDATA section"));
                    }
                }
            } else if self.starts_with("<") {
                let child = self.element()?;
                el.push(Node::Element(child));
            } else if self.at_end() {
                return Err(self.err(format!("unexpected end of input inside `{name}`")));
            } else {
                let text = self.text()?;
                if !text.is_empty() {
                    el.push(Node::Text(text));
                }
            }
        }
    }

    fn text(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'<') => break,
                Some(b'&') => {
                    self.pos += 1;
                    out.push(self.entity()?);
                }
                Some(b) => {
                    let len = utf8_len(b);
                    let start = self.pos;
                    for _ in 0..len {
                        self.bump().ok_or_else(|| self.err("truncated utf-8"))?;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
        Ok(out)
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_element() {
        let e = parse("<a/>").unwrap();
        assert_eq!(e.name(), "a");
        assert!(e.is_empty());
    }

    #[test]
    fn attributes_both_quote_styles() {
        let e = parse(r#"<a x="1" y='two'/>"#).unwrap();
        assert_eq!(e.attr("x"), Some("1"));
        assert_eq!(e.attr("y"), Some("two"));
    }

    #[test]
    fn nested_elements_and_text() {
        let e = parse("<a>hi<b>there</b>bye</a>").unwrap();
        assert_eq!(e.text(), "hibye");
        assert_eq!(e.child("b").unwrap().text(), "there");
    }

    #[test]
    fn entities_decoded() {
        let e = parse("<a>&lt;x&gt; &amp; &quot;q&quot; &apos;a&apos; &#65;&#x42;</a>").unwrap();
        assert_eq!(e.text(), "<x> & \"q\" 'a' AB");
    }

    #[test]
    fn entities_in_attributes() {
        let e = parse(r#"<a v="&lt;&amp;&gt;"/>"#).unwrap();
        assert_eq!(e.attr("v"), Some("<&>"));
    }

    #[test]
    fn comments_skipped() {
        let e = parse("<!-- head --><a><!-- inner -->x</a><!-- tail -->").unwrap();
        assert_eq!(e.text(), "x");
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let e = parse("<a><![CDATA[<not & parsed>]]></a>").unwrap();
        assert_eq!(e.text(), "<not & parsed>");
    }

    #[test]
    fn declaration_recognised() {
        let d = parse_document("<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>").unwrap();
        assert!(d.has_declaration);
        assert_eq!(d.root.name(), "a");
    }

    #[test]
    fn unicode_text() {
        let e = parse("<a>café ☕ 日本</a>").unwrap();
        assert_eq!(e.text(), "café ☕ 日本");
    }

    #[test]
    fn error_mismatched_close() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn error_trailing_content() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn error_duplicate_attribute() {
        let err = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn error_unknown_entity() {
        let err = parse("<a>&nope;</a>").unwrap_err();
        assert!(err.message.contains("unknown entity"), "{err}");
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("<a>\n  <b>\n</a>").unwrap_err();
        assert!(err.line >= 2, "line {}", err.line);
    }

    #[test]
    fn error_unterminated() {
        assert!(parse("<a>").is_err());
        assert!(parse("<a").is_err());
        assert!(parse("<!-- never ends").is_err());
        assert!(parse("<a><![CDATA[x").is_err());
    }

    #[test]
    fn error_lt_in_attribute() {
        assert!(parse(r#"<a v="<"/>"#).is_err());
    }

    #[test]
    fn whitespace_only_text_is_kept() {
        // The model is faithful: whitespace runs become text nodes.
        let e = parse("<a> <b/> </a>").unwrap();
        assert_eq!(e.nodes().len(), 3);
    }

    #[test]
    fn names_with_punctuation() {
        let e = parse("<ns:tag-1 data-x.y=\"v\"/>").unwrap();
        assert_eq!(e.name(), "ns:tag-1");
        assert_eq!(e.attr("data-x.y"), Some("v"));
    }
}
