//! The document model: ordered trees of elements and text.

use std::fmt;

/// A node in an XML tree: an element or a text run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// A text run (entity references already resolved).
    Text(String),
}

impl Node {
    /// The element inside this node, if it is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// The text inside this node, if it is a text run.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) => Some(t),
            Node::Element(_) => None,
        }
    }
}

impl From<Element> for Node {
    fn from(e: Element) -> Node {
        Node::Element(e)
    }
}

impl From<&str> for Node {
    fn from(t: &str) -> Node {
        Node::Text(t.to_string())
    }
}

impl From<String> for Node {
    fn from(t: String) -> Node {
        Node::Text(t)
    }
}

/// An XML element: a name, ordered attributes, and ordered children.
///
/// Construction uses a light builder style so event payloads read naturally:
///
/// ```
/// use gloss_xml::Element;
/// let e = Element::new("user")
///     .with_attr("id", "bob")
///     .with_child(Element::new("role").with_text("tourist"));
/// assert_eq!(e.attr("id"), Some("bob"));
/// assert_eq!(e.child("role").unwrap().text(), "tourist");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Element {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<Node>,
}

impl Element {
    /// Creates an empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Element { name: name.into(), attrs: Vec::new(), children: Vec::new() }
    }

    /// The tag name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the element.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    // --- attributes ---

    /// The value of attribute `key`, if present.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// All attributes in document order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.attrs.push((key, value));
        }
    }

    /// Builder form of [`set_attr`](Self::set_attr).
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(key, value);
        self
    }

    // --- children ---

    /// All child nodes (elements and text) in document order.
    pub fn nodes(&self) -> &[Node] {
        &self.children
    }

    /// Child elements in document order.
    pub fn children(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// The first child element named `name`.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children().find(|c| c.name == name)
    }

    /// All child elements named `name`.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.children().filter(move |c| c.name == name)
    }

    /// Whether the element has no children at all.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Appends a child node.
    pub fn push(&mut self, node: impl Into<Node>) {
        self.children.push(node.into());
    }

    /// Builder form of [`push`](Self::push) for elements.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder: appends a text child.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// The concatenation of all *direct* text children.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out
    }

    /// The concatenation of all text in the subtree, in document order.
    pub fn deep_text(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        for n in &self.children {
            match n {
                Node::Text(t) => out.push_str(t),
                Node::Element(e) => e.collect_text(out),
            }
        }
    }

    /// Depth-first iterator over all descendant elements (excluding self).
    pub fn descendants(&self) -> Descendants<'_> {
        Descendants { stack: self.children().collect::<Vec<_>>() }
    }

    /// Number of elements in the subtree, including self.
    pub fn subtree_size(&self) -> usize {
        1 + self.descendants().count()
    }

    /// Mutable access to the child nodes.
    pub fn nodes_mut(&mut self) -> &mut Vec<Node> {
        &mut self.children
    }
}

/// Iterator produced by [`Element::descendants`].
#[derive(Debug)]
pub struct Descendants<'a> {
    stack: Vec<&'a Element>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = &'a Element;
    fn next(&mut self) -> Option<&'a Element> {
        let next = self.stack.pop()?;
        self.stack.extend(next.children());
        Some(next)
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::writer::to_xml(self))
    }
}

/// A complete document: an optional XML declaration plus a root element.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Document {
    /// Whether the source carried an `<?xml ...?>` declaration.
    pub has_declaration: bool,
    /// The root element.
    pub root: Element,
}

impl Document {
    /// Wraps a root element in a document.
    pub fn new(root: Element) -> Self {
        Document { has_declaration: false, root }
    }
}

impl From<Element> for Document {
    fn from(root: Element) -> Document {
        Document::new(root)
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.has_declaration {
            writeln!(f, "<?xml version=\"1.0\"?>")?;
        }
        write!(f, "{}", self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("event")
            .with_attr("kind", "location")
            .with_child(Element::new("user").with_attr("id", "bob"))
            .with_child(
                Element::new("pos")
                    .with_attr("lat", "56.34")
                    .with_child(Element::new("src").with_text("gps")),
            )
            .with_text("tail")
    }

    #[test]
    fn attribute_access_and_replacement() {
        let mut e = sample();
        assert_eq!(e.attr("kind"), Some("location"));
        assert_eq!(e.attr("missing"), None);
        e.set_attr("kind", "updated");
        assert_eq!(e.attr("kind"), Some("updated"));
        assert_eq!(e.attr_count(), 1);
    }

    #[test]
    fn child_navigation() {
        let e = sample();
        assert_eq!(e.child("user").unwrap().attr("id"), Some("bob"));
        assert!(e.child("nope").is_none());
        assert_eq!(e.children().count(), 2);
        assert_eq!(e.children_named("pos").count(), 1);
    }

    #[test]
    fn text_direct_vs_deep() {
        let e = sample();
        assert_eq!(e.text(), "tail");
        assert_eq!(e.deep_text(), "gpstail");
    }

    #[test]
    fn descendants_covers_subtree() {
        let e = sample();
        let names: Vec<&str> = e.descendants().map(|d| d.name()).collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains(&"user"));
        assert!(names.contains(&"pos"));
        assert!(names.contains(&"src"));
        assert_eq!(e.subtree_size(), 4);
    }

    #[test]
    fn node_conversions() {
        let n: Node = Element::new("x").into();
        assert!(n.as_element().is_some());
        assert!(n.as_text().is_none());
        let t: Node = "hello".into();
        assert_eq!(t.as_text(), Some("hello"));
    }

    #[test]
    fn document_display_with_declaration() {
        let mut d = Document::new(Element::new("root"));
        assert_eq!(d.to_string(), "<root/>");
        d.has_declaration = true;
        assert!(d.to_string().starts_with("<?xml"));
    }

    #[test]
    fn push_and_mutate() {
        let mut e = Element::new("list");
        e.push(Element::new("item"));
        e.push("text");
        assert_eq!(e.nodes().len(), 2);
        e.nodes_mut().clear();
        assert!(e.is_empty());
    }
}
