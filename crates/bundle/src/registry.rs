//! The component factory registry: how statically compiled component
//! kinds become available for dynamic deployment.
//!
//! Rust cannot load native code at runtime, so "pushing code" for
//! *component* bundles means naming a kind that the receiving process has
//! registered a factory for, plus XML configuration that genuinely is
//! dynamic. (Matchlet bundles carry fully dynamic logic through the rule
//! interpreter instead.) This mirrors Cingal's own requirement that thin
//! servers pre-install the deployment infrastructure.

use gloss_xml::Element;
use std::collections::BTreeMap;
use std::fmt;

/// A factory closure producing `T` from XML configuration.
type Factory<T> = Box<dyn Fn(&Element) -> Result<T, String> + Send + Sync>;

/// A registry of factories producing `T` from XML configuration.
pub struct Registry<T> {
    factories: BTreeMap<String, Factory<T>>,
}

impl<T> fmt::Debug for Registry<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry").field("kinds", &self.kinds()).finish()
    }
}

impl<T> Default for Registry<T> {
    fn default() -> Self {
        Registry { factories: BTreeMap::new() }
    }
}

impl<T> Registry<T> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a factory for `kind` (replacing any previous one).
    pub fn register(
        &mut self,
        kind: impl Into<String>,
        factory: impl Fn(&Element) -> Result<T, String> + Send + Sync + 'static,
    ) {
        self.factories.insert(kind.into(), Box::new(factory));
    }

    /// Whether `kind` is registered.
    pub fn knows(&self, kind: &str) -> bool {
        self.factories.contains_key(kind)
    }

    /// The registered kind names.
    pub fn kinds(&self) -> Vec<&str> {
        self.factories.keys().map(String::as_str).collect()
    }

    /// Instantiates `kind` from `config`.
    ///
    /// # Errors
    ///
    /// `Err(None)` when the kind is unknown; `Err(Some(msg))` when the
    /// factory rejected the configuration.
    pub fn build(&self, kind: &str, config: &Element) -> Result<T, Option<String>> {
        match self.factories.get(kind) {
            None => Err(None),
            Some(f) => f(config).map_err(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_build_and_errors() {
        let mut r: Registry<u32> = Registry::new();
        r.register("double", |cfg| {
            cfg.attr("n")
                .and_then(|s| s.parse::<u32>().ok())
                .map(|n| n * 2)
                .ok_or_else(|| "need numeric n".to_string())
        });
        assert!(r.knows("double"));
        assert_eq!(r.kinds(), vec!["double"]);
        let ok = r.build("double", &Element::new("cfg").with_attr("n", "21"));
        assert_eq!(ok, Ok(42));
        let bad_cfg = r.build("double", &Element::new("cfg"));
        assert_eq!(bad_cfg, Err(Some("need numeric n".to_string())));
        let unknown = r.build("triple", &Element::new("cfg"));
        assert_eq!(unknown, Err(None));
    }

    #[test]
    fn re_registration_replaces() {
        let mut r: Registry<u32> = Registry::new();
        r.register("k", |_| Ok(1));
        r.register("k", |_| Ok(2));
        assert_eq!(r.build("k", &Element::new("c")), Ok(2));
    }
}
