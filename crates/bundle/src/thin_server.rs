//! The thin server: verification, capability checks, installation into a
//! security domain, and the per-server object store.

use crate::bundle::{Bundle, BundleError, Code, Manifest};
use crate::capability::Capability;
use crate::verify::AuthKey;
use gloss_event::Event;
use gloss_knowledge::FactSource;
use gloss_matchlet::{parse_rules, MatchletEngine};
use gloss_sim::SimTime;
use gloss_xml::Element;
use std::collections::{BTreeMap, BTreeSet};

/// What an accepted installation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstallReport {
    /// The bundle name.
    pub name: String,
    /// The installed version.
    pub version: u64,
    /// Matchlet rules added.
    pub rules_added: usize,
    /// Data objects stored.
    pub objects_stored: usize,
    /// The component kind requested, if the bundle was a component.
    pub component_kind: Option<String>,
    /// Warning-level static analysis findings (errors reject the bundle).
    pub lint_warnings: usize,
}

#[derive(Debug, Clone)]
struct Installed {
    manifest: Manifest,
    rule_names: Vec<String>,
    object_names: Vec<String>,
}

/// A Cingal thin server: accepts bundles, verifies and authorises them,
/// hosts the installed matchlets, and keeps an object store.
///
/// Component bundles are *requested* here and instantiated by the
/// embedding pipeline host through its registry (drain with
/// [`take_component_requests`](Self::take_component_requests)).
#[derive(Debug, Default)]
pub struct ThinServer {
    name: String,
    trusted: BTreeMap<String, AuthKey>,
    grants: BTreeMap<String, BTreeSet<Capability>>,
    engine: MatchletEngine,
    installed: BTreeMap<String, Installed>,
    objects: BTreeMap<String, Element>,
    component_requests: Vec<(String, String, Element)>,
    /// Rejected packets, by reason (for the security experiments).
    pub rejections: u64,
}

impl ThinServer {
    /// Creates a thin server named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ThinServer { name: name.into(), ..Default::default() }
    }

    /// The server name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Trusts an issuer's key.
    pub fn trust(&mut self, key: AuthKey) {
        self.trusted.insert(key.issuer().to_string(), key);
    }

    /// Grants a capability to an issuer.
    pub fn grant(&mut self, issuer: impl Into<String>, cap: Capability) {
        self.grants.entry(issuer.into()).or_default().insert(cap);
    }

    /// Revokes a capability.
    pub fn revoke(&mut self, issuer: &str, cap: Capability) {
        if let Some(set) = self.grants.get_mut(issuer) {
            set.remove(&cap);
        }
    }

    /// The hosted matchlet engine.
    pub fn engine(&self) -> &MatchletEngine {
        &self.engine
    }

    /// Mutable engine access.
    pub fn engine_mut(&mut self) -> &mut MatchletEngine {
        &mut self.engine
    }

    /// Offers an event to the hosted matchlets.
    pub fn match_event(&mut self, now: SimTime, event: &Event, kb: &dyn FactSource) -> Vec<Event> {
        self.engine.on_event(now, event, kb)
    }

    /// Reads an object from the store.
    pub fn object(&self, name: &str) -> Option<&Element> {
        self.objects.get(name)
    }

    /// Writes an object directly (local privileged access).
    pub fn put_object(&mut self, name: impl Into<String>, value: Element) {
        self.objects.insert(name.into(), value);
    }

    /// Names of all stored objects.
    pub fn object_names(&self) -> Vec<&str> {
        self.objects.keys().map(String::as_str).collect()
    }

    /// Names of installed bundles.
    pub fn installed_names(&self) -> Vec<&str> {
        self.installed.keys().map(String::as_str).collect()
    }

    /// The installed version of a bundle, if present.
    pub fn installed_version(&self, name: &str) -> Option<u64> {
        self.installed.get(name).map(|i| i.manifest.version)
    }

    /// Drains pending component instantiation requests:
    /// `(bundle name, component kind, config)`.
    pub fn take_component_requests(&mut self) -> Vec<(String, String, Element)> {
        std::mem::take(&mut self.component_requests)
    }

    /// Receives, verifies, authorises, and installs one packet.
    ///
    /// # Errors
    ///
    /// Returns [`BundleError`] describing the first check that failed;
    /// the server state is unchanged on error.
    pub fn receive_packet(&mut self, packet: &str) -> Result<InstallReport, BundleError> {
        let result = self.try_install(packet);
        if result.is_err() {
            self.rejections += 1;
        }
        result
    }

    fn try_install(&mut self, packet: &str) -> Result<InstallReport, BundleError> {
        // Authentication: the issuer named in the packet must be trusted
        // and the tag must verify under that issuer's key.
        let (bundle, digest, tag) = Bundle::from_packet_unverified(packet)?;
        let issuer = bundle.manifest.issuer.clone();
        let key = self
            .trusted
            .get(&issuer)
            .ok_or_else(|| BundleError::AuthenticationFailure(issuer.clone()))?;
        if key.tag(digest) != tag {
            return Err(BundleError::AuthenticationFailure(issuer));
        }
        // Capability check.
        let granted = self.grants.get(&issuer).cloned().unwrap_or_default();
        for cap in bundle.required_capabilities() {
            if !granted.contains(&cap) {
                return Err(BundleError::CapabilityDenied { issuer, missing: cap });
            }
        }
        // Version check.
        if let Some(existing) = self.installed.get(&bundle.manifest.name) {
            if existing.manifest.version >= bundle.manifest.version {
                return Err(BundleError::StaleVersion {
                    name: bundle.manifest.name.clone(),
                    installed: existing.manifest.version,
                    offered: bundle.manifest.version,
                });
            }
        }
        // Validate code before mutating anything.
        let mut rule_names = Vec::new();
        let mut component_kind = None;
        let mut lint_warnings = 0;
        match &bundle.code {
            Code::Matchlet { source } => {
                let rules =
                    parse_rules(source).map_err(|e| BundleError::BadMatchlet(e.to_string()))?;
                // Static analysis gate: error-level findings (unbound
                // variables, never-true conditions, duplicate rules)
                // prove the matchlet defective — reject it before it
                // reaches the engine. Warnings install but are counted.
                let analysis = gloss_analysis::analyze_rules(&rules);
                if analysis.has_errors() {
                    return Err(BundleError::RejectedByAnalysis(analysis.error_summary()));
                }
                lint_warnings = analysis.warning_count();
                rule_names = rules.iter().map(|r| r.name.clone()).collect();
            }
            Code::Component { kind, .. } => {
                component_kind = Some(kind.clone());
            }
        }

        // Install: replace a previous version cleanly.
        if let Some(prev) = self.installed.remove(&bundle.manifest.name) {
            for r in &prev.rule_names {
                self.engine.remove_rule(r);
            }
            for o in &prev.object_names {
                self.objects.remove(o);
            }
        }
        match &bundle.code {
            Code::Matchlet { source } => {
                self.engine.add_rules(source).expect("validated above");
            }
            Code::Component { kind, config } => {
                self.component_requests.push((
                    bundle.manifest.name.clone(),
                    kind.clone(),
                    config.clone(),
                ));
            }
        }
        let mut object_names = Vec::new();
        for (name, value) in &bundle.data {
            self.objects.insert(name.clone(), value.clone());
            object_names.push(name.clone());
        }
        let report = InstallReport {
            name: bundle.manifest.name.clone(),
            version: bundle.manifest.version,
            rules_added: rule_names.len(),
            objects_stored: object_names.len(),
            component_kind,
            lint_warnings,
        };
        self.installed.insert(
            bundle.manifest.name.clone(),
            Installed { manifest: bundle.manifest, rule_names, object_names },
        );
        Ok(report)
    }

    /// Uninstalls a bundle: its rules and objects are removed.
    /// Returns whether it was installed.
    pub fn uninstall(&mut self, name: &str) -> bool {
        match self.installed.remove(name) {
            None => false,
            Some(prev) => {
                for r in &prev.rule_names {
                    self.engine.remove_rule(r);
                }
                for o in &prev.object_names {
                    self.objects.remove(o);
                }
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_knowledge::InMemoryFacts;
    use gloss_xml::parse;

    const RULE: &str =
        r#"rule hot { on w: event weather(c: ?c) where ?c > 18.0 emit alert(c: ?c) }"#;

    fn key() -> AuthKey {
        AuthKey::new("tenant", b"k1")
    }

    fn ready_server() -> ThinServer {
        let mut s = ThinServer::new("node-1");
        s.trust(key());
        s.grant("tenant", Capability::DeployMatchlet);
        s.grant("tenant", Capability::DeployComponent);
        s.grant("tenant", Capability::StoreAccess);
        s
    }

    fn matchlet_packet() -> String {
        Bundle::matchlet("hot-alert", RULE).issued_by("tenant").to_packet(&key())
    }

    #[test]
    fn install_runs_matchlets() {
        let mut s = ready_server();
        let report = s.receive_packet(&matchlet_packet()).unwrap();
        assert_eq!(report.rules_added, 1);
        assert!(s.engine().handles_kind("weather"));
        let out = s.match_event(
            SimTime::ZERO,
            &Event::new("weather").with_attr("c", 25.0),
            &InMemoryFacts::new(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind(), "alert");
    }

    #[test]
    fn untrusted_issuer_rejected() {
        let mut s = ThinServer::new("node-1");
        // No trust established.
        let err = s.receive_packet(&matchlet_packet()).unwrap_err();
        assert!(matches!(err, BundleError::AuthenticationFailure(_)));
        assert_eq!(s.rejections, 1);
    }

    #[test]
    fn forged_tag_rejected() {
        let mut s = ready_server();
        // Packet sealed with a different secret for the same issuer name.
        let forged = Bundle::matchlet("hot-alert", RULE)
            .issued_by("tenant")
            .to_packet(&AuthKey::new("tenant", b"stolen-name"));
        assert!(matches!(s.receive_packet(&forged), Err(BundleError::AuthenticationFailure(_))));
    }

    #[test]
    fn missing_capability_rejected() {
        let mut s = ThinServer::new("node-1");
        s.trust(key());
        // Only component rights, but the bundle is a matchlet.
        s.grant("tenant", Capability::DeployComponent);
        let err = s.receive_packet(&matchlet_packet()).unwrap_err();
        assert!(matches!(
            err,
            BundleError::CapabilityDenied { missing: Capability::DeployMatchlet, .. }
        ));
        // Granting fixes it.
        s.grant("tenant", Capability::DeployMatchlet);
        assert!(s.receive_packet(&matchlet_packet()).is_ok());
    }

    #[test]
    fn revoke_takes_effect() {
        let mut s = ready_server();
        s.revoke("tenant", Capability::DeployMatchlet);
        assert!(s.receive_packet(&matchlet_packet()).is_err());
    }

    #[test]
    fn version_upgrade_replaces_rules() {
        let mut s = ready_server();
        s.receive_packet(&matchlet_packet()).unwrap();
        // Same version again: stale.
        assert!(matches!(
            s.receive_packet(&matchlet_packet()),
            Err(BundleError::StaleVersion { .. })
        ));
        // Version 2 with a different rule replaces the old one.
        let v2 = Bundle::matchlet(
            "hot-alert",
            r#"rule cold { on w: event weather(c: ?c) where ?c < 5.0 emit brr() }"#,
        )
        .issued_by("tenant")
        .with_version(2)
        .to_packet(&key());
        let report = s.receive_packet(&v2).unwrap();
        assert_eq!(report.version, 2);
        assert_eq!(s.engine().rule_names(), vec!["cold"]);
        assert_eq!(s.installed_version("hot-alert"), Some(2));
    }

    #[test]
    fn bad_matchlet_source_rejected_cleanly() {
        let mut s = ready_server();
        let bad = Bundle::matchlet("oops", "rule { broken").issued_by("tenant").to_packet(&key());
        assert!(matches!(s.receive_packet(&bad), Err(BundleError::BadMatchlet(_))));
        assert!(s.installed_names().is_empty());
        assert!(s.engine().rule_names().is_empty());
    }

    #[test]
    fn analysis_gate_rejects_unbound_emit_variable() {
        let mut s = ready_server();
        // Compiles fine, but `?ghost` is read by the emit and bound by
        // nothing: every firing would raise an eval error at run time.
        let bad = Bundle::matchlet(
            "ghost",
            r#"rule ghost { on w: event weather(c: ?c) emit alert(c: ?c, x: ?ghost) }"#,
        )
        .issued_by("tenant")
        .to_packet(&key());
        let err = s.receive_packet(&bad).unwrap_err();
        match err {
            BundleError::RejectedByAnalysis(reason) => {
                assert!(reason.contains("?ghost"), "{reason}");
            }
            other => panic!("expected analysis rejection, got {other}"),
        }
        // Nothing was installed and the rejection was counted.
        assert!(s.installed_names().is_empty());
        assert!(s.engine().rule_names().is_empty());
        assert_eq!(s.rejections, 1);
    }

    #[test]
    fn analysis_warnings_install_and_are_counted() {
        let mut s = ready_server();
        // `?street` is bound but never read: a warning, not an error.
        let sloppy = Bundle::matchlet(
            "sloppy",
            r#"rule sloppy {
                on w: event weather(c: ?c, street: ?street)
                where ?c > 18.0
                emit alert(c: ?c)
            }"#,
        )
        .issued_by("tenant")
        .to_packet(&key());
        let report = s.receive_packet(&sloppy).unwrap();
        assert_eq!(report.rules_added, 1);
        assert_eq!(report.lint_warnings, 1);
        assert_eq!(s.engine().rule_names(), vec!["sloppy"]);
        // A clean bundle reports zero warnings.
        let clean = s.receive_packet(&matchlet_packet()).unwrap();
        assert_eq!(clean.lint_warnings, 0);
    }

    #[test]
    fn data_objects_land_in_store() {
        let mut s = ready_server();
        let packet = Bundle::matchlet("with-data", RULE)
            .issued_by("tenant")
            .with_data("config/regions", parse("<regions><r>scotland</r></regions>").unwrap())
            .to_packet(&key());
        let report = s.receive_packet(&packet).unwrap();
        assert_eq!(report.objects_stored, 1);
        assert_eq!(s.object("config/regions").unwrap().children().count(), 1);
        assert!(s.uninstall("with-data"));
        assert!(s.object("config/regions").is_none());
        assert!(!s.uninstall("with-data"));
    }

    #[test]
    fn component_bundles_queue_requests() {
        let mut s = ready_server();
        let packet =
            Bundle::component("thresh", "filter.threshold", parse(r#"<cfg min="50"/>"#).unwrap())
                .issued_by("tenant")
                .to_packet(&key());
        let report = s.receive_packet(&packet).unwrap();
        assert_eq!(report.component_kind.as_deref(), Some("filter.threshold"));
        let reqs = s.take_component_requests();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].1, "filter.threshold");
        assert!(s.take_component_requests().is_empty(), "drained");
    }

    #[test]
    fn store_access_needed_for_data() {
        let mut s = ThinServer::new("node-1");
        s.trust(key());
        s.grant("tenant", Capability::DeployMatchlet);
        let packet = Bundle::matchlet("with-data", RULE)
            .issued_by("tenant")
            .with_data("x", Element::new("y"))
            .to_packet(&key());
        assert!(matches!(
            s.receive_packet(&packet),
            Err(BundleError::CapabilityDenied { missing: Capability::StoreAccess, .. })
        ));
    }
}
