//! Cingal-style code push (§3, §4.3): "bundles of code and data wrapped in
//! XML packets to be deployed and run on a thin server. On arrival at a
//! thin server, and subject to verification and security checks, the code
//! may be executed within a security domain. Each thin server provides
//! the necessary infrastructure for code deployment, authentication of
//! bundles, a capability-based protection system and an object store."
//!
//! * [`Bundle`] — a manifest, *code* (a matchlet program or a component
//!   kind + configuration), and XML data objects; wire form is one XML
//!   packet ([`Bundle::to_packet`], [`Bundle::from_packet`]).
//! * [`verify`] — integrity digests and keyed authentication tags (hash
//!   constructions standing in for real cryptography; see DESIGN.md).
//! * [`Capability`]-based protection — bundles name the capabilities they
//!   need; thin servers check them against per-issuer grants.
//! * [`ThinServer`] — installs verified bundles into a security domain:
//!   matchlet programs are hot-added to the server's
//!   [`MatchletEngine`](gloss_matchlet::MatchletEngine), data objects land
//!   in the per-server object store.
//! * [`Registry`] — maps component kind names to factory functions: the
//!   static-Rust substitution for dynamic code loading (DESIGN.md).
//!
//! # Example
//!
//! ```
//! use gloss_bundle::{AuthKey, Bundle, Capability, Code, ThinServer};
//!
//! let key = AuthKey::new("tenant-a", b"shared-secret");
//! let bundle = Bundle::matchlet(
//!     "hot-alert",
//!     r#"rule hot { on w: event weather(c: ?c) where ?c > 18.0 emit alert(c: ?c) }"#,
//! )
//! .issued_by("tenant-a");
//! let packet = bundle.to_packet(&key);
//!
//! let mut server = ThinServer::new("node-1");
//! server.trust(key.clone());
//! server.grant("tenant-a", Capability::DeployMatchlet);
//! server.receive_packet(&packet)?;
//! assert!(server.engine().handles_kind("weather"));
//! # Ok::<(), gloss_bundle::BundleError>(())
//! ```

pub mod bundle;
pub mod capability;
pub mod registry;
pub mod thin_server;
pub mod verify;

pub use bundle::{Bundle, BundleError, Code, Manifest};
pub use capability::Capability;
pub use registry::Registry;
pub use thin_server::{InstallReport, ThinServer};
pub use verify::AuthKey;
