//! Capability-based protection for thin servers.

use std::fmt;

/// A right that a bundle may require and an issuer may hold on a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Capability {
    /// Install matchlet programs.
    DeployMatchlet,
    /// Install pipeline components.
    DeployComponent,
    /// Write objects into the server's object store.
    StoreAccess,
    /// Publish events from installed code.
    Publish,
    /// Subscribe to events for installed code.
    Subscribe,
    /// Manage the server itself (grants, uninstalls of others' bundles).
    Admin,
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Capability::DeployMatchlet => "deploy-matchlet",
            Capability::DeployComponent => "deploy-component",
            Capability::StoreAccess => "store-access",
            Capability::Publish => "publish",
            Capability::Subscribe => "subscribe",
            Capability::Admin => "admin",
        };
        f.write_str(s)
    }
}

impl Capability {
    /// Parses the textual form produced by [`fmt::Display`].
    pub fn parse(s: &str) -> Option<Capability> {
        Some(match s {
            "deploy-matchlet" => Capability::DeployMatchlet,
            "deploy-component" => Capability::DeployComponent,
            "store-access" => Capability::StoreAccess,
            "publish" => Capability::Publish,
            "subscribe" => Capability::Subscribe,
            "admin" => Capability::Admin,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_round_trip() {
        for c in [
            Capability::DeployMatchlet,
            Capability::DeployComponent,
            Capability::StoreAccess,
            Capability::Publish,
            Capability::Subscribe,
            Capability::Admin,
        ] {
            assert_eq!(Capability::parse(&c.to_string()), Some(c));
        }
        assert_eq!(Capability::parse("fly"), None);
    }
}
