//! Integrity digests and keyed authentication tags.
//!
//! The paper requires bundles to pass "verification and security checks"
//! before execution. Real Cingal uses cryptographic signatures; this
//! reproduction uses FNV-1a-128 digests and a keyed hash tag, which
//! exercise the same decision points (accept/reject, per-issuer trust)
//! without external crypto crates — see DESIGN.md's substitution table.

/// FNV-1a 128-bit digest of `bytes`.
pub fn digest(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A shared authentication key for one issuing principal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthKey {
    issuer: String,
    secret: Vec<u8>,
}

impl AuthKey {
    /// Creates a key for `issuer` from `secret` bytes.
    pub fn new(issuer: impl Into<String>, secret: &[u8]) -> Self {
        AuthKey { issuer: issuer.into(), secret: secret.to_vec() }
    }

    /// The issuing principal this key authenticates.
    pub fn issuer(&self) -> &str {
        &self.issuer
    }

    /// The authentication tag for a body digest (keyed-hash construction:
    /// `H(secret ‖ H(secret ‖ digest))`, HMAC-shaped).
    pub fn tag(&self, body_digest: u128) -> u128 {
        let mut inner = self.secret.clone();
        inner.extend_from_slice(&body_digest.to_be_bytes());
        let inner_digest = digest(&inner);
        let mut outer = self.secret.clone();
        outer.extend_from_slice(&inner_digest.to_be_bytes());
        digest(&outer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_sensitive() {
        assert_eq!(digest(b"abc"), digest(b"abc"));
        assert_ne!(digest(b"abc"), digest(b"abd"));
        assert_ne!(digest(b""), digest(b"\0"));
    }

    #[test]
    fn tags_depend_on_key_and_digest() {
        let k1 = AuthKey::new("a", b"one");
        let k2 = AuthKey::new("a", b"two");
        let d = digest(b"payload");
        assert_eq!(k1.tag(d), k1.tag(d));
        assert_ne!(k1.tag(d), k2.tag(d));
        assert_ne!(k1.tag(d), k1.tag(d ^ 1));
    }

    #[test]
    fn issuer_accessor() {
        assert_eq!(AuthKey::new("ops", b"s").issuer(), "ops");
    }
}
