//! Bundles: code and data wrapped in XML packets.

use crate::capability::Capability;
use crate::verify::{self, AuthKey};
use gloss_xml::{Element, ParseError};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// The code carried by a bundle.
#[derive(Debug, Clone, PartialEq)]
pub enum Code {
    /// A matchlet program (hot-deployable matching logic).
    Matchlet {
        /// The rule source text.
        source: String,
    },
    /// A pipeline component: a registered kind plus its XML configuration.
    Component {
        /// The component kind (resolved through a [`crate::Registry`]).
        kind: String,
        /// Kind-specific configuration.
        config: Element,
    },
}

impl Code {
    /// The capability required to install this code.
    pub fn required_capability(&self) -> Capability {
        match self {
            Code::Matchlet { .. } => Capability::DeployMatchlet,
            Code::Component { .. } => Capability::DeployComponent,
        }
    }
}

/// Bundle metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Unique bundle name (also the installation key).
    pub name: String,
    /// Monotonic version; installs replace older versions only.
    pub version: u64,
    /// The issuing principal (must be trusted by the receiving server).
    pub issuer: String,
}

/// A deployable unit: manifest + code + named XML data objects.
#[derive(Debug, Clone, PartialEq)]
pub struct Bundle {
    /// Metadata.
    pub manifest: Manifest,
    /// The code.
    pub code: Code,
    /// Data objects imported into the server's object store on install.
    pub data: Vec<(String, Element)>,
}

/// A bundle handling failure.
#[derive(Debug, Clone, PartialEq)]
pub enum BundleError {
    /// The packet was not well-formed XML.
    Malformed(String),
    /// Integrity digest mismatch (corrupted in transit).
    IntegrityFailure,
    /// Unknown issuer or bad authentication tag.
    AuthenticationFailure(String),
    /// The issuer lacks a required capability.
    CapabilityDenied {
        /// The issuer.
        issuer: String,
        /// What was missing.
        missing: Capability,
    },
    /// The matchlet source failed to compile.
    BadMatchlet(String),
    /// The matchlet compiled but static analysis proved it defective
    /// (unbound variables, never-true conditions, duplicate rules, ...).
    RejectedByAnalysis(String),
    /// The component kind is not registered on this server.
    UnknownComponentKind(String),
    /// An installed bundle with the same name has an equal or newer
    /// version.
    StaleVersion {
        /// The bundle name.
        name: String,
        /// The installed version.
        installed: u64,
        /// The offered version.
        offered: u64,
    },
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::Malformed(m) => write!(f, "malformed bundle packet: {m}"),
            BundleError::IntegrityFailure => write!(f, "bundle integrity digest mismatch"),
            BundleError::AuthenticationFailure(who) => {
                write!(f, "bundle authentication failed for issuer `{who}`")
            }
            BundleError::CapabilityDenied { issuer, missing } => {
                write!(f, "issuer `{issuer}` lacks capability {missing}")
            }
            BundleError::BadMatchlet(e) => write!(f, "matchlet compile error: {e}"),
            BundleError::RejectedByAnalysis(e) => {
                write!(f, "matchlet rejected by static analysis: {e}")
            }
            BundleError::UnknownComponentKind(k) => {
                write!(f, "component kind `{k}` is not registered")
            }
            BundleError::StaleVersion { name, installed, offered } => {
                write!(f, "bundle `{name}` v{offered} is not newer than installed v{installed}")
            }
        }
    }
}

impl Error for BundleError {}

impl From<ParseError> for BundleError {
    fn from(e: ParseError) -> Self {
        BundleError::Malformed(e.to_string())
    }
}

impl Bundle {
    /// Creates a matchlet bundle (issuer defaults to `"system"`, version
    /// 1; adjust via the fields).
    pub fn matchlet(name: impl Into<String>, source: impl Into<String>) -> Self {
        Bundle {
            manifest: Manifest { name: name.into(), version: 1, issuer: "system".into() },
            code: Code::Matchlet { source: source.into() },
            data: Vec::new(),
        }
    }

    /// Creates a component bundle.
    pub fn component(name: impl Into<String>, kind: impl Into<String>, config: Element) -> Self {
        Bundle {
            manifest: Manifest { name: name.into(), version: 1, issuer: "system".into() },
            code: Code::Component { kind: kind.into(), config },
            data: Vec::new(),
        }
    }

    /// Sets the issuer.
    pub fn issued_by(mut self, issuer: impl Into<String>) -> Self {
        self.manifest.issuer = issuer.into();
        self
    }

    /// Sets the version.
    pub fn with_version(mut self, version: u64) -> Self {
        self.manifest.version = version;
        self
    }

    /// Attaches a named data object.
    pub fn with_data(mut self, name: impl Into<String>, value: Element) -> Self {
        self.data.push((name.into(), value));
        self
    }

    /// Capabilities this bundle needs on the receiving server.
    pub fn required_capabilities(&self) -> BTreeSet<Capability> {
        let mut caps = BTreeSet::new();
        caps.insert(self.code.required_capability());
        if !self.data.is_empty() {
            caps.insert(Capability::StoreAccess);
        }
        caps
    }

    /// The body element (everything that is integrity-protected).
    fn body_xml(&self) -> Element {
        let mut body = Element::new("body")
            .with_attr("name", &self.manifest.name)
            .with_attr("version", self.manifest.version.to_string())
            .with_attr("issuer", &self.manifest.issuer);
        match &self.code {
            Code::Matchlet { source } => {
                body.push(Element::new("matchlet").with_text(source.clone()));
            }
            Code::Component { kind, config } => {
                body.push(
                    Element::new("component").with_attr("kind", kind).with_child(config.clone()),
                );
            }
        }
        for (name, value) in &self.data {
            body.push(Element::new("object").with_attr("name", name).with_child(value.clone()));
        }
        body
    }

    /// Serialises and seals the bundle into its XML wire packet:
    /// the body plus an integrity digest and an authentication tag
    /// computed with `key`.
    pub fn to_packet(&self, key: &AuthKey) -> String {
        let body = self.body_xml();
        let body_text = body.to_xml();
        let digest = verify::digest(body_text.as_bytes());
        let tag = key.tag(digest);
        Element::new("bundle")
            .with_attr("digest", format!("{digest:032x}"))
            .with_attr("tag", format!("{tag:032x}"))
            .with_child(body)
            .to_xml()
    }

    /// Parses a packet *without* verifying it (used by the verifier).
    ///
    /// # Errors
    ///
    /// Returns [`BundleError::Malformed`] on structural problems.
    pub fn from_packet_unverified(packet: &str) -> Result<(Bundle, u128, u128), BundleError> {
        let root = gloss_xml::parse(packet)?;
        if root.name() != "bundle" {
            return Err(BundleError::Malformed("root element must be <bundle>".into()));
        }
        let digest = u128::from_str_radix(root.attr("digest").unwrap_or(""), 16)
            .map_err(|_| BundleError::Malformed("bad digest attribute".into()))?;
        let tag = u128::from_str_radix(root.attr("tag").unwrap_or(""), 16)
            .map_err(|_| BundleError::Malformed("bad tag attribute".into()))?;
        let body =
            root.child("body").ok_or_else(|| BundleError::Malformed("missing <body>".into()))?;
        let manifest = Manifest {
            name: body
                .attr("name")
                .ok_or_else(|| BundleError::Malformed("missing bundle name".into()))?
                .to_string(),
            version: body
                .attr("version")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| BundleError::Malformed("missing/bad version".into()))?,
            issuer: body
                .attr("issuer")
                .ok_or_else(|| BundleError::Malformed("missing issuer".into()))?
                .to_string(),
        };
        let code = if let Some(m) = body.child("matchlet") {
            Code::Matchlet { source: m.text() }
        } else if let Some(c) = body.child("component") {
            let kind = c
                .attr("kind")
                .ok_or_else(|| BundleError::Malformed("component without kind".into()))?
                .to_string();
            let config = c.children().next().cloned().unwrap_or_else(|| Element::new("config"));
            Code::Component { kind, config }
        } else {
            return Err(BundleError::Malformed("bundle carries no code".into()));
        };
        let mut data = Vec::new();
        for obj in body.children_named("object") {
            let name = obj
                .attr("name")
                .ok_or_else(|| BundleError::Malformed("object without name".into()))?;
            let value = obj
                .children()
                .next()
                .cloned()
                .ok_or_else(|| BundleError::Malformed("object without content".into()))?;
            data.push((name.to_string(), value));
        }
        // Recompute the digest over the *re-serialised* body; any
        // tampering with the packet body shows up here.
        let body_digest = verify::digest(body.to_xml().as_bytes());
        if body_digest != digest {
            return Err(BundleError::IntegrityFailure);
        }
        Ok((Bundle { manifest, code, data }, digest, tag))
    }

    /// Parses and authenticates a packet with `key`.
    ///
    /// # Errors
    ///
    /// Returns [`BundleError`] on malformed packets, integrity failures,
    /// or bad authentication tags.
    pub fn from_packet(packet: &str, key: &AuthKey) -> Result<Bundle, BundleError> {
        let (bundle, digest, tag) = Self::from_packet_unverified(packet)?;
        if key.tag(digest) != tag {
            return Err(BundleError::AuthenticationFailure(bundle.manifest.issuer));
        }
        Ok(bundle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gloss_xml::parse;

    fn key() -> AuthKey {
        AuthKey::new("system", b"secret")
    }

    fn sample() -> Bundle {
        Bundle::matchlet("greet", "rule g { on a: event hello() emit hi() }")
            .with_version(3)
            .with_data("welcome", parse("<msg>hello</msg>").unwrap())
    }

    #[test]
    fn packet_round_trip() {
        let b = sample();
        let packet = b.to_packet(&key());
        let back = Bundle::from_packet(&packet, &key()).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn component_bundle_round_trip() {
        let b = Bundle::component(
            "thresholder",
            "filter.threshold",
            parse(r#"<cfg attr="distance" min="50"/>"#).unwrap(),
        )
        .issued_by("ops");
        let packet = b.to_packet(&key());
        let back = Bundle::from_packet(&packet, &key()).unwrap();
        assert_eq!(back.manifest.issuer, "ops");
        match &back.code {
            Code::Component { kind, config } => {
                assert_eq!(kind, "filter.threshold");
                assert_eq!(config.attr("min"), Some("50"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tampered_body_fails_integrity() {
        let packet = sample().to_packet(&key());
        let tampered = packet.replace("version=\"3\"", "version=\"4\"");
        assert_eq!(Bundle::from_packet(&tampered, &key()), Err(BundleError::IntegrityFailure));
    }

    #[test]
    fn wrong_key_fails_authentication() {
        let packet = sample().to_packet(&key());
        let other = AuthKey::new("system", b"different");
        assert!(matches!(
            Bundle::from_packet(&packet, &other),
            Err(BundleError::AuthenticationFailure(_))
        ));
    }

    #[test]
    fn malformed_packets_rejected() {
        assert!(matches!(
            Bundle::from_packet("<notabundle/>", &key()),
            Err(BundleError::Malformed(_))
        ));
        assert!(matches!(
            Bundle::from_packet("<bundle digest=\"zz\" tag=\"0\"><body/></bundle>", &key()),
            Err(BundleError::Malformed(_))
        ));
        assert!(Bundle::from_packet("not xml at all", &key()).is_err());
        // A body with no code.
        let no_code = Element::new("bundle")
            .with_attr("digest", "0")
            .with_attr("tag", "0")
            .with_child(
                Element::new("body")
                    .with_attr("name", "x")
                    .with_attr("version", "1")
                    .with_attr("issuer", "i"),
            )
            .to_xml();
        assert!(matches!(Bundle::from_packet(&no_code, &key()), Err(BundleError::Malformed(_))));
    }

    #[test]
    fn required_capabilities() {
        let m = Bundle::matchlet("a", "x");
        assert!(m.required_capabilities().contains(&Capability::DeployMatchlet));
        assert!(!m.required_capabilities().contains(&Capability::StoreAccess));
        let with_data = sample();
        assert!(with_data.required_capabilities().contains(&Capability::StoreAccess));
        let c = Bundle::component("b", "k", Element::new("cfg"));
        assert!(c.required_capabilities().contains(&Capability::DeployComponent));
    }

    #[test]
    fn matchlet_source_survives_escaping() {
        // Rule sources contain quotes and comparison operators, which
        // must survive XML escaping.
        let src = r#"rule r { on a: event k(s: "x & <y>") where ?t >= 2 emit o() }"#;
        let b = Bundle::matchlet("escapes", src);
        let back = Bundle::from_packet(&b.to_packet(&key()), &key()).unwrap();
        match back.code {
            Code::Matchlet { source } => assert_eq!(source, src),
            other => panic!("unexpected {other:?}"),
        }
    }
}
